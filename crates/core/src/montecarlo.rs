//! Monte Carlo SSN analysis under process and package variation.
//!
//! The paper's formulas are deterministic; a pad-ring designer additionally
//! needs to know how much margin to hold against die-to-die variation of
//! the fitted device (`K`, `sigma`, `V_0`) and of the package parasitics
//! (`L`, `C`). This module samples those parameters from independent
//! Gaussians and pushes each sample through the full Table-1 model.

use crate::error::SsnError;
use crate::lcmodel;
use crate::scenario::SsnScenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssn_devices::Asdm;
use ssn_units::{Farads, Henrys, Siemens, Volts};

/// Standard deviations of the varied parameters. Fractional sigmas apply
/// multiplicatively (`x * (1 + sigma * z)`), absolute sigmas additively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// Fractional sigma of the ASDM transconductance `K`.
    pub k_frac: f64,
    /// Absolute sigma of the ASDM source-sensitivity `sigma`.
    pub sigma_abs: f64,
    /// Absolute sigma of the displacement voltage `V_0` (volts).
    pub v0_abs: f64,
    /// Fractional sigma of the package inductance.
    pub l_frac: f64,
    /// Fractional sigma of the package capacitance.
    pub c_frac: f64,
}

impl VariationSpec {
    /// A representative corner: 8% on `K`, 0.03 on `sigma`, 20 mV on
    /// `V_0`, 10% on `L`, 15% on `C`.
    pub fn typical() -> Self {
        Self {
            k_frac: 0.08,
            sigma_abs: 0.03,
            v0_abs: 0.02,
            l_frac: 0.10,
            c_frac: 0.15,
        }
    }

    /// No variation at all (degenerate, for testing).
    pub fn frozen() -> Self {
        Self {
            k_frac: 0.0,
            sigma_abs: 0.0,
            v0_abs: 0.0,
            l_frac: 0.0,
            c_frac: 0.0,
        }
    }
}

/// The sampled distribution of the maximum SSN voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    samples: Vec<f64>,
}

impl McResult {
    /// Number of Monte Carlo samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were drawn (cannot happen via
    /// [`run_monte_carlo`]).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw sorted samples (volts).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sample mean (volts).
    pub fn mean(&self) -> Volts {
        Volts::new(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Sample standard deviation (volts).
    pub fn std_dev(&self) -> Volts {
        let m = self.mean().value();
        let var = self
            .samples
            .iter()
            .map(|v| (v - m) * (v - m))
            .sum::<f64>()
            / (self.samples.len() as f64 - 1.0).max(1.0);
        Volts::new(var.sqrt())
    }

    /// The `q`-quantile (0..=1) by linear interpolation of the sorted
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Volts {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let w = pos - lo as f64;
        Volts::new(self.samples[lo] * (1.0 - w) + self.samples[hi] * w)
    }

    /// Fraction of samples whose maximum SSN stays within `budget`.
    pub fn yield_within(&self, budget: Volts) -> f64 {
        let ok = self
            .samples
            .iter()
            .filter(|&&v| v <= budget.value())
            .count();
        ok as f64 / self.samples.len() as f64
    }
}

/// Standard normal via Box–Muller (avoids an extra distribution crate).
fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Runs `n_samples` Monte Carlo evaluations of the Table-1 maximum-SSN
/// model around `nominal`, with reproducible seeding.
///
/// Out-of-domain draws (non-positive `K`/`L`, `sigma < 1`, `V_0` outside
/// `(0, V_dd)`) are clamped to the domain edge rather than redrawn, so the
/// sample count is exact and tails remain honest.
///
/// # Errors
///
/// Returns [`SsnError::InvalidScenario`] when `n_samples == 0`.
///
/// # Examples
///
/// ```
/// use ssn_core::montecarlo::{run_monte_carlo, VariationSpec};
/// use ssn_core::scenario::SsnScenario;
/// use ssn_devices::Asdm;
/// use ssn_units::{Siemens, Volts};
///
/// # fn main() -> Result<(), ssn_core::SsnError> {
/// let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
/// let nominal = SsnScenario::from_asdm(asdm, Volts::new(1.8)).build()?;
/// let mc = run_monte_carlo(&nominal, &VariationSpec::typical(), 500, 42)?;
/// assert!(mc.quantile(0.95) > mc.quantile(0.05));
/// # Ok(())
/// # }
/// ```
pub fn run_monte_carlo(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    n_samples: usize,
    seed: u64,
) -> Result<McResult, SsnError> {
    if n_samples == 0 {
        return Err(SsnError::scenario("need at least one Monte Carlo sample"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let a0 = nominal.asdm();
    let vdd = nominal.vdd().value();
    let mut samples = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let k = (a0.k().value() * (1.0 + spec.k_frac * normal(&mut rng))).max(1e-6);
        let sigma = (a0.sigma() + spec.sigma_abs * normal(&mut rng)).max(1.0);
        let v0 = (a0.v0().value() + spec.v0_abs * normal(&mut rng)).clamp(1e-3, vdd * 0.95);
        let l = (nominal.inductance().value() * (1.0 + spec.l_frac * normal(&mut rng)))
            .max(1e-12);
        let c = (nominal.capacitance().value() * (1.0 + spec.c_frac * normal(&mut rng)))
            .max(0.0);
        let asdm = Asdm::new(Siemens::new(k), sigma, Volts::new(v0));
        let s = SsnScenario::from_asdm(asdm, nominal.vdd())
            .drivers(nominal.n_drivers())
            .inductance(Henrys::new(l))
            .capacitance(Farads::new(c))
            .rise_time(nominal.rise_time())
            .rail(nominal.rail())
            .build()?;
        samples.push(lcmodel::vn_max(&s).0.value());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite noise values"));
    Ok(McResult { samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssn_units::Seconds;

    fn nominal() -> SsnScenario {
        let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
        SsnScenario::from_asdm(asdm, Volts::new(1.8))
            .drivers(8)
            .inductance(Henrys::from_nanos(5.0))
            .capacitance(Farads::from_picos(1.0))
            .rise_time(Seconds::from_nanos(0.5))
            .build()
            .unwrap()
    }

    #[test]
    fn reproducible_with_seed() {
        let s = nominal();
        let a = run_monte_carlo(&s, &VariationSpec::typical(), 200, 42).unwrap();
        let b = run_monte_carlo(&s, &VariationSpec::typical(), 200, 42).unwrap();
        assert_eq!(a, b);
        let c = run_monte_carlo(&s, &VariationSpec::typical(), 200, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn frozen_variation_is_a_delta() {
        let s = nominal();
        let r = run_monte_carlo(&s, &VariationSpec::frozen(), 50, 1).unwrap();
        let nominal_v = lcmodel::vn_max(&s).0.value();
        assert!(r.std_dev().value() < 1e-15);
        assert!((r.mean().value() - nominal_v).abs() < 1e-12);
        assert_eq!(r.len(), 50);
        assert!(!r.is_empty());
    }

    #[test]
    fn mean_near_nominal_and_quantiles_ordered() {
        let s = nominal();
        let r = run_monte_carlo(&s, &VariationSpec::typical(), 2000, 7).unwrap();
        let nominal_v = lcmodel::vn_max(&s).0.value();
        assert!(
            (r.mean().value() - nominal_v).abs() / nominal_v < 0.05,
            "mean {} vs nominal {nominal_v}",
            r.mean()
        );
        let (q05, q50, q95) = (r.quantile(0.05), r.quantile(0.5), r.quantile(0.95));
        assert!(q05 < q50 && q50 < q95);
        // ~N(0,1) quantile sanity: the 95th is about 1.6 sigma out.
        let z = (q95.value() - r.mean().value()) / r.std_dev().value();
        assert!(z > 1.2 && z < 2.2, "z(q95) = {z}");
    }

    #[test]
    fn yield_is_monotone_in_budget() {
        let s = nominal();
        let r = run_monte_carlo(&s, &VariationSpec::typical(), 500, 3).unwrap();
        let y_tight = r.yield_within(r.quantile(0.25));
        let y_loose = r.yield_within(r.quantile(0.9));
        assert!(y_tight < y_loose);
        assert!(r.yield_within(Volts::new(10.0)) == 1.0);
        assert!(r.yield_within(Volts::ZERO) == 0.0);
        // Quantile/yield duality.
        assert!((r.yield_within(r.quantile(0.5)) - 0.5).abs() < 0.05);
    }

    #[test]
    fn zero_samples_rejected() {
        assert!(run_monte_carlo(&nominal(), &VariationSpec::typical(), 0, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_domain_checked() {
        let r = run_monte_carlo(&nominal(), &VariationSpec::frozen(), 10, 1).unwrap();
        let _ = r.quantile(1.5);
    }
}
