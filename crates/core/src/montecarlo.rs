//! Monte Carlo SSN analysis under process and package variation.
//!
//! The paper's formulas are deterministic; a pad-ring designer additionally
//! needs to know how much margin to hold against die-to-die variation of
//! the fitted device (`K`, `sigma`, `V_0`) and of the package parasitics
//! (`L`, `C`). This module samples those parameters from independent
//! Gaussians and pushes each sample through the full Table-1 model.
//!
//! Sampling is chunked for the parallel engine (see [`crate::parallel`]):
//! samples are drawn in fixed blocks of [`MC_CHUNK`], each block from its
//! own RNG stream derived from `(seed, chunk_index)`. The thread count
//! therefore **never** changes the result — `run_monte_carlo_with` on 8
//! workers returns a bit-identical [`McResult`] to the serial run, which
//! the workspace determinism tests pin down.
//!
//! # The batched SoA hot path
//!
//! Chunks are evaluated by one of two paths (see [`McPath`]):
//!
//! * **Batched** (default): the chunk's draws are scattered into
//!   structure-of-arrays parameter slabs ([`perturb_batch`]) and evaluated
//!   by the slab kernels ([`crate::lcmodel::vn_max_slab`] /
//!   [`crate::lmodel::vn_max_slab`]) — no per-sample scenario rebuild.
//! * **Scalar**: the original one-scenario-at-a-time reference path,
//!   retained so the equivalence suite (`tests/soa_equivalence.rs`) can
//!   prove the batched path bit-identical forever.
//!
//! Both paths consume the chunk's RNG stream in the exact same per-sample
//! interleaved order (`K`, `sigma`, `V_0`, `L`, `C` — [`perturb_one`]) and
//! produce bit-identical chunk payloads, so checkpoints written by either
//! path resume on the other (`tests/durability.rs` pins the cross-path
//! resume).

use crate::durable::{
    run_chunked_durable, ByteReader, ByteWriter, ChunkOutcome, DegradeStep, Durability,
    DurableOptions, ParamDigest, RunSpec,
};
use crate::error::SsnError;
use crate::hooks;
use crate::lcmodel;
use crate::lmodel;
use crate::parallel::{try_run_chunked, ExecPolicy, ExecStats};
use crate::scenario::{Rail, SsnScenario};
use ssn_numeric::rng::Rng;
use ssn_numeric::stats;
use ssn_units::{Farads, Henrys, Siemens, Volts};
use std::ops::Range;

/// Samples per work-queue chunk (and per RNG stream). Fixed — independent
/// of the thread count — because chunk boundaries define which stream a
/// sample draws from.
pub const MC_CHUNK: usize = 256;

/// Which evaluation path executes a Monte Carlo chunk.
///
/// Both paths are bit-identical by contract: same RNG stream consumption,
/// same clamps, same floating-point operation sequence per sample. The
/// scalar path is retained purely as the differential reference — the
/// `soa_equivalence` suite compares the two, and `mc_run_spec`
/// deliberately does *not* digest the path, so a checkpoint written by one
/// resumes on the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum McPath {
    /// Batched SoA hot path: perturb parameter slabs in place, evaluate
    /// `vn_max` over contiguous arrays. The default.
    #[default]
    Batched,
    /// One-scenario-at-a-time reference path (the pre-SoA implementation).
    Scalar,
}

impl std::fmt::Display for McPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Batched => write!(f, "batched"),
            Self::Scalar => write!(f, "scalar"),
        }
    }
}

/// Standard deviations of the varied parameters. Fractional sigmas apply
/// multiplicatively (`x * (1 + sigma * z)`), absolute sigmas additively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// Fractional sigma of the ASDM transconductance `K`.
    pub k_frac: f64,
    /// Absolute sigma of the ASDM source-sensitivity `sigma`.
    pub sigma_abs: f64,
    /// Absolute sigma of the displacement voltage `V_0` (volts).
    pub v0_abs: f64,
    /// Fractional sigma of the package inductance.
    pub l_frac: f64,
    /// Fractional sigma of the package capacitance.
    pub c_frac: f64,
}

impl VariationSpec {
    /// A representative corner: 8% on `K`, 0.03 on `sigma`, 20 mV on
    /// `V_0`, 10% on `L`, 15% on `C`.
    pub fn typical() -> Self {
        Self {
            k_frac: 0.08,
            sigma_abs: 0.03,
            v0_abs: 0.02,
            l_frac: 0.10,
            c_frac: 0.15,
        }
    }

    /// No variation at all (degenerate, for testing).
    pub fn frozen() -> Self {
        Self {
            k_frac: 0.0,
            sigma_abs: 0.0,
            v0_abs: 0.0,
            l_frac: 0.0,
            c_frac: 0.0,
        }
    }

    /// Checks every sigma is finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`SsnError::InvalidInput`] naming the offending field.
    pub fn validate(&self) -> Result<(), SsnError> {
        let fields = [
            ("K variation", self.k_frac),
            ("sigma variation", self.sigma_abs),
            ("V0 variation", self.v0_abs),
            ("L variation", self.l_frac),
            ("C variation", self.c_frac),
        ];
        for (name, value) in fields {
            if !(value >= 0.0) || !value.is_finite() {
                return Err(SsnError::invalid(
                    name,
                    value,
                    "must be non-negative and finite",
                ));
            }
        }
        Ok(())
    }
}

/// A fixed-width histogram of the sampled maximum SSN.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Left edge of the first bin (the sample minimum).
    pub lo: Volts,
    /// Right edge of the last bin (the sample maximum).
    pub hi: Volts,
    /// Per-bin sample counts.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Width of one bin (volts); zero when all samples coincide.
    pub fn bin_width(&self) -> Volts {
        Volts::new((self.hi.value() - self.lo.value()) / self.counts.len() as f64)
    }
}

/// The sampled distribution of the maximum SSN voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    samples: Vec<f64>,
}

impl McResult {
    /// Number of Monte Carlo samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were drawn (cannot happen via
    /// [`run_monte_carlo`]).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw sorted samples (volts).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sample mean (volts).
    ///
    /// Reduced in the pinned left-to-right order of
    /// [`ssn_numeric::stats::sum_ordered`] — never by a reassociating fast
    /// sum — so the value is bit-stable across evaluation paths and
    /// accumulation-scheme changes.
    pub fn mean(&self) -> Volts {
        Volts::new(stats::sum_ordered(&self.samples) / self.samples.len() as f64)
    }

    /// Sample standard deviation (volts), accumulated in the same pinned
    /// order as [`McResult::mean`]
    /// ([`ssn_numeric::stats::moments_ordered`]).
    ///
    /// An `McResult` is never empty by construction; the NaN arm mirrors
    /// what [`McResult::mean`] yields for that impossible input.
    pub fn std_dev(&self) -> Volts {
        Volts::new(
            stats::moments_ordered(&self.samples)
                .map(|(_, sd)| sd)
                .unwrap_or(f64::NAN),
        )
    }

    /// The `q`-quantile (0..=1) by linear interpolation of the sorted
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Volts {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let w = pos - lo as f64;
        Volts::new(self.samples[lo] * (1.0 - w) + self.samples[hi] * w)
    }

    /// Fraction of samples whose maximum SSN stays within `budget`.
    pub fn yield_within(&self, budget: Volts) -> f64 {
        let ok = self
            .samples
            .iter()
            .filter(|&&v| v <= budget.value())
            .count();
        ok as f64 / self.samples.len() as f64
    }

    /// Bins the samples into a `bins`-bin histogram spanning the sample
    /// range. Degenerate distributions (all samples equal) collapse into
    /// the first bin.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0`.
    pub fn histogram(&self, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        let mut counts = vec![0usize; bins];
        let width = (hi - lo) / bins as f64;
        for &v in &self.samples {
            let bin = if width > 0.0 {
                (((v - lo) / width) as usize).min(bins - 1)
            } else {
                0
            };
            counts[bin] += 1;
        }
        Histogram {
            lo: Volts::new(lo),
            hi: Volts::new(hi),
            counts,
        }
    }
}

/// One perturbed parameter draw: the five varied quantities of a single
/// Monte Carlo sample, already clamped to the model domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbedParams {
    /// ASDM transconductance `K` (siemens), clamped to `>= 1e-6`.
    pub k: f64,
    /// ASDM source-sensitivity `sigma`, clamped to `>= 1`.
    pub sigma: f64,
    /// Displacement voltage `V_0` (volts), clamped to `[1e-3, 0.95 V_dd]`.
    pub v0: f64,
    /// Package inductance `L` (henrys), clamped to `>= 1e-12`.
    pub l: f64,
    /// Package capacitance `C` (farads), clamped to `>= 0`.
    pub c: f64,
}

/// Draws the five varied parameters of one sample from `rng`.
///
/// Out-of-domain draws (non-positive `K`/`L`, `sigma < 1`, `V_0` outside
/// `(0, V_dd)`) are clamped to the domain edge rather than redrawn, so the
/// sample count is exact and tails remain honest. The five variates are
/// always drawn in the same order (`K`, `sigma`, `V_0`, `L`, `C`) — part
/// of the determinism contract, and the *only* way either evaluation path
/// touches the stream: [`perturb_batch`] is a loop over this function, so
/// the batched path cannot drift from the scalar one (the property suite
/// pins the clamps and the draw-for-draw agreement).
pub fn perturb_one(nominal: &SsnScenario, spec: &VariationSpec, rng: &mut Rng) -> PerturbedParams {
    let a0 = nominal.asdm();
    let vdd = nominal.vdd().value();
    PerturbedParams {
        k: (a0.k().value() * (1.0 + spec.k_frac * rng.normal())).max(1e-6),
        sigma: (a0.sigma() + spec.sigma_abs * rng.normal()).max(1.0),
        v0: (a0.v0().value() + spec.v0_abs * rng.normal()).clamp(1e-3, vdd * 0.95),
        l: (nominal.inductance().value() * (1.0 + spec.l_frac * rng.normal())).max(1e-12),
        c: (nominal.capacitance().value() * (1.0 + spec.c_frac * rng.normal())).max(0.0),
    }
}

/// Structure-of-arrays slabs of perturbed parameters for one chunk: the
/// batched counterpart of a sequence of [`PerturbedParams`].
///
/// Layout is columnar — one contiguous array per parameter — so the slab
/// kernels stream each column linearly. Sample `i` of the batch is
/// `(k[i], sigma[i], v0[i], l[i], c[i])`, in draw order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct McBatch {
    k: Vec<f64>,
    sigma: Vec<f64>,
    v0: Vec<f64>,
    l: Vec<f64>,
    c: Vec<f64>,
}

impl McBatch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.k.len()
    }

    /// `true` when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }

    /// The `K` column (siemens).
    pub fn k(&self) -> &[f64] {
        &self.k
    }

    /// The `sigma` column.
    pub fn sigma(&self) -> &[f64] {
        &self.sigma
    }

    /// The `V_0` column (volts).
    pub fn v0(&self) -> &[f64] {
        &self.v0
    }

    /// The `L` column (henrys).
    pub fn l(&self) -> &[f64] {
        &self.l
    }

    /// The `C` column (farads).
    pub fn c(&self) -> &[f64] {
        &self.c
    }
}

/// Fills a structure-of-arrays batch with `n` perturbed draws from `rng`.
///
/// Consumes the stream in the exact per-sample interleaved order of the
/// scalar path — `n` repetitions of [`perturb_one`] — and merely scatters
/// the draws into columns. SoA changes the *storage layout*, never the
/// draw order: drawing column-major (all `K`s first) would consume the
/// stream differently and break bit-compatibility with existing seeds and
/// checkpoints.
pub fn perturb_batch(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    rng: &mut Rng,
    n: usize,
) -> McBatch {
    let mut batch = McBatch {
        k: Vec::with_capacity(n),
        sigma: Vec::with_capacity(n),
        v0: Vec::with_capacity(n),
        l: Vec::with_capacity(n),
        c: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let p = perturb_one(nominal, spec, rng);
        batch.k.push(p.k);
        batch.sigma.push(p.sigma);
        batch.v0.push(p.v0);
        batch.l.push(p.l);
        batch.c.push(p.c);
    }
    batch
}

/// Scalar reference path: builds the varied scenario and evaluates its
/// Table-1 maximum through the exact pre-SoA call chain.
fn sample_vn_max(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    rng: &mut Rng,
) -> Result<f64, SsnError> {
    let p = perturb_one(nominal, spec, rng);
    let asdm = ssn_devices::Asdm::new(Siemens::new(p.k), p.sigma, Volts::new(p.v0));
    let s = SsnScenario::from_asdm(asdm, nominal.vdd())
        .drivers(nominal.n_drivers())
        .inductance(Henrys::new(p.l))
        .capacitance(Farads::new(p.c))
        .rise_time(nominal.rise_time())
        .rail(nominal.rail())
        .build()?;
    Ok(lcmodel::vn_max(&s).0.value())
}

/// Runs `n_samples` Monte Carlo evaluations of the Table-1 maximum-SSN
/// model around `nominal`, serially, with reproducible seeding.
///
/// Equivalent to [`run_monte_carlo_with`] under [`ExecPolicy::serial`] —
/// and, by the engine's determinism contract, to *any* thread count.
///
/// # Errors
///
/// Returns [`SsnError::InvalidInput`] when `n_samples == 0` or the
/// variation spec is malformed.
///
/// # Examples
///
/// ```
/// use ssn_core::montecarlo::{run_monte_carlo, VariationSpec};
/// use ssn_core::scenario::SsnScenario;
/// use ssn_devices::Asdm;
/// use ssn_units::{Siemens, Volts};
///
/// # fn main() -> Result<(), ssn_core::SsnError> {
/// let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
/// let nominal = SsnScenario::from_asdm(asdm, Volts::new(1.8)).build()?;
/// let mc = run_monte_carlo(&nominal, &VariationSpec::typical(), 500, 42)?;
/// assert!(mc.quantile(0.95) > mc.quantile(0.05));
/// # Ok(())
/// # }
/// ```
pub fn run_monte_carlo(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    n_samples: usize,
    seed: u64,
) -> Result<McResult, SsnError> {
    run_monte_carlo_with(nominal, spec, n_samples, seed, &ExecPolicy::serial())
        .map(|(result, _)| result)
}

/// Runs the Monte Carlo analysis on the parallel engine and returns the
/// result together with run telemetry.
///
/// Samples are drawn in fixed [`MC_CHUNK`]-sized blocks, chunk `c` from
/// RNG stream `(seed, c)`; the result is bit-identical for every
/// `policy.threads()`.
///
/// **Degradation contract:** each chunk is panic-isolated
/// ([`crate::parallel::try_run_chunked`]). A chunk that panics or produces
/// a non-finite sample is dropped and counted in
/// [`ExecStats::failed_chunks`]; the surviving samples are returned as a
/// *partial* [`McResult`] (`len() < n_samples`). Callers that cannot accept
/// partial data must check `stats.failed_chunks == 0`.
///
/// # Errors
///
/// * [`SsnError::InvalidInput`] when `n_samples == 0` or `spec` holds a
///   negative or non-finite sigma.
/// * [`SsnError::AllChunksFailed`] when not a single chunk survived.
pub fn run_monte_carlo_with(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    n_samples: usize,
    seed: u64,
    policy: &ExecPolicy,
) -> Result<(McResult, ExecStats), SsnError> {
    run_monte_carlo_with_path(nominal, spec, n_samples, seed, policy, McPath::default())
}

/// [`run_monte_carlo_with`] on an explicit evaluation path.
///
/// The path never changes results — [`McPath::Scalar`] exists as the
/// differential reference for the batched default, and the equivalence
/// suite pins `Batched == Scalar` bit for bit at every thread count.
///
/// # Errors
///
/// As [`run_monte_carlo_with`].
pub fn run_monte_carlo_with_path(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    n_samples: usize,
    seed: u64,
    policy: &ExecPolicy,
    path: McPath,
) -> Result<(McResult, ExecStats), SsnError> {
    if n_samples == 0 {
        return Err(SsnError::invalid(
            "samples",
            0.0,
            "need at least one Monte Carlo sample",
        ));
    }
    spec.validate()?;
    let _run_span = ssn_telemetry::span("mc.run");
    let (chunks, mut stats) = try_run_chunked(n_samples, MC_CHUNK, policy, |c, range| {
        mc_chunk(nominal, spec, seed, c, range, path)
    });
    let _collect_span = ssn_telemetry::span("mc.collect");
    let total = stats.chunks;
    let mut samples = Vec::with_capacity(n_samples);
    let mut failed = 0usize;
    let mut first_cause: Option<String> = None;
    for chunk in chunks {
        match chunk {
            Ok(Ok(vs)) => samples.extend(vs),
            Ok(Err(e)) => {
                failed += 1;
                first_cause.get_or_insert_with(|| e.to_string());
            }
            Err(e) => {
                failed += 1;
                first_cause.get_or_insert_with(|| e.to_string());
            }
        }
    }
    stats.failed_chunks = failed;
    if samples.is_empty() {
        return Err(SsnError::AllChunksFailed {
            failed,
            total,
            first_cause: first_cause.unwrap_or_default(),
        });
    }
    // total_cmp, not partial_cmp: every sample is checked finite above, but
    // a total order keeps the sort panic-free by construction.
    samples.sort_by(|a, b| a.total_cmp(b));
    Ok((McResult { samples }, stats))
}

/// Evaluates one Monte Carlo chunk: samples `range` from RNG stream
/// `(seed, c)` on the selected path. The shared body of the plain and
/// durable runners — all paths must produce identical chunk results for
/// the determinism and resume invariants to hold.
fn mc_chunk(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    seed: u64,
    c: usize,
    range: Range<usize>,
    path: McPath,
) -> Result<Vec<f64>, SsnError> {
    match path {
        McPath::Batched => mc_chunk_batched(nominal, spec, seed, c, range),
        McPath::Scalar => mc_chunk_scalar(nominal, spec, seed, c, range),
    }
}

/// The retained scalar reference chunk: one scenario rebuild per sample.
fn mc_chunk_scalar(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    seed: u64,
    c: usize,
    range: Range<usize>,
) -> Result<Vec<f64>, SsnError> {
    hooks::inject_chunk_panic(c);
    let mut rng = Rng::from_seed_and_stream(seed, c as u64);
    ssn_telemetry::add("mc.samples", range.len() as u64);
    range
        .map(|i| {
            let _sample_span = ssn_telemetry::span("mc.sample");
            let v = hooks::inject_nan(i, sample_vn_max(nominal, spec, &mut rng)?);
            if !v.is_finite() {
                return Err(SsnError::invalid(
                    "vn_max",
                    v,
                    "model output must be finite",
                ));
            }
            Ok(v)
        })
        .collect::<Result<Vec<f64>, SsnError>>()
}

/// The batched SoA chunk: perturb the whole chunk into parameter slabs,
/// then evaluate `vn_max` over the contiguous columns.
///
/// Mirrors the scalar chunk observable for observable: same panic
/// injection point, same `mc.samples` accounting, same per-sample NaN
/// injection index (the *global* sample index `i`), and the same
/// chunk-fails-whole error on a non-finite sample.
fn mc_chunk_batched(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    seed: u64,
    c: usize,
    range: Range<usize>,
) -> Result<Vec<f64>, SsnError> {
    hooks::inject_chunk_panic(c);
    let mut rng = Rng::from_seed_and_stream(seed, c as u64);
    ssn_telemetry::add("mc.samples", range.len() as u64);
    let batch = {
        let _span = ssn_telemetry::span("mc.perturb");
        perturb_batch(nominal, spec, &mut rng, range.len())
    };
    let mut out = vec![0.0; batch.len()];
    {
        let _span = ssn_telemetry::span("mc.eval");
        // A C = 0 nominal with any c_frac perturbs to exactly 0 (the
        // `max(0.0)` clamp), so the pure L-only kernel applies to the
        // whole slab; otherwise the LC kernel handles per-sample C = 0
        // fall-through exactly like the scalar path.
        if nominal.capacitance().value() == 0.0 {
            lmodel::vn_max_slab(
                nominal,
                batch.k(),
                batch.sigma(),
                batch.v0(),
                batch.l(),
                &mut out,
            );
        } else {
            lcmodel::vn_max_slab(
                nominal,
                batch.k(),
                batch.sigma(),
                batch.v0(),
                batch.l(),
                batch.c(),
                &mut out,
            );
        }
    }
    for (j, i) in range.enumerate() {
        let v = hooks::inject_nan(i, out[j]);
        if !v.is_finite() {
            return Err(SsnError::invalid(
                "vn_max",
                v,
                "model output must be finite",
            ));
        }
        out[j] = v;
    }
    Ok(out)
}

/// The durable-run identity of a Monte Carlo job: every parameter that
/// determines its samples, digested so a checkpoint can never be resumed
/// under different settings.
///
/// Public so out-of-process schedulers (the `ssn-server` job queue) can
/// name the exact same journal identity — a server-side checkpoint written
/// before a crash must resume under the identical [`RunSpec`] the library
/// runner derives.
pub fn mc_run_spec(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    n_samples: usize,
    seed: u64,
) -> RunSpec {
    let a = nominal.asdm();
    let mut d = ParamDigest::new("montecarlo");
    d.push_f64(a.k().value())
        .push_f64(a.sigma())
        .push_f64(a.v0().value())
        .push_f64(nominal.vdd().value())
        .push_u64(nominal.n_drivers() as u64)
        .push_f64(nominal.inductance().value())
        .push_f64(nominal.capacitance().value())
        .push_f64(nominal.rise_time().value())
        .push_u64(match nominal.rail() {
            Rail::Ground => 0,
            Rail::Power => 1,
        })
        .push_f64(spec.k_frac)
        .push_f64(spec.sigma_abs)
        .push_f64(spec.v0_abs)
        .push_f64(spec.l_frac)
        .push_f64(spec.c_frac);
    RunSpec {
        kind: "montecarlo",
        seed,
        params_hash: d.finish(),
        n_items: n_samples,
        chunk_size: MC_CHUNK,
    }
}

/// [`run_monte_carlo_with`] with durable execution: checkpoint/resume and
/// a run budget (see [`crate::durable`]).
///
/// Identical inputs produce a bit-identical [`McResult`] whether the run
/// completed in one session or was killed and resumed any number of times,
/// at any thread count — completed chunks are restored from the journal,
/// never recomputed.
///
/// **Degradation contract:** when the budget expires mid-run, the ladder's
/// first step fires — *shrink samples*: the completed samples are returned
/// as a partial [`McResult`] and the downgrade is recorded in the returned
/// [`Durability`] and the telemetry stream.
///
/// # Errors
///
/// Everything [`run_monte_carlo_with`] returns, plus
/// [`SsnError::Checkpoint`] for an unusable journal,
/// [`SsnError::Interrupted`] for a simulated crash, and
/// [`SsnError::DeadlineExhausted`] when the budget expired before any
/// chunk completed.
pub fn run_monte_carlo_durable(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    n_samples: usize,
    seed: u64,
    policy: &ExecPolicy,
    durable: &DurableOptions,
) -> Result<(McResult, ExecStats, Durability), SsnError> {
    run_monte_carlo_durable_with_path(
        nominal,
        spec,
        n_samples,
        seed,
        policy,
        durable,
        McPath::default(),
    )
}

/// [`run_monte_carlo_durable`] on an explicit evaluation path.
///
/// The run spec does **not** digest the path: both paths produce
/// bit-identical chunk payloads, so a checkpoint journal written mid-run
/// by one path resumes seamlessly on the other (pinned by the cross-path
/// cases in `tests/durability.rs`). In particular, journals written before
/// the batched path existed resume on it unchanged.
///
/// # Errors
///
/// As [`run_monte_carlo_durable`].
pub fn run_monte_carlo_durable_with_path(
    nominal: &SsnScenario,
    spec: &VariationSpec,
    n_samples: usize,
    seed: u64,
    policy: &ExecPolicy,
    durable: &DurableOptions,
    path: McPath,
) -> Result<(McResult, ExecStats, Durability), SsnError> {
    if n_samples == 0 {
        return Err(SsnError::invalid(
            "samples",
            0.0,
            "need at least one Monte Carlo sample",
        ));
    }
    spec.validate()?;
    let _run_span = ssn_telemetry::span("mc.run");
    let run_spec = mc_run_spec(nominal, spec, n_samples, seed);
    let run = run_chunked_durable(
        &run_spec,
        policy,
        durable,
        |samples: &Vec<f64>| {
            let mut w = ByteWriter::new();
            w.put_usize(samples.len());
            for &v in samples {
                w.put_f64(v);
            }
            w.into_vec()
        },
        |r: &mut ByteReader<'_>| {
            let n = r.take_usize()?;
            (0..n).map(|_| r.take_f64()).collect()
        },
        |c, range| mc_chunk(nominal, spec, seed, c, range, path),
    )?;

    let mut durability = Durability {
        resumed_chunks: run.resumed_chunks,
        deadline_hit: run.deadline_hit,
        degradation: Vec::new(),
    };
    if let Some(d) = &run.checkpoint_degraded {
        durability.note_degrade(
            DegradeStep::Uncheckpointed,
            d.total_chunks,
            d.committed_chunks,
        );
    }
    let total = run.stats.chunks;
    let mut samples = Vec::with_capacity(n_samples);
    let mut failed = 0usize;
    let mut first_cause: Option<String> = None;
    for outcome in run.chunks {
        match outcome {
            ChunkOutcome::Done(vs) => samples.extend(vs),
            ChunkOutcome::Failed(cause) => {
                failed += 1;
                first_cause.get_or_insert(cause);
            }
            ChunkOutcome::DeadlineSkipped => {}
        }
    }
    if samples.is_empty() {
        if run.deadline_hit && failed == 0 {
            return Err(SsnError::DeadlineExhausted {
                completed_items: 0,
                planned_items: n_samples,
            });
        }
        return Err(SsnError::AllChunksFailed {
            failed,
            total,
            first_cause: first_cause.unwrap_or_default(),
        });
    }
    if run.deadline_hit && samples.len() < n_samples {
        durability.note_degrade(DegradeStep::ShrinkSamples, n_samples, samples.len());
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    Ok((McResult { samples }, run.stats, durability))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssn_devices::Asdm;
    use ssn_units::Seconds;

    fn nominal() -> SsnScenario {
        let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
        SsnScenario::from_asdm(asdm, Volts::new(1.8))
            .drivers(8)
            .inductance(Henrys::from_nanos(5.0))
            .capacitance(Farads::from_picos(1.0))
            .rise_time(Seconds::from_nanos(0.5))
            .build()
            .unwrap()
    }

    #[test]
    fn reproducible_with_seed() {
        let s = nominal();
        let a = run_monte_carlo(&s, &VariationSpec::typical(), 200, 42).unwrap();
        let b = run_monte_carlo(&s, &VariationSpec::typical(), 200, 42).unwrap();
        assert_eq!(a, b);
        let c = run_monte_carlo(&s, &VariationSpec::typical(), 200, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn thread_count_never_changes_the_result() {
        // The determinism contract of the tentpole: 1, 2 and 8 workers
        // produce bit-identical McResults (also covered end-to-end in
        // tests/determinism.rs; spanning several chunks matters here).
        let s = nominal();
        let spec = VariationSpec::typical();
        let n = 3 * MC_CHUNK + 17;
        let (serial, _) = run_monte_carlo_with(&s, &spec, n, 7, &ExecPolicy::serial()).unwrap();
        for threads in [2, 8] {
            let (par, stats) =
                run_monte_carlo_with(&s, &spec, n, 7, &ExecPolicy::with_threads(threads)).unwrap();
            assert_eq!(serial, par, "thread count {threads} changed samples");
            assert_eq!(stats.items, n);
        }
    }

    #[test]
    fn frozen_variation_is_a_delta() {
        let s = nominal();
        let r = run_monte_carlo(&s, &VariationSpec::frozen(), 50, 1).unwrap();
        let nominal_v = lcmodel::vn_max(&s).0.value();
        assert!(r.std_dev().value() < 1e-15);
        assert!((r.mean().value() - nominal_v).abs() < 1e-12);
        assert_eq!(r.len(), 50);
        assert!(!r.is_empty());
        // Degenerate histogram: everything in one bin.
        let h = r.histogram(4);
        assert_eq!(h.counts, vec![50, 0, 0, 0]);
        assert_eq!(h.bin_width(), Volts::ZERO);
    }

    #[test]
    fn mean_near_nominal_and_quantiles_ordered() {
        let s = nominal();
        let r = run_monte_carlo(&s, &VariationSpec::typical(), 2000, 7).unwrap();
        let nominal_v = lcmodel::vn_max(&s).0.value();
        assert!(
            (r.mean().value() - nominal_v).abs() / nominal_v < 0.05,
            "mean {} vs nominal {nominal_v}",
            r.mean()
        );
        let (q05, q50, q95) = (r.quantile(0.05), r.quantile(0.5), r.quantile(0.95));
        assert!(q05 < q50 && q50 < q95);
        // ~N(0,1) quantile sanity: the 95th is about 1.6 sigma out.
        let z = (q95.value() - r.mean().value()) / r.std_dev().value();
        assert!(z > 1.2 && z < 2.2, "z(q95) = {z}");
    }

    #[test]
    fn histogram_partitions_all_samples() {
        let s = nominal();
        let r = run_monte_carlo(&s, &VariationSpec::typical(), 1000, 5).unwrap();
        let h = r.histogram(20);
        assert_eq!(h.counts.iter().sum::<usize>(), 1000);
        assert_eq!(h.counts.len(), 20);
        assert!(h.lo < h.hi);
        assert!(h.bin_width() > Volts::ZERO);
        // Ends of the range hold the min/max samples.
        assert!(h.counts[0] >= 1);
        assert!(h.counts[19] >= 1);
    }

    #[test]
    fn yield_is_monotone_in_budget() {
        let s = nominal();
        let r = run_monte_carlo(&s, &VariationSpec::typical(), 500, 3).unwrap();
        let y_tight = r.yield_within(r.quantile(0.25));
        let y_loose = r.yield_within(r.quantile(0.9));
        assert!(y_tight < y_loose);
        assert!(r.yield_within(Volts::new(10.0)) == 1.0);
        assert!(r.yield_within(Volts::ZERO) == 0.0);
        // Quantile/yield duality.
        assert!((r.yield_within(r.quantile(0.5)) - 0.5).abs() < 0.05);
    }

    #[test]
    fn zero_samples_rejected() {
        assert!(run_monte_carlo(&nominal(), &VariationSpec::typical(), 0, 1).is_err());
        assert!(run_monte_carlo_with(
            &nominal(),
            &VariationSpec::typical(),
            0,
            1,
            &ExecPolicy::auto()
        )
        .is_err());
    }

    #[test]
    fn malformed_variation_spec_is_rejected() {
        let bad = VariationSpec {
            k_frac: f64::NAN,
            ..VariationSpec::typical()
        };
        match run_monte_carlo(&nominal(), &bad, 10, 1) {
            Err(SsnError::InvalidInput { field, .. }) => assert_eq!(field, "K variation"),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        let neg = VariationSpec {
            l_frac: -0.1,
            ..VariationSpec::typical()
        };
        assert!(run_monte_carlo(&nominal(), &neg, 10, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_domain_checked() {
        let r = run_monte_carlo(&nominal(), &VariationSpec::frozen(), 10, 1).unwrap();
        let _ = r.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "histogram")]
    fn histogram_rejects_zero_bins() {
        let r = run_monte_carlo(&nominal(), &VariationSpec::frozen(), 10, 1).unwrap();
        let _ = r.histogram(0);
    }
}
