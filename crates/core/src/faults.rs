//! Deterministic fault injection for robustness testing.
//!
//! Compiled in only under the `fault-injection` cargo feature, and even then
//! every hook is a disarmed no-op until a test activates a [`FaultPlan`]
//! through [`with_faults`]. The hooks sit at three sites:
//!
//! * **Model outputs** — [`corrupt_model_output`] turns a sampled `vn_max`
//!   into NaN with a configured probability (exercises the NaN-tolerant
//!   aggregation paths),
//! * **Workers** — [`maybe_panic_chunk`] panics inside a parallel chunk
//!   (exercises the `catch_unwind` isolation in
//!   [`crate::parallel::try_run_chunked`]),
//! * **Solvers** — [`solver_disabled_rungs`] force-disables rungs of the
//!   `ssn_numeric::solve` fallback ladder (exercises the fallback paths).
//!
//! Every decision is drawn from [`ssn_numeric::rng::Rng`] streams keyed by
//! the *item or chunk index*, never by thread or wall clock, so an injected
//! fault pattern is bit-identical at any `--threads` setting — determinism
//! holds fault-on and fault-off.
//!
//! Plans are process-global; [`with_faults`] serializes activations behind a
//! mutex so concurrently running tests cannot observe each other's faults.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use ssn_numeric::rng::Rng;

/// What to inject, and how often.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision (different sites derive different
    /// streams from it).
    pub seed: u64,
    /// Probability that a model output is replaced by NaN, per item.
    pub nan_probability: f64,
    /// Probability that a worker panics, per chunk.
    pub panic_probability: f64,
    /// When true, each chunk panics at most once — a retried chunk
    /// succeeds, which is how the retry budget is tested.
    pub panic_once: bool,
    /// Rungs of the solver fallback ladder to force-fail, as a
    /// `ssn_numeric::solve::rung` bitmask.
    pub disable_solver_rungs: u8,
    /// Simulated process death for durable runs: after this many checkpoint
    /// commits the run stops scheduling work, stops committing, and returns
    /// `SsnError::Interrupted` — the library-level equivalent of `kill -9`
    /// at a chunk boundary.
    pub crash_after_commits: Option<usize>,
    /// When the simulated crash fires, also tear the last commit: the final
    /// journal on disk is cut mid-record, as if the process died inside the
    /// write. Resume must detect this as corruption, never trust it.
    pub torn_crash: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            nan_probability: 0.0,
            panic_probability: 0.0,
            panic_once: false,
            disable_solver_rungs: 0,
            crash_after_commits: None,
            torn_crash: false,
        }
    }
}

// Distinct stream keys per injection site, so "NaN at item 7" and "panic in
// chunk 7" are independent decisions.
const SITE_NAN: u64 = 0x5153_4e5f_4e61_4e00;
const SITE_PANIC: u64 = 0x5153_4e5f_7061_6e00;

static ARMED: AtomicBool = AtomicBool::new(false);

struct State {
    plan: FaultPlan,
    fired_chunks: HashSet<usize>,
}

fn state() -> MutexGuard<'static, Option<State>> {
    static STATE: OnceLock<Mutex<Option<State>>> = OnceLock::new();
    STATE
        .get_or_init(|| Mutex::new(None))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Serializes fault-armed sections across test threads.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with `plan` armed, then disarms.
///
/// Activations are serialized process-wide, so parallel tests using faults
/// do not interfere. The default panic hook is silenced for the duration —
/// injected worker panics are expected and caught, and their backtraces
/// would otherwise spam test output.
///
/// The body runs under `catch_unwind` (not a drop guard) because restoring
/// the panic hook from a panicking thread would abort the process; a
/// panicking body is disarmed, the hook restored, and the panic resumed.
pub fn with_faults<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    let _serialized = gate();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    *state() = Some(State {
        plan,
        fired_chunks: HashSet::new(),
    });
    ARMED.store(true, Ordering::SeqCst);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    ARMED.store(false, Ordering::SeqCst);
    *state() = None;
    std::panic::set_hook(prev_hook);
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// True while a [`FaultPlan`] is armed.
pub fn active() -> bool {
    ARMED.load(Ordering::SeqCst)
}

/// Fault site: replaces a model output with NaN according to the armed
/// plan. `item` is the global item index (e.g. the Monte Carlo sample
/// number), which keys the decision deterministically.
pub fn corrupt_model_output(item: u64, value: f64) -> f64 {
    if !active() {
        return value;
    }
    let guard = state();
    let Some(st) = guard.as_ref() else {
        return value;
    };
    if st.plan.nan_probability <= 0.0 {
        return value;
    }
    let mut rng = Rng::from_seed_and_stream(st.plan.seed ^ SITE_NAN, item);
    if rng.uniform() < st.plan.nan_probability {
        f64::NAN
    } else {
        value
    }
}

/// Fault site: panics according to the armed plan. Call at the top of a
/// parallel chunk evaluation; `chunk` keys the decision deterministically.
pub fn maybe_panic_chunk(chunk: usize) {
    if !active() {
        return;
    }
    let should_fire = {
        let mut guard = state();
        let Some(st) = guard.as_mut() else {
            return;
        };
        if st.plan.panic_probability <= 0.0 {
            return;
        }
        let mut rng = Rng::from_seed_and_stream(st.plan.seed ^ SITE_PANIC, chunk as u64);
        let hit = rng.uniform() < st.plan.panic_probability;
        // `insert` returns false when the chunk already fired; under
        // `panic_once` that second attempt is allowed to succeed.
        hit && (!st.plan.panic_once || st.fired_chunks.insert(chunk))
    };
    if should_fire {
        panic!("injected fault: worker panic in chunk {chunk}");
    }
}

/// Fault site: the solver-ladder rungs the armed plan disables (0 when
/// disarmed).
pub fn solver_disabled_rungs() -> u8 {
    if !active() {
        return 0;
    }
    state()
        .as_ref()
        .map_or(0, |st| st.plan.disable_solver_rungs)
}

/// Fault site: the armed crash plan for durable runs, as
/// `(crash_after_commits, torn)`. `None` when disarmed or no crash is
/// configured.
pub fn checkpoint_crash_plan() -> Option<(usize, bool)> {
    if !active() {
        return None;
    }
    state().as_ref().and_then(|st| {
        st.plan
            .crash_after_commits
            .map(|after| (after, st.plan.torn_crash))
    })
}

/// A way to damage a checkpoint journal on disk, for exercising the
/// corruption-detection paths (`tests/durability.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalCorruption {
    /// Keep only the first `keep` bytes — a torn or interrupted write.
    Truncate {
        /// Bytes to keep from the start of the file.
        keep: usize,
    },
    /// XOR the byte at `offset` (modulo file length) with `mask` — silent
    /// media or transfer corruption that only a checksum can catch.
    BitFlip {
        /// Byte offset to damage (wrapped modulo the file length).
        offset: usize,
        /// Non-zero XOR mask applied to that byte.
        mask: u8,
    },
    /// Overwrite the format-version field with a version this build does
    /// not understand — a journal left behind by a different release.
    StaleVersion,
}

/// Applies `how` to the journal at `path` in place.
///
/// Test-only tooling: unlike the other fault sites this takes effect
/// immediately and needs no armed plan — corruption on disk is not a
/// runtime decision.
pub fn corrupt_checkpoint(path: &std::path::Path, how: JournalCorruption) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    match how {
        JournalCorruption::Truncate { keep } => bytes.truncate(keep),
        JournalCorruption::BitFlip { offset, mask } => {
            if !bytes.is_empty() {
                let i = offset % bytes.len();
                bytes[i] ^= if mask == 0 { 0x01 } else { mask };
            }
        }
        JournalCorruption::StaleVersion => {
            // The version field is the u32 directly after the 8-byte magic
            // (see `ssn_core::durable` format docs).
            if bytes.len() >= 12 {
                bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
            }
        }
    }
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hooks_are_transparent() {
        assert!(!active());
        assert_eq!(corrupt_model_output(7, 1.25).to_bits(), 1.25f64.to_bits());
        maybe_panic_chunk(3); // must not panic
        assert_eq!(solver_disabled_rungs(), 0);
    }

    #[test]
    fn nan_injection_is_deterministic_per_item() {
        let plan = FaultPlan {
            seed: 42,
            nan_probability: 0.5,
            ..FaultPlan::default()
        };
        let a: Vec<bool> = with_faults(plan, || {
            (0..64)
                .map(|i| corrupt_model_output(i, 1.0).is_nan())
                .collect()
        });
        let b: Vec<bool> = with_faults(plan, || {
            (0..64)
                .map(|i| corrupt_model_output(i, 1.0).is_nan())
                .collect()
        });
        assert_eq!(a, b);
        assert!(a.iter().any(|x| *x));
        assert!(a.iter().any(|x| !*x));
        // Different seeds give different patterns.
        let c: Vec<bool> = with_faults(FaultPlan { seed: 43, ..plan }, || {
            (0..64)
                .map(|i| corrupt_model_output(i, 1.0).is_nan())
                .collect()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn panic_once_lets_the_second_attempt_through() {
        let plan = FaultPlan {
            seed: 7,
            panic_probability: 1.0,
            panic_once: true,
            ..FaultPlan::default()
        };
        with_faults(plan, || {
            let first = std::panic::catch_unwind(|| maybe_panic_chunk(5));
            assert!(first.is_err());
            let second = std::panic::catch_unwind(|| maybe_panic_chunk(5));
            assert!(second.is_ok());
        });
    }

    #[test]
    fn crash_plan_is_exposed_only_while_armed() {
        assert_eq!(checkpoint_crash_plan(), None);
        let plan = FaultPlan {
            crash_after_commits: Some(3),
            torn_crash: true,
            ..FaultPlan::default()
        };
        with_faults(plan, || {
            assert_eq!(checkpoint_crash_plan(), Some((3, true)));
        });
        assert_eq!(checkpoint_crash_plan(), None);
        with_faults(FaultPlan::default(), || {
            assert_eq!(checkpoint_crash_plan(), None);
        });
    }

    #[test]
    fn disarm_survives_a_panicking_body() {
        let plan = FaultPlan {
            seed: 1,
            disable_solver_rungs: 0b10,
            ..FaultPlan::default()
        };
        let res = std::panic::catch_unwind(|| {
            with_faults(plan, || {
                assert_eq!(solver_disabled_rungs(), 0b10);
                panic!("body dies");
            })
        });
        assert!(res.is_err());
        assert!(!active());
        assert_eq!(solver_disabled_rungs(), 0);
    }
}
