//! Prior-work SSN estimators the paper compares against (Fig. 3).
//!
//! All three baselines start from the Sakurai–Newton alpha-power device
//! description — they differ in the approximation used to make the SSN
//! equation tractable:
//!
//! * **Senthinathan–Prince 1991** (paper ref \[4\]): long-channel square law,
//!   `dVn/dt` feedback neglected.
//! * **Vemuru 1996** (paper ref \[6\]): velocity-saturated device with a
//!   *constant* current derivative `dI/dVgs`.
//! * **Song 1999** (paper ref \[8\]): constant current derivative *and* a
//!   noise voltage assumed linear in time.
//!
//! The Song reconstruction follows the two stated assumptions; the original
//! constants are not recoverable from the paper text, so its curve is
//! qualitatively (not numerically) faithful — see DESIGN.md.

use ssn_devices::process::Process;
use ssn_numeric::roots::{brent, RootOptions};
use ssn_units::{Henrys, Seconds, SlewRate, Volts};

/// Device and circuit parameters shared by all baseline estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineInputs {
    /// Alpha-power drive `B` (A / V^alpha).
    pub b: f64,
    /// Threshold voltage (V).
    pub vth: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Number of simultaneously switching drivers.
    pub n: usize,
    /// Ground-path inductance.
    pub l: Henrys,
    /// Input slew rate.
    pub s: SlewRate,
    /// Supply voltage.
    pub vdd: Volts,
}

impl BaselineInputs {
    /// Builds the inputs for `n` standard output drivers of `process`
    /// switching with rise time `tr` behind inductance `l`.
    pub fn from_process(process: &Process, n: usize, l: Henrys, tr: Seconds) -> Self {
        let d = process.output_driver();
        Self {
            b: d.drive(),
            vth: d.vth0(),
            alpha: d.alpha(),
            n,
            l,
            s: process.vdd() / tr,
            vdd: process.vdd(),
        }
    }

    fn vgt_max(&self) -> f64 {
        (self.vdd.value() - self.vth).max(0.0)
    }
}

/// Senthinathan–Prince 1991: square-law devices, `dVn/dt` neglected.
///
/// The equivalent square-law transconductance is matched to the alpha-power
/// full-on current (`beta/2 (Vdd - Vth)^2 = B (Vdd - Vth)^alpha`), giving
///
/// ```text
/// Vn_max = N L beta s (Vdd - Vth) / (1 + N L beta s)
/// ```
pub fn senthinathan_prince(inp: &BaselineInputs) -> Volts {
    let vgt = inp.vgt_max();
    if vgt <= 0.0 {
        return Volts::ZERO;
    }
    let beta = 2.0 * inp.b * vgt.powf(inp.alpha - 2.0);
    let nlbs = inp.n as f64 * inp.l.value() * beta * inp.s.value();
    Volts::new(nlbs * vgt / (1.0 + nlbs))
}

/// Vemuru 1996: velocity-saturated device with constant `dI/dVgs`.
///
/// The constant derivative linearizes the device into
/// `I = K_v (V_gs - V_th)` with `K_v = alpha B (Vdd - Vth)^(alpha - 1)`
/// (the full-swing tangent), and the resulting first-order ODE gives
///
/// ```text
/// Vn_max = N L K_v s [1 - exp(-(Vdd - Vth) / (s N L K_v))]
/// ```
///
/// Structurally this is the paper's Eqn. 7 with `sigma = 1` and
/// `V_0 = V_th` — which is exactly why the ASDM paper outperforms it: the
/// fitted `sigma > 1` and `V_0 > V_th` capture source feedback and the
/// real turn-on point.
pub fn vemuru(inp: &BaselineInputs) -> Volts {
    let vgt = inp.vgt_max();
    if vgt <= 0.0 {
        return Volts::ZERO;
    }
    let kv = inp.alpha * inp.b * vgt.powf(inp.alpha - 1.0);
    let nlks = inp.n as f64 * inp.l.value() * kv * inp.s.value();
    Volts::new(nlks * (1.0 - (-vgt / nlks).exp()))
}

/// Song 1999: constant current derivative plus a linear-in-time noise
/// voltage `Vn(t) = (Vn_max / t_r) t`, yielding the implicit equation
///
/// ```text
/// Vn_max = N L alpha B (s - Vn_max/W) [ (s - Vn_max/W) W - ... ]^(alpha-1)
/// ```
///
/// evaluated at the end of the conduction window `W = (Vdd - Vth)/s` and
/// solved with Brent's method.
pub fn song(inp: &BaselineInputs) -> Volts {
    let vgt = inp.vgt_max();
    if vgt <= 0.0 {
        return Volts::ZERO;
    }
    let window = vgt / inp.s.value();
    let nlb = inp.n as f64 * inp.l.value() * inp.alpha * inp.b;
    let f = |v: f64| {
        let eff_slew = inp.s.value() - v / window;
        if eff_slew <= 0.0 {
            return -v;
        }
        let vgt_end = (eff_slew * window).max(0.0);
        nlb * eff_slew * vgt_end.powf(inp.alpha - 1.0) - v
    };
    // f(0) > 0 and f(Vdd) < 0 for physical inputs; fall back to 0 if the
    // bracket degenerates (ultra-weak drivers).
    let hi = inp.vdd.value();
    if f(0.0) <= 0.0 {
        return Volts::ZERO;
    }
    match brent(f, 0.0, hi, RootOptions::default()) {
        Ok(v) => Volts::new(v),
        Err(_) => Volts::new(hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> BaselineInputs {
        BaselineInputs::from_process(
            &Process::p018(),
            n,
            Henrys::from_nanos(5.0),
            Seconds::from_nanos(0.5),
        )
    }

    #[test]
    fn from_process_extracts_device() {
        let i = inputs(8);
        assert_eq!(i.n, 8);
        assert!((i.vth - 0.43).abs() < 1e-12);
        assert!((i.alpha - 1.24).abs() < 1e-12);
        assert!((i.s.value() - 3.6e9).abs() < 1.0);
    }

    #[test]
    fn all_baselines_grow_with_n() {
        for f in [senthinathan_prince, vemuru, song] {
            let v1 = f(&inputs(1)).value();
            let v8 = f(&inputs(8)).value();
            let v16 = f(&inputs(16)).value();
            assert!(v1 > 0.0);
            assert!(v8 > v1);
            assert!(v16 > v8);
            // Saturation: noise stays below the rail.
            assert!(v16 < 1.8);
        }
    }

    #[test]
    fn baselines_are_mutually_distinct() {
        let i = inputs(8);
        let sp = senthinathan_prince(&i).value();
        let ve = vemuru(&i).value();
        let so = song(&i).value();
        assert!((sp - ve).abs() > 1e-3, "sp = {sp}, ve = {ve}");
        assert!((ve - so).abs() > 1e-3, "ve = {ve}, so = {so}");
    }

    #[test]
    fn vemuru_reduces_to_asdm_form_with_sigma_one() {
        // With sigma = 1, V0 = vth, K = Kv, the paper's Eqn. 7 equals the
        // Vemuru expression — a consistency check tying the baseline to
        // the main model.
        use crate::lmodel;
        use crate::scenario::SsnScenario;
        use ssn_devices::Asdm;
        use ssn_units::Siemens;

        let i = inputs(8);
        let kv = i.alpha * i.b * i.vgt_max().powf(i.alpha - 1.0);
        let asdm = Asdm::new(Siemens::new(kv), 1.0, Volts::new(i.vth));
        let s = SsnScenario::from_asdm(asdm, i.vdd)
            .drivers(i.n)
            .inductance(i.l)
            .rise_time(Seconds::from_nanos(0.5))
            .build()
            .unwrap();
        let via_eqn7 = lmodel::vn_max(&s).value();
        let via_vemuru = vemuru(&i).value();
        assert!(
            (via_eqn7 - via_vemuru).abs() < 1e-12,
            "{via_eqn7} vs {via_vemuru}"
        );
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        let mut i = inputs(4);
        i.vth = 2.5; // above vdd: drivers never conduct
        assert_eq!(senthinathan_prince(&i), Volts::ZERO);
        assert_eq!(vemuru(&i), Volts::ZERO);
        assert_eq!(song(&i), Volts::ZERO);
    }

    #[test]
    fn song_solution_satisfies_its_own_equation() {
        let i = inputs(8);
        let v = song(&i).value();
        let window = i.vgt_max() / i.s.value();
        let eff = i.s.value() - v / window;
        let rhs =
            i.n as f64 * i.l.value() * i.alpha * i.b * eff * (eff * window).powf(i.alpha - 1.0);
        assert!((rhs - v).abs() < 1e-9, "residual {}", rhs - v);
    }
}
