// The `!(a > b)` validation idiom below deliberately treats NaN as a
// failure; the negated form is kept on purpose.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

//! Closed-form simultaneous switching noise (SSN) estimation with
//! application-specific device modeling.
//!
//! This crate implements the contribution of *Ding & Mazumder, "Accurate
//! Estimating Simultaneous Switching Noises by Using Application Specific
//! Device Modeling", DATE 2002*:
//!
//! * [`scenario`] — the [`SsnScenario`] bundle: an
//!   ASDM-modelled driver bank behind a package ground path,
//! * [`lmodel`] — the inductance-only SSN model (paper Section 3,
//!   Eqns. 6–10) including the `Z = N L s` circuit-oriented figure,
//! * [`lcmodel`] — the full LC model (Section 4, Table 1): damping
//!   classification, waveforms per region, the four-case maximum-SSN
//!   formulas and the critical capacitance,
//! * [`baselines`] — reimplementations of the prior models the paper
//!   compares against (Vemuru '96, Song '99, Senthinathan–Prince '91),
//! * [`bridge`] — generation and measurement of the equivalent
//!   driver-bank netlist in [`ssn_spice`] (the HSPICE substitute),
//! * [`design`] — the design-space utilities implied by Section 3
//!   (noise-budget sizing, slew targets, switching-skew scheduling),
//! * [`parallel`] — the deterministic chunked thread-pool engine behind
//!   Monte Carlo margining and design-space sweeps, with per-chunk panic
//!   isolation,
//! * [`oracle`] — the corpus-scale differential oracle harness
//!   cross-validating the closed forms against an MNA transient of the
//!   same linearized circuit, with minimized reproducers on disagreement,
//! * [`grids`] — grid-scale validation sweeps: synthesized power-grid
//!   circuits with 1000+ unknowns exercising the sparse/GMRES solver
//!   tier, with a sparse-vs-dense differential on the smaller meshes,
//! * [`durable`] — crash-safe checkpoint/resume (journaled, checksummed,
//!   atomic commits), deadline-budgeted execution ([`durable::RunBudget`]),
//!   and the declared degradation ladder for overruns,
//! * [`optimize`] — inverse design: a durable coarse-to-fine Pareto
//!   search over the `(N, L, C, tr)` space whose front is provably
//!   identical to exhaustive enumeration while evaluating fewer points,
//! * `faults` — deterministic fault-injection hooks (NaN model outputs,
//!   worker panics, forced solver failures), compiled in behind the
//!   `fault-injection` cargo feature and disarmed by default.
//!
//! # Examples
//!
//! Estimate the ground bounce of eight drivers behind a PGA package:
//!
//! ```
//! use ssn_core::scenario::SsnScenario;
//! use ssn_core::{lmodel, lcmodel};
//! use ssn_devices::process::Process;
//! use ssn_units::Seconds;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let process = Process::p018();
//! let scenario = SsnScenario::builder(&process)
//!     .drivers(8)
//!     .rise_time(Seconds::from_nanos(0.5))
//!     .build()?;
//! let quick = lmodel::vn_max(&scenario);          // L-only estimate
//! let (full, case) = lcmodel::vn_max(&scenario);  // LC Table-1 estimate
//! assert!(quick.value() > 0.3 && quick.value() < 1.2);
//! assert!((quick.value() - full.value()).abs() / quick.value() < 0.2);
//! println!("Vmax = {full} ({case})");
//! # Ok(())
//! # }
//! ```

pub mod baselines;
pub mod bridge;
pub mod design;
pub mod durable;
pub mod error;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod grids;
mod hooks;
pub mod lcmodel;
pub mod lmodel;
pub mod montecarlo;
pub mod optimize;
pub mod oracle;
pub mod parallel;
pub mod report;
pub mod scenario;
pub mod storage;

/// Structured tracing and metrics for the estimation pipeline.
///
/// A re-export of the zero-dependency `ssn-telemetry` crate (it lives
/// below `ssn-numeric` in the dependency graph so the solver ladder and
/// ODE integrator can be instrumented too). Recording is off until a
/// [`telemetry::Session`] starts, and never affects estimation results —
/// the determinism tests pin `--telemetry` on/off bit-identity at every
/// thread count.
pub mod telemetry {
    pub use ssn_telemetry::*;
}

pub use error::SsnError;
pub use lcmodel::{Damping, MaxSsnCase};
pub use scenario::SsnScenario;
