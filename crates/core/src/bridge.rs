//! Bridge to the validation simulator: builds the equivalent driver-bank
//! netlist in [`ssn_spice`] and measures the simulated SSN.
//!
//! This module plays the role HSPICE plays in the paper: the closed-form
//! models of [`crate::lmodel`] / [`crate::lcmodel`] are judged against a
//! full nonlinear transient of the same circuit with the *golden* device
//! model (not the fitted ASDM).
//!
//! Circuit topology (paper Fig. 2's setup):
//!
//! ```text
//!             vin (ramp) ----+----------+---- ... N gates
//!                            |          |
//!   out_i: [C_load, ic=Vdd]--+ drain    |
//!                     NFET x N          |
//!                            | source   |
//!                    ng -----+----------+----   (bouncing internal ground)
//!                     |      |
//!                     L      C (optional)
//!                     |      |
//!                    gnd ---gnd                 (true ground)
//! ```
//!
//! The NFET bulks tie to the *true* ground. The paper's Fig. 1 instead holds
//! `V_B = V_S`; our choice routes the source sensitivity through the body
//! effect rather than channel-length modulation, which produces the same
//! `sigma > 1` signature with a cleaner separation — the substitution is
//! recorded in DESIGN.md.

use crate::error::SsnError;
use crate::scenario::{Rail, SsnScenario};
use ssn_devices::process::Process;
use ssn_devices::{MosModel, MosPolarity};
use ssn_spice::{ac_analysis, transient, AcOptions, Circuit, SourceWave, TranOptions};
use ssn_units::{Farads, Henrys, Hertz, Seconds, Volts};
use ssn_waveform::Waveform;
use std::sync::Arc;

/// Configuration of the simulated driver bank.
#[derive(Debug, Clone)]
pub struct DriverBankConfig {
    model: Arc<dyn MosModel>,
    n_drivers: usize,
    inductance: Henrys,
    capacitance: Farads,
    vdd: Volts,
    rise_time: Seconds,
    load_capacitance: Farads,
    input_delay: Seconds,
    sim_margin: f64,
    rail: Rail,
    victim: bool,
    stagger: Option<Stagger>,
    resistance: ssn_units::Ohms,
    mixed_models: Option<Vec<Arc<dyn MosModel>>>,
    esd_clamp: Option<ssn_devices::Diode>,
}

/// Staggered-switching configuration: the bank is split into `groups`
/// groups whose input ramps start `group_delay` apart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stagger {
    /// Number of groups (>= 1).
    pub groups: usize,
    /// Delay between consecutive group firings.
    pub group_delay: Seconds,
}

impl DriverBankConfig {
    /// A bank of `n` standard output drivers of `process` behind its
    /// package parasitics.
    pub fn from_process(process: &Process, n: usize) -> Self {
        let pkg = process.package();
        Self {
            model: Arc::new(process.output_driver()),
            n_drivers: n,
            inductance: pkg.inductance,
            capacitance: pkg.capacitance,
            vdd: process.vdd(),
            rise_time: Seconds::from_nanos(0.5),
            load_capacitance: Farads::from_picos(5.0),
            input_delay: Seconds::from_picos(50.0),
            sim_margin: 1.5,
            rail: Rail::Ground,
            victim: false,
            stagger: None,
            resistance: ssn_units::Ohms::ZERO,
            mixed_models: None,
            esd_clamp: None,
        }
    }

    /// Mirrors a closed-form [`SsnScenario`] with an explicit golden device
    /// (`model` should be the device the scenario's ASDM was fitted to).
    pub fn from_scenario(scenario: &SsnScenario, model: Arc<dyn MosModel>) -> Self {
        Self {
            model,
            n_drivers: scenario.n_drivers(),
            inductance: scenario.inductance(),
            capacitance: scenario.capacitance(),
            vdd: scenario.vdd(),
            rise_time: scenario.rise_time(),
            load_capacitance: Farads::from_picos(5.0),
            input_delay: Seconds::from_picos(50.0),
            sim_margin: 1.5,
            rail: scenario.rail(),
            victim: false,
            stagger: None,
            resistance: ssn_units::Ohms::ZERO,
            mixed_models: None,
            esd_clamp: None,
        }
    }

    /// Adds a series resistance to the package path (the paper's 10 mOhm
    /// PGA value, neglected in the closed forms — this knob lets the
    /// neglect be *verified* rather than assumed).
    pub fn with_series_resistance(mut self, r: ssn_units::Ohms) -> Self {
        self.resistance = r;
        self
    }

    /// Adds an anti-parallel ESD clamp diode pair between the internal
    /// ground and the true ground — the pad-ring structure that clips large
    /// bounces at roughly one forward drop.
    pub fn with_esd_clamp(mut self, diode: ssn_devices::Diode) -> Self {
        self.esd_clamp = Some(diode);
        self
    }

    /// Replaces the uniform bank with an explicit per-driver model list
    /// (heterogeneous bank; the driver count follows the list length).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn with_mixed_models(mut self, models: Vec<Arc<dyn MosModel>>) -> Self {
        assert!(!models.is_empty(), "mixed bank must contain devices");
        self.n_drivers = models.len();
        self.mixed_models = Some(models);
        self
    }

    /// The model for driver `i`.
    fn driver_model(&self, i: usize) -> Arc<dyn MosModel> {
        match &self.mixed_models {
            Some(models) => models[i].clone(),
            None => self.model.clone(),
        }
    }

    /// Analyzes the power rail instead of the ground rail: the bank becomes
    /// PMOS pull-ups charging the loads through the VDD package path, and
    /// the measured quantity is the supply droop `V_dd - v(vp)` (paper
    /// Section 2: "the SSN at the power-supply node can be analyzed
    /// similarly").
    pub fn with_rail(mut self, rail: Rail) -> Self {
        self.rail = rail;
        self
    }

    /// Adds a quiet victim driver: its gate is held at `V_dd` so its output
    /// is solidly LOW — until the shared ground bounces and couples through
    /// the on transistor. Measured in
    /// [`SsnMeasurement::victim_glitch`]. Ground rail only.
    pub fn with_victim(mut self) -> Self {
        self.victim = true;
        self
    }

    /// Splits the bank into staggered groups (the design mitigation of
    /// paper Section 3, made simulatable).
    pub fn with_stagger(mut self, stagger: Stagger) -> Self {
        self.stagger = Some(stagger);
        self
    }

    /// Extends the simulated window to `margin` rise times past the ramp
    /// (default 1.5). Needed when observing slow post-ramp settling, e.g.
    /// heavily loaded output transitions.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not positive and finite.
    pub fn with_sim_margin(mut self, margin: f64) -> Self {
        assert!(
            margin.is_finite() && margin > 0.0,
            "sim margin must be positive"
        );
        self.sim_margin = margin;
        self
    }

    /// Overrides the input rise time.
    pub fn with_rise_time(mut self, tr: Seconds) -> Self {
        self.rise_time = tr;
        self
    }

    /// Overrides the simulator-side settling delay before the input ramp
    /// starts (default 50 ps).
    ///
    /// The delay exists only on the *simulator* axis: [`measure`] shifts
    /// every waveform back by exactly this amount, so the model axis always
    /// has the ramp starting at `t = 0` and conduction starting at
    /// `t_0 = V_0 / s` — the closed forms' `t' = t - V_0/s` origin. The
    /// regression tests pin that measurements are invariant to this knob.
    pub fn with_input_delay(mut self, delay: Seconds) -> Self {
        self.input_delay = delay;
        self
    }

    /// The simulator-side settling delay before the input ramp starts.
    pub fn input_delay(&self) -> Seconds {
        self.input_delay
    }

    /// Overrides the package parasitics.
    pub fn with_package(mut self, l: Henrys, c: Farads) -> Self {
        self.inductance = l;
        self.capacitance = c;
        self
    }

    /// Overrides the per-driver output load.
    pub fn with_load(mut self, c_load: Farads) -> Self {
        self.load_capacitance = c_load;
        self
    }

    /// Number of drivers in the bank.
    pub fn n_drivers(&self) -> usize {
        self.n_drivers
    }

    /// Number of distinct input ramps (1 without staggering).
    fn n_groups(&self) -> usize {
        self.stagger
            .map_or(1, |s| s.groups.max(1).min(self.n_drivers))
    }

    /// Rejects configurations the simulator cannot handle before any
    /// netlist is built: zero drivers, non-positive or non-finite package
    /// inductance, rise time, or supply, and negative or non-finite
    /// capacitances.
    ///
    /// # Errors
    ///
    /// Returns [`SsnError::InvalidInput`] naming the offending field.
    pub fn validate(&self) -> Result<(), SsnError> {
        if self.n_drivers == 0 {
            return Err(SsnError::invalid(
                "drivers",
                0.0,
                "the bank needs at least one driver",
            ));
        }
        let l = self.inductance.value();
        if !(l > 0.0) || !l.is_finite() {
            return Err(SsnError::invalid(
                "inductance",
                l,
                "package inductance must be positive and finite",
            ));
        }
        let c = self.capacitance.value();
        if !(c >= 0.0) || !c.is_finite() {
            return Err(SsnError::invalid(
                "capacitance",
                c,
                "package capacitance must be non-negative and finite",
            ));
        }
        let tr = self.rise_time.value();
        if !(tr > 0.0) || !tr.is_finite() {
            return Err(SsnError::invalid(
                "rise time",
                tr,
                "input rise time must be positive and finite",
            ));
        }
        let vdd = self.vdd.value();
        if !(vdd > 0.0) || !vdd.is_finite() {
            return Err(SsnError::invalid(
                "Vdd",
                vdd,
                "supply voltage must be positive and finite",
            ));
        }
        let cl = self.load_capacitance.value();
        if !(cl >= 0.0) || !cl.is_finite() {
            return Err(SsnError::invalid(
                "load capacitance",
                cl,
                "per-driver load must be non-negative and finite",
            ));
        }
        let delay = self.input_delay.value();
        if !(delay >= 0.0) || !delay.is_finite() {
            return Err(SsnError::invalid(
                "input delay",
                delay,
                "input delay must be non-negative and finite",
            ));
        }
        Ok(())
    }

    /// Builds the driver-bank netlist for the configured rail.
    ///
    /// # Errors
    ///
    /// Returns [`SsnError::InvalidInput`] for a configuration that fails
    /// [`Self::validate`]; otherwise propagates netlist construction
    /// failures (cannot occur for a valid configuration; surfaced for API
    /// honesty).
    pub fn build_circuit(&self) -> Result<Circuit, SsnError> {
        self.validate()?;
        match self.rail {
            Rail::Ground => self.build_ground_circuit(),
            Rail::Power => self.build_power_circuit(),
        }
    }

    fn input_node(&self, i: usize) -> String {
        if self.n_groups() > 1 {
            format!("in{}", i * self.n_groups() / self.n_drivers)
        } else {
            "in".to_owned()
        }
    }

    fn add_inputs(&self, c: &mut Circuit, rising: bool) -> Result<(), SsnError> {
        let vdd = self.vdd.value();
        let tr = self.rise_time.value();
        let (v0, v1) = if rising { (0.0, vdd) } else { (vdd, 0.0) };
        if self.n_groups() > 1 {
            for g in 0..self.n_groups() {
                let delay = self.input_delay.value()
                    + g as f64 * self.stagger.expect("staggered").group_delay.value();
                let node = format!("in{g}");
                c.vsource(
                    &format!("vin{g}"),
                    &node,
                    "0",
                    SourceWave::ramp(v0, v1, delay, tr),
                )?;
                c.set_initial_voltage(&node, v0)?;
            }
        } else {
            c.vsource(
                "vin",
                "in",
                "0",
                SourceWave::ramp(v0, v1, self.input_delay.value(), tr),
            )?;
            c.set_initial_voltage("in", v0)?;
        }
        Ok(())
    }

    fn build_ground_circuit(&self) -> Result<Circuit, SsnError> {
        let mut c = Circuit::new();
        let vdd = self.vdd.value();
        self.add_inputs(&mut c, true)?;
        if self.resistance.value() > 0.0 {
            c.inductor_with_ic("lg", "ng", "ngr", self.inductance.value(), 0.0)?;
            c.resistor("rg", "ngr", "0", self.resistance.value())?;
            c.set_initial_voltage("ngr", 0.0)?;
        } else {
            c.inductor_with_ic("lg", "ng", "0", self.inductance.value(), 0.0)?;
        }
        if self.capacitance.value() > 0.0 {
            c.capacitor_with_ic("cg", "ng", "0", self.capacitance.value(), 0.0)?;
        }
        if let Some(diode) = self.esd_clamp {
            c.diode("desd_up", "ng", "0", diode)?;
            c.diode("desd_dn", "0", "ng", diode)?;
        }
        for i in 0..self.n_drivers {
            let out = format!("out{i}");
            let gate = self.input_node(i);
            c.mosfet(
                &format!("m{i}"),
                MosPolarity::Nmos,
                &out,
                &gate,
                "ng",
                "0",
                self.driver_model(i),
            )?;
            c.capacitor_with_ic(
                &format!("cl{i}"),
                &out,
                "0",
                self.load_capacitance.value(),
                vdd,
            )?;
            c.set_initial_voltage(&out, vdd)?;
        }
        if self.victim {
            // Quiet victim: gate pinned high, output solidly LOW through
            // the (on) pull-down — until the ground node bounces.
            c.vsource("vgh", "gh", "0", SourceWave::Dc(vdd))?;
            c.mosfet(
                "mv",
                MosPolarity::Nmos,
                "outv",
                "gh",
                "ng",
                "0",
                self.model.clone(),
            )?;
            c.capacitor_with_ic("clv", "outv", "0", self.load_capacitance.value(), 0.0)?;
            c.set_initial_voltage("gh", vdd)?;
            c.set_initial_voltage("outv", 0.0)?;
        }
        c.set_initial_voltage("ng", 0.0)?;
        Ok(c)
    }

    /// The exact dual: PMOS pull-ups charging the loads through the VDD
    /// package path; the bulk ties to the true (quiet) supply, mirroring
    /// the ground case's bulk at the true ground.
    fn build_power_circuit(&self) -> Result<Circuit, SsnError> {
        let mut c = Circuit::new();
        let vdd = self.vdd.value();
        self.add_inputs(&mut c, false)?; // falling ramp turns the PMOS on
        c.vsource("vsup", "vddtrue", "0", SourceWave::Dc(vdd))?;
        c.inductor_with_ic("lp", "vddtrue", "vp", self.inductance.value(), 0.0)?;
        if self.capacitance.value() > 0.0 {
            c.capacitor_with_ic("cp", "vp", "0", self.capacitance.value(), vdd)?;
        }
        for i in 0..self.n_drivers {
            let out = format!("out{i}");
            let gate = self.input_node(i);
            c.mosfet(
                &format!("m{i}"),
                MosPolarity::Pmos,
                &out,
                &gate,
                "vp",
                "vddtrue",
                self.driver_model(i),
            )?;
            c.capacitor_with_ic(
                &format!("cl{i}"),
                &out,
                "0",
                self.load_capacitance.value(),
                0.0,
            )?;
            c.set_initial_voltage(&out, 0.0)?;
        }
        c.set_initial_voltage("vp", vdd)?;
        c.set_initial_voltage("vddtrue", vdd)?;
        Ok(c)
    }

    fn t_stop(&self) -> f64 {
        let stagger_span =
            (self.n_groups() - 1) as f64 * self.stagger.map_or(0.0, |s| s.group_delay.value());
        self.input_delay.value() + stagger_span + self.rise_time.value() * (1.0 + self.sim_margin)
    }
}

/// The simulated SSN experiment outcome. All waveforms are on the *model*
/// time axis (the first input ramp starts at `t = 0`).
#[derive(Debug, Clone)]
pub struct SsnMeasurement {
    /// The rail disturbance: ground bounce `V_n(t)` for the ground rail,
    /// supply droop `V_dd - v(vp)` for the power rail.
    pub ground_bounce: Waveform,
    /// The current through the package inductor on the analyzed rail.
    pub inductor_current: Waveform,
    /// The (first group's) input ramp as simulated.
    pub input: Waveform,
    /// One representative driver output (`out0`).
    pub output: Waveform,
    /// The quiet victim's output glitch, when
    /// [`DriverBankConfig::with_victim`] is enabled.
    pub victim_glitch: Option<Waveform>,
    /// Maximum rail disturbance within the switching window — the quantity
    /// the paper's Table 1 predicts. (The window is `[0, t_r]`, extended by
    /// the stagger span when groups fire at different times.)
    pub vn_max: Volts,
    /// Time of that maximum on the model axis.
    pub vn_peak_time: Seconds,
    /// Maximum disturbance over the whole simulated window (including
    /// post-ramp ringing), for diagnostics.
    pub vn_max_global: Volts,
}

/// Simulates the driver bank and extracts the SSN quantities.
///
/// # Errors
///
/// Returns [`SsnError::InvalidInput`] for a configuration that fails
/// [`DriverBankConfig::validate`]; otherwise propagates simulator failures
/// ([`SsnError::Simulation`]).
pub fn measure(cfg: &DriverBankConfig) -> Result<SsnMeasurement, SsnError> {
    let circuit = cfg.build_circuit()?;
    let opts = TranOptions {
        lte_rel: 0.002,
        lte_abs: 2e-5,
        ..TranOptions::to(cfg.t_stop())
            .with_ic()
            .with_dt_max(cfg.rise_time.value() / 50.0)
    };
    let result = transient(&circuit, opts)?;

    let delay = cfg.input_delay.value();
    let shift = |w: &Waveform| -> Result<Waveform, SsnError> { Ok(w.shifted(-delay)) };

    let vdd = cfg.vdd.value();
    let (ground_bounce, inductor_current) = match cfg.rail {
        Rail::Ground => (
            shift(&result.voltage("ng")?)?,
            shift(&result.branch_current("lg")?)?,
        ),
        Rail::Power => (
            shift(&result.voltage("vp")?)?.map(|v| vdd - v),
            shift(&result.branch_current("lp")?)?,
        ),
    };
    let input_node = if cfg.n_groups() > 1 { "in0" } else { "in" };
    let input = shift(&result.voltage(input_node)?)?;
    let output = shift(&result.voltage("out0")?)?;
    let victim_glitch = if cfg.victim {
        Some(shift(&result.voltage("outv")?)?)
    } else {
        None
    };

    // In-window maximum: clip to the switching window on the model axis.
    let window = cfg.rise_time.value()
        + (cfg.n_groups() - 1) as f64 * cfg.stagger.map_or(0.0, |s| s.group_delay.value());
    let windowed = ground_bounce.clipped(0.0, window)?;
    let peak = windowed.peak();
    let global = ground_bounce.peak();

    Ok(SsnMeasurement {
        ground_bounce,
        inductor_current,
        input,
        output,
        victim_glitch,
        vn_max: Volts::new(peak.value),
        vn_peak_time: Seconds::new(peak.time),
        vn_max_global: Volts::new(global.value),
    })
}

/// Measures the small-signal impedance seen looking into the internal
/// ground node, with all driver gates biased at `gate_bias` (DC). The
/// resonance of this impedance is the frequency-domain face of the
/// time-domain damping classification in [`crate::lcmodel`].
///
/// Returns `(frequencies, |Z| in ohms)`.
///
/// # Errors
///
/// Returns [`SsnError::InvalidInput`] for a configuration that fails
/// [`DriverBankConfig::validate`] or a non-positive / inverted frequency
/// range; otherwise propagates circuit and AC-analysis failures.
pub fn ground_impedance(
    cfg: &DriverBankConfig,
    gate_bias: Volts,
    f_lo: Hertz,
    f_hi: Hertz,
    points_per_decade: usize,
) -> Result<(Vec<f64>, Vec<f64>), SsnError> {
    cfg.validate()?;
    if !(f_lo.value() > 0.0) || !f_lo.value().is_finite() {
        return Err(SsnError::invalid(
            "sweep start frequency",
            f_lo.value(),
            "must be positive and finite",
        ));
    }
    if !(f_hi.value() > f_lo.value()) || !f_hi.value().is_finite() {
        return Err(SsnError::invalid(
            "sweep stop frequency",
            f_hi.value(),
            "must be finite and above the start frequency",
        ));
    }
    let mut c = Circuit::new();
    let vdd = cfg.vdd.value();
    c.vsource("vbias", "in", "0", SourceWave::Dc(gate_bias.value()))?;
    c.inductor("lg", "ng", "0", cfg.inductance.value())?;
    if cfg.capacitance.value() > 0.0 {
        c.capacitor("cg", "ng", "0", cfg.capacitance.value())?;
    }
    c.vsource("vddsrc", "vdd", "0", SourceWave::Dc(vdd))?;
    for i in 0..cfg.n_drivers {
        // Drains held at the rail (the paper's "output stays high").
        c.mosfet(
            &format!("m{i}"),
            MosPolarity::Nmos,
            "vdd",
            "in",
            "ng",
            "0",
            cfg.model.clone(),
        )?;
    }
    // Unit AC current injected into the bouncing node: V(ng) == Z(jw).
    c.isource("iprobe", "0", "ng", SourceWave::Dc(0.0))?;
    let opts = AcOptions::log_sweep("iprobe", f_lo.value(), f_hi.value(), points_per_decade);
    let res = ac_analysis(&c, &opts)?;
    let mag = res.magnitude("ng")?;
    Ok((res.frequencies().to_vec(), mag.values().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lcmodel, lmodel};

    fn p018_config(n: usize) -> DriverBankConfig {
        DriverBankConfig::from_process(&Process::p018(), n)
    }

    #[test]
    fn circuit_structure() {
        let cfg = p018_config(4);
        let c = cfg.build_circuit().unwrap();
        // vin + lg + cg + 4 * (fet + load) = 11 elements.
        assert_eq!(c.element_count(), 11);
        assert!(c.find_element("m3").is_some());
        assert!(c.find_element("cl0").is_some());
        assert!(c.find_node("ng").is_some());
        assert_eq!(cfg.n_drivers(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected_before_simulation() {
        use crate::error::SsnError;
        let cases: Vec<(DriverBankConfig, &str)> = vec![
            (
                p018_config(4).with_package(Henrys::ZERO, Farads::ZERO),
                "inductance",
            ),
            (
                p018_config(4).with_package(Henrys::new(f64::NAN), Farads::ZERO),
                "inductance",
            ),
            (
                p018_config(4).with_package(Henrys::from_nanos(5.0), Farads::new(-1e-12)),
                "capacitance",
            ),
            (p018_config(4).with_rise_time(Seconds::ZERO), "rise time"),
            (
                p018_config(4).with_rise_time(Seconds::new(f64::INFINITY)),
                "rise time",
            ),
            (
                p018_config(4).with_load(Farads::new(f64::NAN)),
                "load capacitance",
            ),
            (
                p018_config(4).with_input_delay(Seconds::new(-1e-12)),
                "input delay",
            ),
            (
                p018_config(4).with_input_delay(Seconds::new(f64::NAN)),
                "input delay",
            ),
        ];
        for (cfg, want_field) in cases {
            let err = measure(&cfg).unwrap_err();
            assert!(
                matches!(err, SsnError::InvalidInput { field, .. } if field == want_field),
                "expected InvalidInput on {want_field}, got: {err}"
            );
        }
        // Frequency-range validation on the impedance probe.
        let good = p018_config(2);
        assert!(ground_impedance(&good, Volts::ZERO, Hertz::ZERO, Hertz::new(1e9), 10).is_err());
        assert!(
            ground_impedance(&good, Volts::ZERO, Hertz::new(1e9), Hertz::new(1e6), 10).is_err()
        );
    }

    #[test]
    fn c_zero_omits_ground_capacitor() {
        let cfg = p018_config(2).with_package(Henrys::from_nanos(5.0), Farads::ZERO);
        let c = cfg.build_circuit().unwrap();
        assert!(c.find_element("cg").is_none());
    }

    #[test]
    fn measurement_produces_physical_bounce() {
        let meas = measure(&p018_config(8)).unwrap();
        // The ground must bounce up, but stay below the supply.
        assert!(meas.vn_max.value() > 0.1, "vn_max = {}", meas.vn_max);
        assert!(meas.vn_max.value() < 1.8);
        // Bounce starts at zero.
        assert!(meas.ground_bounce.sample(0.0).abs() < 1e-3);
        // Inductor current is zero initially, grows into the tens of mA.
        assert!(meas.inductor_current.sample(0.0).abs() < 1e-6);
        assert!(meas.inductor_current.peak().value > 10e-3);
        // Input reaches the rail.
        assert!((meas.input.sample(0.5e-9) - 1.8).abs() < 1e-6);
        // Output stays high during the ramp (the paper's assumption).
        assert!(
            meas.output.sample(0.5e-9) > 1.5,
            "out = {}",
            meas.output.sample(0.5e-9)
        );
        // Peak bookkeeping.
        assert!(meas.vn_max_global >= meas.vn_max);
        assert!(meas.vn_peak_time.value() <= 0.5e-9 + 1e-15);
    }

    #[test]
    fn model_axis_is_invariant_to_input_delay() {
        // Regression: the simulator settling delay must cancel exactly in
        // the scenario→netlist→measurement round trip. If the conversion
        // dropped (or double-counted) the delay, the model-axis peak time
        // would move by the delay change — far outside these tolerances.
        let tr = 0.5e-9;
        let base = measure(&p018_config(8)).unwrap();
        let moved = measure(&p018_config(8).with_input_delay(Seconds::from_picos(300.0))).unwrap();
        let dv = (moved.vn_max.value() - base.vn_max.value()).abs() / base.vn_max.value();
        assert!(dv < 5e-3, "vn_max moved by {dv} with the input delay");
        let dt = (moved.vn_peak_time.value() - base.vn_peak_time.value()).abs();
        assert!(
            dt < 0.02 * tr,
            "peak time moved by {dt} s with a 250 ps delay change"
        );
        // Default and accessor round trip.
        assert_eq!(
            p018_config(8).input_delay(),
            Seconds::from_picos(50.0),
            "documented default"
        );
        assert_eq!(
            p018_config(8)
                .with_input_delay(Seconds::from_picos(300.0))
                .input_delay(),
            Seconds::from_picos(300.0)
        );
    }

    #[test]
    fn conduction_start_matches_the_closed_form_time_origin() {
        // Pins the `t' = t - V0/s` offset: on the model axis the input
        // ramp crosses the ASDM displacement voltage V0 at exactly
        // t0 = V0 tr / Vdd, and the bounce is quiet until then.
        use std::sync::Arc;
        let process = Process::p018();
        let scenario = crate::scenario::SsnScenario::builder(&process)
            .drivers(8)
            .rise_time(Seconds::from_nanos(0.5))
            .build()
            .unwrap();
        let t0 = scenario.conduction_start().value();
        let tr = scenario.rise_time().value();
        assert!(t0 > 0.05 * tr && t0 < 0.95 * tr, "t0 = {t0}");
        let cfg = DriverBankConfig::from_scenario(&scenario, Arc::new(process.output_driver()));
        let meas = measure(&cfg).unwrap();
        let v0 = scenario.asdm().v0().value();
        let crossing = meas
            .input
            .first_rise_through(v0)
            .expect("input must cross V0");
        assert!(
            (crossing - t0).abs() < 0.01 * tr,
            "input crosses V0 at {crossing}, model t0 = {t0}"
        );
        // Before conduction the bank sinks no current: the bounce at
        // 0.5 * t0 is tiny compared to the peak (subthreshold only).
        let early = meas.ground_bounce.sample(0.5 * t0).abs();
        assert!(
            early < 0.05 * meas.vn_max.value(),
            "bounce {early} before conduction start (peak {})",
            meas.vn_max
        );
    }

    #[test]
    fn series_resistance_of_pga_is_negligible() {
        // Paper Section 1: "it is a very good approximation to neglect the
        // small resistance" — verified, not assumed.
        let without = measure(&p018_config(8)).unwrap().vn_max.value();
        let with_r =
            measure(&p018_config(8).with_series_resistance(ssn_units::Ohms::from_millis(10.0)))
                .unwrap()
                .vn_max
                .value();
        let rel = (with_r - without).abs() / without;
        assert!(rel < 0.005, "10 mOhm changed Vn_max by {rel}");
        // A deliberately large resistance does matter (sanity that the
        // knob is actually wired in).
        let with_big_r = measure(&p018_config(8).with_series_resistance(ssn_units::Ohms::new(5.0)))
            .unwrap()
            .vn_max
            .value();
        assert!(
            (with_big_r - without).abs() / without > 0.05,
            "5 Ohm should visibly change the bounce: {with_big_r} vs {without}"
        );
    }

    #[test]
    fn esd_clamp_clips_large_bounces() {
        use ssn_devices::Diode;
        // A big bank bounces near 0.95 V unclamped; a wide ESD diode pair
        // clips it near one forward drop.
        let n = 24;
        let unclamped = measure(&p018_config(n)).unwrap().vn_max.value();
        // Wide clamp: large saturation current (big junction area).
        let clamp = Diode::new(1e-11, 1.0);
        let clamped = measure(&p018_config(n).with_esd_clamp(clamp))
            .unwrap()
            .vn_max
            .value();
        assert!(unclamped > 0.85, "unclamped bounce {unclamped}");
        assert!(
            clamped < unclamped - 0.05,
            "clamp must reduce the bounce: {clamped} vs {unclamped}"
        );
        // The clamped level sits near the diode knee at the clamp current.
        assert!(clamped > 0.5 && clamped < 0.85, "clamped level {clamped}");
        // A small bounce is untouched (diode off below its knee).
        let small_off = measure(&p018_config(2)).unwrap().vn_max.value();
        let small_on = measure(&p018_config(2).with_esd_clamp(clamp))
            .unwrap()
            .vn_max
            .value();
        assert!(
            (small_off - small_on).abs() / small_off < 0.02,
            "clamp must not disturb small bounces: {small_on} vs {small_off}"
        );
    }

    #[test]
    fn mixed_width_bank_matches_aggregated_closed_form() {
        use crate::scenario::aggregate_asdm;
        use ssn_devices::fit::{fit_asdm, sample_ssn_region, SsnRegionSpec};

        let process = Process::p018();
        let spec = SsnRegionSpec::for_process(&process);
        // Four 1x drivers and two 2x drivers.
        let narrow = process.output_driver();
        let wide = process.output_driver_scaled(2.0);
        let asdm_narrow = fit_asdm(&sample_ssn_region(&narrow, &spec)).unwrap();
        let asdm_wide = fit_asdm(&sample_ssn_region(&wide, &spec)).unwrap();
        let bank = aggregate_asdm(&[(asdm_narrow, 4), (asdm_wide, 2)]).unwrap();
        // Width scaling scales K only.
        assert!(
            (asdm_wide.k().value() - 2.0 * asdm_narrow.k().value()).abs() / asdm_wide.k().value()
                < 1e-6
        );

        let scenario = crate::scenario::SsnScenario::from_asdm(bank, process.vdd())
            .drivers(1) // K already carries the whole bank
            .inductance(process.package().inductance)
            .capacitance(process.package().capacitance)
            .rise_time(Seconds::from_nanos(0.5))
            .build()
            .unwrap();
        let closed = crate::lcmodel::vn_max(&scenario).0.value();

        let models: Vec<Arc<dyn MosModel>> = (0..6)
            .map(|i| -> Arc<dyn MosModel> {
                if i < 4 {
                    Arc::new(narrow.clone())
                } else {
                    Arc::new(wide.clone())
                }
            })
            .collect();
        let cfg = p018_config(6).with_mixed_models(models);
        let sim = measure(&cfg).unwrap().vn_max.value();
        let rel = (closed - sim).abs() / sim;
        assert!(
            rel < 0.10,
            "mixed bank: closed {closed} vs sim {sim} ({rel:.3})"
        );
    }

    #[test]
    fn power_rail_droop_mirrors_ground_bounce() {
        // The paper: "the SSN at the power-supply node can be analyzed
        // similarly". With a symmetric PMOS stand-in the droop magnitude
        // lands in the same ballpark as the ground bounce.
        let ground = measure(&p018_config(8)).unwrap();
        let power = measure(&p018_config(8).with_rail(crate::scenario::Rail::Power)).unwrap();
        let g = ground.vn_max.value();
        let p = power.vn_max.value();
        assert!(p > 0.1, "droop {p}");
        assert!(
            (p - g).abs() / g < 0.35,
            "droop {p} vs bounce {g} diverge more than the device asymmetry allows"
        );
        // Droop starts at ~0 and the load output charges upward (it keeps
        // charging past the observed window; only the direction and a
        // substantial rise are asserted here).
        assert!(power.ground_bounce.sample(0.0).abs() < 5e-3);
        let early = power.output.sample(0.3e-9);
        let late = power.output.sample(1.2e-9);
        assert!(late > 0.8, "out = {late}");
        assert!(late > early);
    }

    #[test]
    fn victim_glitch_follows_ground_bounce() {
        let meas = measure(&p018_config(8).with_victim()).unwrap();
        let glitch = meas.victim_glitch.as_ref().expect("victim enabled");
        // The victim output is LOW; the bounce couples through the on
        // pull-down, so the glitch peak is positive, substantial, and
        // bounded by the bounce itself.
        let g = glitch.peak().value;
        let b = meas.ground_bounce.peak().value;
        assert!(g > 0.2 * b, "glitch {g} vs bounce {b}");
        assert!(g < 1.2 * b, "glitch {g} exceeds bounce {b}");
        // Starts clean.
        assert!(glitch.sample(0.0).abs() < 5e-3);
    }

    #[test]
    fn staggering_reduces_peak_noise() {
        let all_at_once = measure(&p018_config(8)).unwrap().vn_max.value();
        let staggered = measure(&p018_config(8).with_stagger(Stagger {
            groups: 4,
            group_delay: Seconds::from_nanos(1.0),
        }))
        .unwrap()
        .vn_max
        .value();
        // Four groups of two should bounce roughly like N = 2 (far less
        // than N = 8).
        let two = measure(&p018_config(2)).unwrap().vn_max.value();
        assert!(
            staggered < 0.6 * all_at_once,
            "stagger {staggered} vs simultaneous {all_at_once}"
        );
        assert!(
            (staggered - two).abs() / two < 0.25,
            "stagger {staggered} vs N=2 {two}"
        );
    }

    #[test]
    fn ground_impedance_resonates_at_omega0_when_drivers_off() {
        let cfg = p018_config(8);
        let l = 5e-9;
        let c = 1e-12f64;
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        // Gates at 0: drivers off, the network is a bare L || C tank.
        let (freqs, mags) = ground_impedance(
            &cfg,
            Volts::ZERO,
            Hertz::new(f0 / 30.0),
            Hertz::new(f0 * 30.0),
            40,
        )
        .unwrap();
        let peak_idx = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let peak_f = freqs[peak_idx];
        assert!(
            (peak_f - f0).abs() / f0 < 0.1,
            "resonance {peak_f:.3e} vs omega0/2pi {f0:.3e}"
        );
        // Gates fully on: the FET conductance damps the resonance.
        let (_, damped) = ground_impedance(
            &cfg,
            Volts::new(1.8),
            Hertz::new(f0 / 30.0),
            Hertz::new(f0 * 30.0),
            40,
        )
        .unwrap();
        let peak_on = damped.iter().copied().fold(0.0f64, f64::max);
        let peak_off = mags[peak_idx];
        assert!(
            peak_on < 0.3 * peak_off,
            "active drivers must damp the tank: {peak_on} vs {peak_off}"
        );
    }

    /// The headline validation: the closed-form models track the nonlinear
    /// golden-device simulation.
    #[test]
    fn closed_form_tracks_simulation() {
        let process = Process::p018();
        for n in [2usize, 8] {
            let scenario = crate::scenario::SsnScenario::builder(&process)
                .drivers(n)
                .build()
                .unwrap();
            let cfg = DriverBankConfig::from_scenario(&scenario, Arc::new(process.output_driver()));
            let meas = measure(&cfg).unwrap();
            let (lc, _) = lcmodel::vn_max(&scenario);
            let rel = (lc.value() - meas.vn_max.value()).abs() / meas.vn_max.value();
            assert!(
                rel < 0.10,
                "N = {n}: model {} vs sim {} ({:.1}%)",
                lc,
                meas.vn_max,
                rel * 100.0
            );
            // The L-only model is also in the right ballpark here
            // (over-damped region for N = 8).
            let l_only = lmodel::vn_max(&scenario);
            assert!((l_only.value() - meas.vn_max.value()).abs() / meas.vn_max.value() < 0.25);
        }
    }
}
