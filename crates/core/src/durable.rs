//! Durable execution: crash-safe checkpoint/resume, deadline budgets, and
//! graceful degradation for the long-running workloads.
//!
//! The heavy entry points — Monte Carlo margining, design-grid sweeps, and
//! the differential oracle — are exactly the jobs that die to a kill/OOM/
//! reboot and restart from zero. This module gives them three production
//! disciplines, all riding on the deterministic chunking of
//! [`crate::parallel`]:
//!
//! 1. **Journaled checkpoints** ([`CheckpointStore`]): completed chunks are
//!    committed to a versioned, checksummed binary journal via
//!    write-temp → fsync → rename, so the file on disk is always either the
//!    previous journal or the new one — never a torn hybrid. Because every
//!    chunk's result is a pure function of `(seed, chunk_index)` (the
//!    per-chunk RNG streams of [`ssn_numeric::rng::Rng::from_seed_and_stream`]),
//!    a run killed at any chunk boundary and resumed is **bit-identical**
//!    to an uninterrupted run, at any thread count.
//! 2. **Deadline budgets** ([`RunBudget`]): a wall-clock budget checked at
//!    chunk boundaries and — through [`ssn_numeric::cancel`] — inside the
//!    RKF45 and MNA transient inner loops, so `--deadline=30s` yields a
//!    typed partial result instead of a hung or truncated run.
//! 3. **Declared degradation**: on overrun the workload wrappers step down
//!    a fixed ladder (shrink sample count → coarsen grid → closed-form
//!    only), and every downgrade is recorded as a [`DegradeEvent`] in the
//!    run report and as a telemetry counter. Nothing degrades silently.
//!
//! # Journal format (version 1)
//!
//! All integers little-endian; all checksums 64-bit FNV-1a ([`fnv1a64`]).
//!
//! ```text
//! magic    8 B   "SSNCKPT1"
//! version  4 B   u32, currently 1
//! header:
//!   kind_len u32, kind bytes      workload tag ("montecarlo", ...)
//!   seed        u64
//!   params_hash u64               digest of every run parameter
//!   n_items     u64
//!   chunk_size  u64
//!   elapsed_ns  u64               wall time accumulated by prior sessions
//!   n_records   u64
//!   header_checksum u64           over bytes [8, here)
//! records (n_records times):
//!   chunk_index u64
//!   payload_len u64, payload bytes
//!   record_checksum u64           over chunk_index bytes ++ payload
//! ```
//!
//! A journal that fails *any* structural check — magic, version, header or
//! record checksum, record bounds, trailing bytes — is rejected with a
//! typed [`SsnError::Checkpoint`] naming the failed check and offering a
//! fresh start. A checkpoint is never "mostly trusted".
//!
//! Floats are stored via [`f64::to_bits`] and restored via
//! [`f64::from_bits`], so resumed values round-trip bit-exactly (NaN
//! payloads included).

use crate::error::{CheckpointErrorKind, SsnError};
use crate::hooks;
use crate::parallel::{try_run_chunked, ExecPolicy, ExecStats};
use crate::storage;
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Journal magic: "SSNCKPT1".
const MAGIC: &[u8; 8] = b"SSNCKPT1";
/// Journal format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// 64-bit FNV-1a over `bytes` — the journal's checksum function. Not
/// cryptographic; it defends against torn writes and bit rot, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a digest over a run's parameters, used as the journal's
/// `params_hash` so a checkpoint can never be resumed under different
/// settings. Floats contribute their exact bit patterns.
#[derive(Debug, Clone)]
pub struct ParamDigest {
    h: u64,
}

impl ParamDigest {
    /// Starts a digest tagged with the workload kind.
    pub fn new(kind: &str) -> Self {
        let mut d = Self {
            h: 0xcbf2_9ce4_8422_2325,
        };
        d.push_bytes(kind.as_bytes());
        d
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` parameter into the digest.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes());
        self
    }

    /// Folds an `f64` parameter into the digest, bit-exactly.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push_u64(v.to_bits())
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

/// Identity of a durable run: everything that determines its results.
/// A checkpoint commits to all five fields; resume refuses any mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Workload tag (`"montecarlo"`, `"sweep-grid"`, `"validate"`, ...).
    pub kind: &'static str,
    /// The run's RNG seed (0 for non-randomized workloads).
    pub seed: u64,
    /// [`ParamDigest`] over every remaining parameter.
    pub params_hash: u64,
    /// Total work items.
    pub n_items: usize,
    /// Items per chunk (the checkpoint granularity).
    pub chunk_size: usize,
}

impl RunSpec {
    /// Number of chunks the items split into.
    pub fn n_chunks(&self) -> usize {
        self.n_items.div_ceil(self.chunk_size.max(1))
    }

    /// The item range of chunk `c` (same boundaries as [`crate::parallel`]).
    pub fn range(&self, c: usize) -> Range<usize> {
        let size = self.chunk_size.max(1);
        c * size..((c + 1) * size).min(self.n_items)
    }
}

// ---------------------------------------------------------------------------
// Run budget
// ---------------------------------------------------------------------------

/// A cooperative wall-clock budget for a run.
///
/// Checked (cheaply) at every chunk boundary by the durable runner, and —
/// when a real deadline is armed — polled inside the RKF45/MNA inner loops
/// via [`ssn_numeric::cancel`], so even a single long transient cannot
/// overshoot by more than one timestep's work.
#[derive(Debug, Clone)]
pub struct RunBudget {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    /// Deterministic test budget: remaining `expired()` checks before the
    /// budget reports exhaustion. Wall-clock deadlines are inherently racy
    /// to test; this isn't.
    check_quota: Option<Arc<AtomicI64>>,
}

impl RunBudget {
    /// No budget: `expired()` is always false.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            check_quota: None,
        }
    }

    /// A wall-clock budget of `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            deadline: Instant::now().checked_add(budget),
            cancelled: Arc::new(AtomicBool::new(false)),
            check_quota: None,
        }
    }

    /// A deterministic budget that expires after `checks` calls to
    /// [`RunBudget::expired`]. The durable runner performs exactly one
    /// check per scheduled chunk, so under [`ExecPolicy::serial`] this
    /// expires at an exact, reproducible chunk boundary — the tool the
    /// degradation tests are built on.
    pub fn expire_after_checks(checks: usize) -> Self {
        Self {
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            check_quota: Some(Arc::new(AtomicI64::new(
                i64::try_from(checks).unwrap_or(i64::MAX),
            ))),
        }
    }

    /// Cancels the run unconditionally (used by the simulated-crash path).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// `true` once the budget is exhausted. Each call consumes one unit of
    /// a [`RunBudget::expire_after_checks`] quota.
    pub fn expired(&self) -> bool {
        if self.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        if let Some(quota) = &self.check_quota {
            return quota.fetch_sub(1, Ordering::SeqCst) <= 0;
        }
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Arms the process-wide kernel deadline for the lifetime of the
    /// returned guard (no-op without a wall-clock deadline: the
    /// deterministic test quota must not leak into kernels, whose poll
    /// counts are not reproducible).
    pub fn arm_kernels(&self) -> Option<ssn_numeric::cancel::DeadlineGuard> {
        self.deadline
            .map(|d| ssn_numeric::cancel::arm(Some(d.saturating_duration_since(Instant::now()))))
    }

    /// Wall-clock time left before the deadline (zero once past it).
    /// `None` when the budget has no wall-clock deadline — unlimited and
    /// check-quota budgets both report `None`, since neither maps to a
    /// socket- or kernel-level timeout.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for RunBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

/// Little-endian byte sink for chunk payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) -> &mut Self {
        self.put_u64(v as u64)
    }

    /// Appends an `f64` bit-exactly.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.put_u64(v.to_bits())
    }

    /// Appends a length-prefixed string.
    pub fn put_str(&mut self, s: &str) -> &mut Self {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// The accumulated bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

fn payload_err(detail: impl Into<String>) -> SsnError {
    SsnError::checkpoint("", CheckpointErrorKind::Corrupt, detail)
}

/// Little-endian byte source for chunk payloads; every read is
/// bounds-checked and a short payload is a typed corruption error, never a
/// panic or a silently wrong value.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reads from `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SsnError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(payload_err(format!(
                "payload truncated: wanted {n} byte(s) at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self) -> Result<u8, SsnError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SsnError> {
        let b = self.take(8)?;
        let mut le = [0u8; 8];
        le.copy_from_slice(b);
        Ok(u64::from_le_bytes(le))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn take_usize(&mut self) -> Result<usize, SsnError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| payload_err("payload value exceeds usize range"))
    }

    /// Reads an `f64` bit-exactly.
    pub fn take_f64(&mut self) -> Result<f64, SsnError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed string.
    pub fn take_str(&mut self) -> Result<String, SsnError> {
        let len = self.take_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| payload_err("payload string not UTF-8"))
    }

    /// `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Journal lock
// ---------------------------------------------------------------------------

/// An exclusive, crash-recoverable lock on a checkpoint journal.
///
/// Two processes resuming (and committing to) the same journal would race
/// each other's write-temp/rename commits and could interleave torn state;
/// the durable runner therefore takes `<journal>.lock` for the duration of
/// every checkpointed run. The lock file is created with `create_new`
/// (O_EXCL) and records the holder's PID:
///
/// * **Held by a live process** — acquisition fails with the typed
///   [`SsnError::Checkpoint`] `{kind: Locked}` naming the holder, never a
///   silent double-resume.
/// * **Left behind by a dead process** (`kill -9`, OOM, reboot) — the PID
///   no longer exists, the stale lock is removed, and acquisition
///   proceeds. A lock whose contents are unreadable garbage (torn write)
///   is treated as stale the same way.
///
/// Dropping the guard removes the lock file; an abnormal exit leaves it
/// for the next acquirer's staleness check.
#[derive(Debug)]
pub struct JournalLock {
    lock_path: PathBuf,
}

/// `<journal>.lock` — appended, not `with_extension`, so `run.ckpt` locks
/// as `run.ckpt.lock` and distinct journals never share a lock path.
fn lock_path_for(journal: &Path) -> PathBuf {
    let mut os = journal.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

/// Whether `pid` names a live process. On Linux this consults `/proc`;
/// elsewhere liveness cannot be probed from std alone, so locks are
/// conservatively treated as held.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

impl JournalLock {
    /// Acquires the exclusive lock for `journal`, recovering stale locks
    /// left by dead processes.
    ///
    /// # Errors
    ///
    /// [`SsnError::Checkpoint`] with [`CheckpointErrorKind::Locked`] when a
    /// live process holds the lock, or [`CheckpointErrorKind::Io`] for
    /// filesystem failures.
    pub fn acquire(journal: &Path) -> Result<Self, SsnError> {
        let lock_path = lock_path_for(journal);
        match Self::try_create(&lock_path)? {
            Some(lock) => Ok(lock),
            None => {
                // The lock file exists. Live holder → typed refusal; dead
                // or unreadable holder → stale, remove and retry once (a
                // live contender can still win that second race). An
                // unreadable or torn lock (a holder power-cut before its
                // PID landed) parses to no holder and is treated as stale.
                let holder = storage::io()
                    .read(&lock_path)
                    .ok()
                    .and_then(|b| String::from_utf8(b).ok())
                    .and_then(|s| s.trim().parse::<u32>().ok());
                if let Some(pid) = holder {
                    if pid_alive(pid) {
                        return Err(SsnError::checkpoint(
                            lock_path.display().to_string(),
                            CheckpointErrorKind::Locked,
                            format!("held by live process {pid}"),
                        ));
                    }
                }
                match storage::io().remove_file(&lock_path) {
                    Ok(()) => {}
                    // The dead holder's lock vanished under us: fine.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err(&lock_path, "remove stale lock", &e)),
                }
                match Self::try_create(&lock_path)? {
                    Some(lock) => Ok(lock),
                    None => Err(SsnError::checkpoint(
                        lock_path.display().to_string(),
                        CheckpointErrorKind::Locked,
                        "lock recreated while recovering a stale one (live contender)",
                    )),
                }
            }
        }
    }

    /// One exclusive-create attempt: `Ok(Some)` on success, `Ok(None)` when
    /// the lock file already exists, `Err` for any other filesystem failure.
    /// A failure after the file was created (ENOSPC or a failed fsync mid
    /// PID write) removes the partial lock so the failing process does not
    /// block the journal it never actually locked.
    fn try_create(lock_path: &Path) -> Result<Option<Self>, SsnError> {
        let pid_line = format!("{}\n", std::process::id());
        let attempt = storage::RetryPolicy::default().run(|| {
            match storage::io().create_new(lock_path, pid_line.as_bytes()) {
                Err(e) if e.kind() != std::io::ErrorKind::AlreadyExists => {
                    // Best-effort cleanup of a partially-written lock; a
                    // dead process (simulated kill) cannot clean up, and
                    // the next acquirer's staleness pass handles the husk.
                    let _ = storage::io().remove_file(lock_path);
                    Err(e)
                }
                other => other,
            }
        });
        match attempt {
            Ok(()) => Ok(Some(Self {
                lock_path: lock_path.to_path_buf(),
            })),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(io_err(lock_path, "create lock", &e)),
        }
    }

    /// The lock file's path (diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.lock_path
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.lock_path).ok();
    }
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

/// The journaled checkpoint store: committed chunk payloads plus the run
/// identity they belong to. See the module docs for the on-disk format.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    kind: String,
    seed: u64,
    params_hash: u64,
    n_items: u64,
    chunk_size: u64,
    prior_elapsed: Duration,
    records: BTreeMap<u64, Vec<u8>>,
}

fn io_err(path: &Path, op: &str, e: &std::io::Error) -> SsnError {
    SsnError::checkpoint(
        path.display().to_string(),
        CheckpointErrorKind::Io,
        format!("{op}: {e}"),
    )
}

/// The directory holding `path`, for post-rename directory fsync. A bare
/// relative filename has the empty parent, which cannot be opened — that
/// means the current directory.
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

impl CheckpointStore {
    /// A fresh, empty store for `spec`; nothing touches disk until the
    /// first [`CheckpointStore::commit`].
    pub fn create(path: PathBuf, spec: &RunSpec) -> Self {
        Self {
            path,
            kind: spec.kind.to_string(),
            seed: spec.seed,
            params_hash: spec.params_hash,
            n_items: spec.n_items as u64,
            chunk_size: spec.chunk_size as u64,
            prior_elapsed: Duration::ZERO,
            records: BTreeMap::new(),
        }
    }

    /// Loads and fully validates a journal. Every structural defect —
    /// truncation, bad magic, unknown version, checksum mismatch, record
    /// bounds, trailing bytes — is a typed [`SsnError::Checkpoint`].
    pub fn load(path: &Path) -> Result<Self, SsnError> {
        let bytes = storage::RetryPolicy::default()
            .run(|| storage::io().read(path))
            .map_err(|e| io_err(path, "read", &e))?;
        let p = path.display().to_string();
        let corrupt =
            |detail: String| SsnError::checkpoint(&p, CheckpointErrorKind::Corrupt, detail);

        let mut r = ByteReader::new(&bytes);
        let magic = r
            .take(8)
            .map_err(|_| corrupt("shorter than the 8-byte magic".into()))?;
        if magic != MAGIC {
            return Err(corrupt(format!(
                "bad magic {magic:02x?}: not an SSN checkpoint journal"
            )));
        }
        let version = {
            let b = r
                .take(4)
                .map_err(|_| corrupt("truncated before the version field".into()))?;
            u32::from_le_bytes([b[0], b[1], b[2], b[3]])
        };
        if version != FORMAT_VERSION {
            return Err(SsnError::checkpoint(
                &p,
                CheckpointErrorKind::VersionMismatch,
                format!("journal format version {version}, this build reads {FORMAT_VERSION}"),
            ));
        }

        let wrap = |e: SsnError| match e {
            SsnError::Checkpoint { detail, .. } => corrupt(detail),
            other => other,
        };
        let kind = r.take_str().map_err(wrap)?;
        let seed = r.take_u64().map_err(wrap)?;
        let params_hash = r.take_u64().map_err(wrap)?;
        let n_items = r.take_u64().map_err(wrap)?;
        let chunk_size = r.take_u64().map_err(wrap)?;
        let elapsed_ns = r.take_u64().map_err(wrap)?;
        let n_records = r.take_u64().map_err(wrap)?;
        let header_end = r.pos;
        let stored_header_sum = r.take_u64().map_err(wrap)?;
        let computed = fnv1a64(&bytes[8..header_end]);
        if stored_header_sum != computed {
            return Err(corrupt(format!(
                "header checksum mismatch (stored {stored_header_sum:016x}, computed {computed:016x})"
            )));
        }

        let mut records = BTreeMap::new();
        for i in 0..n_records {
            let chunk = r
                .take_u64()
                .map_err(|_| corrupt(format!("truncated in record {i}")))?;
            let len = r
                .take_usize()
                .map_err(|_| corrupt(format!("truncated in record {i}")))?;
            let payload = r
                .take(len)
                .map_err(|_| corrupt(format!("record {i} payload truncated")))?;
            let stored_sum = r
                .take_u64()
                .map_err(|_| corrupt(format!("record {i} missing its checksum")))?;
            let mut sum_input = chunk.to_le_bytes().to_vec();
            sum_input.extend_from_slice(payload);
            let computed = fnv1a64(&sum_input);
            if stored_sum != computed {
                return Err(corrupt(format!(
                    "record {i} (chunk {chunk}) checksum mismatch"
                )));
            }
            if records.insert(chunk, payload.to_vec()).is_some() {
                return Err(corrupt(format!("chunk {chunk} recorded twice")));
            }
        }
        if !r.is_empty() {
            return Err(corrupt(format!(
                "{} trailing byte(s) after the last record",
                bytes.len() - r.pos
            )));
        }

        Ok(Self {
            path: path.to_path_buf(),
            kind,
            seed,
            params_hash,
            n_items,
            chunk_size,
            prior_elapsed: Duration::from_nanos(elapsed_ns),
            records,
        })
    }

    /// Refuses a journal whose identity does not match this run, field by
    /// field — a checkpoint from different parameters must never be
    /// resumed into a wrong-but-plausible result.
    pub fn verify_spec(&self, spec: &RunSpec) -> Result<(), SsnError> {
        let mismatch = |field: &str, found: String, want: String| {
            SsnError::checkpoint(
                self.path.display().to_string(),
                CheckpointErrorKind::SpecMismatch,
                format!("{field}: journal has {found}, this run wants {want}"),
            )
        };
        if self.kind != spec.kind {
            return Err(mismatch("kind", self.kind.clone(), spec.kind.to_string()));
        }
        if self.seed != spec.seed {
            return Err(mismatch(
                "seed",
                self.seed.to_string(),
                spec.seed.to_string(),
            ));
        }
        if self.params_hash != spec.params_hash {
            return Err(mismatch(
                "params_hash",
                format!("{:016x}", self.params_hash),
                format!("{:016x}", spec.params_hash),
            ));
        }
        if self.n_items != spec.n_items as u64 {
            return Err(mismatch(
                "n_items",
                self.n_items.to_string(),
                spec.n_items.to_string(),
            ));
        }
        if self.chunk_size != spec.chunk_size as u64 {
            return Err(mismatch(
                "chunk_size",
                self.chunk_size.to_string(),
                spec.chunk_size.to_string(),
            ));
        }
        let n_chunks = spec.n_chunks() as u64;
        if let Some((&chunk, _)) = self.records.iter().next_back() {
            if chunk >= n_chunks {
                return Err(SsnError::checkpoint(
                    self.path.display().to_string(),
                    CheckpointErrorKind::Corrupt,
                    format!("record for chunk {chunk} but the run has only {n_chunks} chunk(s)"),
                ));
            }
        }
        Ok(())
    }

    /// Adds (or replaces) chunk `c`'s payload in memory; call
    /// [`CheckpointStore::commit`] to persist.
    pub fn record(&mut self, c: usize, payload: Vec<u8>) {
        self.records.insert(c as u64, payload);
    }

    /// Committed chunk payloads, keyed by chunk index.
    pub fn records(&self) -> &BTreeMap<u64, Vec<u8>> {
        &self.records
    }

    /// Wall time accumulated by the sessions that wrote this journal.
    pub fn prior_elapsed(&self) -> Duration {
        self.prior_elapsed
    }

    fn serialize(&self, elapsed: Duration) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str(&self.kind)
            .put_u64(self.seed)
            .put_u64(self.params_hash)
            .put_u64(self.n_items)
            .put_u64(self.chunk_size)
            .put_u64(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX))
            .put_u64(self.records.len() as u64);
        let header = w.into_vec();

        let mut bytes = Vec::with_capacity(header.len() + 64);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&header);
        let header_sum = fnv1a64(&bytes[8..]);
        bytes.extend_from_slice(&header_sum.to_le_bytes());

        for (&chunk, payload) in &self.records {
            bytes.extend_from_slice(&chunk.to_le_bytes());
            bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            bytes.extend_from_slice(payload);
            let mut sum_input = chunk.to_le_bytes().to_vec();
            sum_input.extend_from_slice(payload);
            bytes.extend_from_slice(&fnv1a64(&sum_input).to_le_bytes());
        }
        bytes
    }

    /// Atomically persists the journal: write `<path>.ckpt-tmp`, fsync,
    /// rename over `path`, then fsync the parent directory so the rename
    /// itself is durable (without it, a power cut after the rename can
    /// still lose the committed file on journaling filesystems). A crash
    /// at any point leaves either the previous journal or the new one —
    /// never a hybrid. `elapsed` is the run's total wall time so far
    /// (prior sessions plus this one). Transient I/O faults are retried
    /// with backoff; the whole sequence restarts from a fresh temp write,
    /// so a torn or unsynced attempt is never renamed into place.
    pub fn commit(&self, elapsed: Duration) -> Result<(), SsnError> {
        self.commit_io(elapsed)
            .map_err(|e| io_err(&self.path, "commit", &e))
    }

    /// [`CheckpointStore::commit`]'s I/O with the raw `io::Error` kept, so
    /// the durable runner can classify the failure (a simulated power cut
    /// vs. a disk fault worth degrading over).
    fn commit_io(&self, elapsed: Duration) -> std::io::Result<()> {
        let bytes = self.serialize(elapsed);
        let tmp = self.path.with_extension("ckpt-tmp");
        let dir = parent_dir(&self.path);
        storage::RetryPolicy::default().run(|| {
            storage::io().write_file(&tmp, &bytes)?;
            storage::io().rename(&tmp, &self.path)?;
            storage::io().fsync_dir(dir)
        })
    }

    /// Fault-injection support: deliberately writes only the first half of
    /// the serialized journal *directly* to the final path — the on-disk
    /// image a kill inside a non-atomic write would leave. Exists so tests
    /// and the CI gate can prove [`CheckpointStore::load`] rejects torn
    /// journals instead of trusting them.
    pub fn commit_torn(&self, elapsed: Duration) -> Result<(), SsnError> {
        let bytes = self.serialize(elapsed);
        let half = &bytes[..bytes.len() / 2];
        std::fs::write(&self.path, half).map_err(|e| io_err(&self.path, "torn write", &e))
    }
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

/// The fixed degradation ladder, in the order workloads apply it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeStep {
    /// Monte Carlo: deliver the samples completed before the deadline.
    ShrinkSamples,
    /// Design sweep: deliver the grid points completed before the deadline.
    CoarsenGrid,
    /// Differential oracle: stop cross-validating against the MNA
    /// simulator; remaining scenarios get closed-form evaluation only.
    ClosedFormOnly,
    /// Persistent storage failure (ENOSPC, exhausted retries): the run
    /// continued to a full-fidelity *result* but stopped journaling, so a
    /// kill after this point restarts from the last good commit instead
    /// of resuming. The only ladder step that degrades durability rather
    /// than result fidelity.
    Uncheckpointed,
}

impl DegradeStep {
    /// Short kebab-case tag used in reports and telemetry.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::ShrinkSamples => "shrink-samples",
            Self::CoarsenGrid => "coarsen-grid",
            Self::ClosedFormOnly => "closed-form-only",
            Self::Uncheckpointed => "checkpoint-disabled",
        }
    }
}

/// One recorded fidelity downgrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeEvent {
    /// Which ladder step fired.
    pub step: DegradeStep,
    /// Work items the run planned at full fidelity.
    pub planned: usize,
    /// Work items actually delivered at full fidelity.
    pub delivered: usize,
}

impl std::fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            DegradeStep::Uncheckpointed => write!(
                f,
                "{}: journaling stopped after {} of {} chunk commits; \
                 results are complete but the run is not resumable",
                self.step.tag(),
                self.delivered,
                self.planned
            ),
            _ => write!(
                f,
                "{}: {} -> {} of planned items at full fidelity",
                self.step.tag(),
                self.planned,
                self.delivered
            ),
        }
    }
}

/// Durability facts about a completed run, carried alongside its primary
/// result and rendered into the run report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Durability {
    /// Chunks restored from the checkpoint instead of recomputed.
    pub resumed_chunks: usize,
    /// Whether the run's budget expired before all chunks completed.
    pub deadline_hit: bool,
    /// Every fidelity downgrade, in the order it was applied.
    pub degradation: Vec<DegradeEvent>,
}

impl Durability {
    /// Records a downgrade in the report and the telemetry stream.
    pub fn note_degrade(&mut self, step: DegradeStep, planned: usize, delivered: usize) {
        self.degradation.push(DegradeEvent {
            step,
            planned,
            delivered,
        });
        if ssn_telemetry::enabled() {
            ssn_telemetry::add(ssn_telemetry::names::DURABLE_DEGRADED, 1);
        }
    }

    /// `true` when anything about the run was less than a fresh,
    /// full-fidelity execution.
    pub fn is_degraded(&self) -> bool {
        !self.degradation.is_empty()
    }

    /// `true` when the *results* were degraded (fewer samples, coarser
    /// grid, skipped cross-validation). [`DegradeStep::Uncheckpointed`]
    /// does not count: a storage-degraded run still delivered every item
    /// at full fidelity, it just cannot be resumed — callers deciding
    /// whether to trust or publish a result should use this, not
    /// [`Durability::is_degraded`].
    pub fn is_fidelity_degraded(&self) -> bool {
        self.degradation
            .iter()
            .any(|e| e.step != DegradeStep::Uncheckpointed)
    }
}

// ---------------------------------------------------------------------------
// The durable runner
// ---------------------------------------------------------------------------

/// Durability knobs shared by all durable entry points.
#[derive(Debug, Clone, Default)]
pub struct DurableOptions {
    /// Journal path. `None` disables checkpointing (the budget still
    /// applies).
    pub checkpoint: Option<PathBuf>,
    /// Resume from an existing journal at `checkpoint` (validated against
    /// this run's [`RunSpec`]); without this flag an existing journal is
    /// overwritten by the first commit.
    pub resume: bool,
    /// The run's wall-clock budget.
    pub budget: RunBudget,
}

impl DurableOptions {
    /// No checkpoint, no budget — behaves like the non-durable entry point.
    pub fn none() -> Self {
        Self::default()
    }
}

/// What happened to one chunk of a durable run.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkOutcome<T> {
    /// Evaluated this session, or restored from the checkpoint.
    Done(T),
    /// Failed (panic or typed error); carries the failure text.
    Failed(String),
    /// Skipped cooperatively because the run budget expired.
    DeadlineSkipped,
}

/// How a run lost its checkpointing to persistent storage failure while
/// its computation carried on (see [`DegradeStep::Uncheckpointed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointDegraded {
    /// Chunk commits that reached disk before journaling stopped.
    pub committed_chunks: usize,
    /// The run's total chunk count.
    pub total_chunks: usize,
    /// The persistent fault that disabled journaling.
    pub detail: String,
}

/// A durable run's full outcome: per-chunk results in chunk order plus
/// engine statistics and durability facts.
#[derive(Debug)]
pub struct DurableRun<T> {
    /// One outcome per chunk, in chunk order.
    pub chunks: Vec<ChunkOutcome<T>>,
    /// Engine statistics ([`ExecStats::checkpointed_chunks`] and
    /// [`ExecStats::elapsed_wall`] filled in).
    pub stats: ExecStats,
    /// Chunks restored from the checkpoint.
    pub resumed_chunks: usize,
    /// Whether the budget expired during the run.
    pub deadline_hit: bool,
    /// `Some` when persistent storage failure disabled journaling mid-run;
    /// callers fold it into their [`Durability`] as a
    /// [`DegradeStep::Uncheckpointed`] event.
    pub checkpoint_degraded: Option<CheckpointDegraded>,
}

/// Runs `spec`'s chunks with checkpoint/resume and a deadline budget.
///
/// `eval(chunk, range)` computes one chunk (it must be a pure function of
/// `(spec.seed, chunk)` for the resume invariant to hold); `encode`/`decode`
/// give the chunk result a bit-exact byte round-trip for the journal.
///
/// Contract:
/// * every completed chunk is committed atomically before the run moves on,
///   so a kill at any chunk boundary loses at most in-flight work;
/// * resumed chunks are *restored, never recomputed*, and the combined
///   result is bit-identical to an uninterrupted run at any thread count;
/// * when the budget expires, unstarted chunks come back
///   [`ChunkOutcome::DeadlineSkipped`] and in-flight kernels stop at their
///   next poll — the caller applies its degradation ladder to the gap;
/// * a simulated crash (fault plan or `SSN_CRASH_AFTER_COMMITS`) returns
///   [`SsnError::Interrupted`] after the configured number of commits.
pub fn run_chunked_durable<T, Enc, Dec, F>(
    spec: &RunSpec,
    policy: &ExecPolicy,
    opts: &DurableOptions,
    encode: Enc,
    decode: Dec,
    eval: F,
) -> Result<DurableRun<T>, SsnError>
where
    T: Send,
    Enc: Fn(&T) -> Vec<u8> + Sync,
    Dec: Fn(&mut ByteReader<'_>) -> Result<T, SsnError>,
    F: Fn(usize, Range<usize>) -> Result<T, SsnError> + Sync,
{
    let _span = ssn_telemetry::span("durable.run");
    let started = Instant::now();
    let n_chunks = spec.n_chunks();

    // Take the journal's exclusive lock for the whole run: two processes
    // must never resume (or interleave commits into) the same journal. The
    // guard's drop removes the lock file; a hard kill leaves it behind for
    // the next acquirer's stale-PID recovery. A *persistent storage
    // failure* here (ENOSPC writing the lock file) degrades the run to
    // un-checkpointed instead of aborting — running lock-less is safe
    // because a run that could not take the lock writes no journal either.
    // A lock held by a live process stays a typed refusal, and a simulated
    // power cut stays fatal (a dead process cannot degrade-and-continue).
    let mut early_degrade: Option<String> = None;
    let _journal_lock: Option<JournalLock> = match &opts.checkpoint {
        Some(path) => match JournalLock::acquire(path) {
            Ok(lock) => Some(lock),
            Err(
                e @ SsnError::Checkpoint {
                    kind: CheckpointErrorKind::Io,
                    ..
                },
            ) if !storage::simulated_death() => {
                early_degrade = Some(e.to_string());
                None
            }
            Err(e) => return Err(e),
        },
        None => None,
    };

    // Clean up an orphaned temp file left by a session that died between
    // writing `<path>.ckpt-tmp` and renaming it into place. Safe because
    // we hold the journal lock: nobody else is mid-commit.
    if _journal_lock.is_some() {
        if let Some(path) = &opts.checkpoint {
            let tmp = path.with_extension("ckpt-tmp");
            if tmp.exists() {
                let _ = storage::io().remove_file(&tmp);
            }
        }
    }

    // Load or create the journal, restoring completed chunks. Structural
    // damage (corrupt, version or spec mismatch) stays a typed rejection —
    // the operator chooses between fresh start and investigation. A
    // persistent *read* failure degrades instead: the chunks are pure, so
    // recomputing them is bit-identical to resuming.
    let mut resumed: BTreeMap<usize, T> = BTreeMap::new();
    let store: Option<CheckpointStore> = match &opts.checkpoint {
        Some(_) if early_degrade.is_some() => None,
        Some(path) => {
            if opts.resume && path.exists() {
                match CheckpointStore::load(path) {
                    Ok(s) => {
                        s.verify_spec(spec)?;
                        for (&c, payload) in s.records() {
                            let mut r = ByteReader::new(payload);
                            let value =
                                decode(&mut r).map_err(|e| rewrap_payload_err(path, c, e))?;
                            if !r.is_empty() {
                                return Err(SsnError::checkpoint(
                                    path.display().to_string(),
                                    CheckpointErrorKind::Corrupt,
                                    format!("chunk {c} payload has trailing bytes"),
                                ));
                            }
                            resumed.insert(c as usize, value);
                        }
                        Some(s)
                    }
                    Err(
                        e @ SsnError::Checkpoint {
                            kind: CheckpointErrorKind::Io,
                            ..
                        },
                    ) if !storage::simulated_death() => {
                        early_degrade = Some(e.to_string());
                        None
                    }
                    Err(e) => return Err(e),
                }
            } else {
                Some(CheckpointStore::create(path.clone(), spec))
            }
        }
        None => None,
    };
    if early_degrade.is_some() && ssn_telemetry::enabled() {
        ssn_telemetry::add(ssn_telemetry::names::STORAGE_DEGRADED, 1);
    }
    let prior_elapsed = store
        .as_ref()
        .map_or(Duration::ZERO, CheckpointStore::prior_elapsed);
    let resumed_count = resumed.len();

    let pending: Vec<usize> = (0..n_chunks).filter(|c| !resumed.contains_key(c)).collect();

    let crash = hooks::checkpoint_crash_plan();
    let crashed = AtomicBool::new(false);
    let deadline_hit = AtomicBool::new(false);
    struct StoreCell {
        store: Option<CheckpointStore>,
        commits: usize,
        commit_error: Option<SsnError>,
        degraded: Option<CheckpointDegraded>,
    }
    let cell = Mutex::new(StoreCell {
        store,
        commits: 0,
        commit_error: None,
        degraded: early_degrade.map(|detail| CheckpointDegraded {
            committed_chunks: 0,
            total_chunks: n_chunks,
            detail,
        }),
    });

    // Kernel-level cooperative cancellation for the duration of the run.
    let _kernel_guard = opts.budget.arm_kernels();

    let (results, engine_stats) = try_run_chunked(pending.len(), 1, policy, |i, _| {
        let c = pending[i];
        if crashed.load(Ordering::SeqCst) {
            // The simulated kill already fired: the process is "dead", no
            // further chunks run.
            return Ok(None);
        }
        if opts.budget.expired() {
            deadline_hit.store(true, Ordering::SeqCst);
            return Ok(None);
        }
        match eval(c, spec.range(c)) {
            Err(e) if e.is_cancelled() => {
                deadline_hit.store(true, Ordering::SeqCst);
                Ok(None)
            }
            Err(e) => Err(e),
            Ok(value) => {
                let payload = encode(&value);
                let mut guard = cell.lock().unwrap_or_else(|e| e.into_inner());
                if !crashed.load(Ordering::SeqCst) {
                    let elapsed = prior_elapsed + started.elapsed();
                    let commits_after = guard.commits + 1;
                    let tear = crash.is_some_and(|(after, torn)| commits_after == after && torn);
                    let die = crash.is_some_and(|(after, _)| commits_after >= after);
                    enum CommitOutcome {
                        /// No store: the run is already degraded to
                        /// un-checkpointed, so there is nothing to commit.
                        Skipped,
                        Committed,
                        /// The simulated power cut fired mid-commit: the
                        /// process is dead, exactly like a crash-plan kill.
                        PowerCut,
                        TornFailed(SsnError),
                        /// Persistent storage failure (ENOSPC, exhausted
                        /// retries): worth degrading over, not dying over.
                        Persistent(std::io::Error),
                    }
                    let outcome = match guard.store.as_mut() {
                        None => CommitOutcome::Skipped,
                        Some(st) => {
                            st.record(c, payload);
                            if tear {
                                match st.commit_torn(elapsed) {
                                    Ok(()) => CommitOutcome::Committed,
                                    Err(e) => CommitOutcome::TornFailed(e),
                                }
                            } else {
                                match st.commit_io(elapsed) {
                                    Ok(()) => CommitOutcome::Committed,
                                    Err(e)
                                        if storage::injected_fault(&e)
                                            == Some(storage::InjectedFaultKind::Killed) =>
                                    {
                                        CommitOutcome::PowerCut
                                    }
                                    Err(e) => CommitOutcome::Persistent(e),
                                }
                            }
                        }
                    };
                    match outcome {
                        CommitOutcome::Skipped => {}
                        CommitOutcome::Committed => {
                            guard.commits = commits_after;
                            if ssn_telemetry::enabled() {
                                ssn_telemetry::add(ssn_telemetry::names::DURABLE_COMMITS, 1);
                            }
                            if die {
                                crashed.store(true, Ordering::SeqCst);
                                opts.budget.cancel();
                            }
                        }
                        CommitOutcome::PowerCut => {
                            crashed.store(true, Ordering::SeqCst);
                            opts.budget.cancel();
                            return Ok(None);
                        }
                        CommitOutcome::TornFailed(e) => {
                            if guard.commit_error.is_none() {
                                guard.commit_error = Some(e);
                            }
                            crashed.store(true, Ordering::SeqCst);
                            opts.budget.cancel();
                            return Ok(None);
                        }
                        CommitOutcome::Persistent(e) => {
                            // Declare the degradation, stop journaling, and
                            // let the computation finish: a lost checkpoint
                            // must never cost the run its result.
                            let path = opts
                                .checkpoint
                                .as_deref()
                                .map_or_else(String::new, |p| p.display().to_string());
                            guard.degraded = Some(CheckpointDegraded {
                                committed_chunks: guard.commits,
                                total_chunks: n_chunks,
                                detail: format!("{path}: {e}"),
                            });
                            guard.store = None;
                            if ssn_telemetry::enabled() {
                                ssn_telemetry::add(ssn_telemetry::names::STORAGE_DEGRADED, 1);
                            }
                        }
                    }
                }
                Ok(Some(value))
            }
        }
    });

    let cell = cell.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(e) = cell.commit_error {
        return Err(e);
    }
    if crashed.load(Ordering::SeqCst) {
        return Err(SsnError::Interrupted {
            committed_chunks: resumed_count + cell.commits,
            total_chunks: n_chunks,
        });
    }

    // Merge restored and freshly evaluated chunks, in chunk order.
    let mut outcomes: Vec<ChunkOutcome<T>> = Vec::with_capacity(n_chunks);
    let mut fresh = results.into_iter();
    for c in 0..n_chunks {
        if let Some(v) = resumed.remove(&c) {
            outcomes.push(ChunkOutcome::Done(v));
            continue;
        }
        let outcome = match fresh.next() {
            Some(Ok(Ok(Some(v)))) => ChunkOutcome::Done(v),
            Some(Ok(Ok(None))) => ChunkOutcome::DeadlineSkipped,
            Some(Ok(Err(e))) => ChunkOutcome::Failed(e.to_string()),
            Some(Err(chunk_err)) => ChunkOutcome::Failed(chunk_err.to_string()),
            None => ChunkOutcome::Failed(format!("chunk {c} was never scheduled")),
        };
        outcomes.push(outcome);
    }

    let mut stats = engine_stats;
    // Deadline-skipped chunks were never evaluated; counting them as items
    // would overstate the throughput line on a partial run.
    stats.items = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| !matches!(o, ChunkOutcome::DeadlineSkipped))
        .map(|(c, _)| spec.range(c).len())
        .sum();
    stats.chunks = n_chunks;
    stats.checkpointed_chunks = resumed_count;
    stats.elapsed_wall = prior_elapsed + started.elapsed();
    stats.failed_chunks = outcomes
        .iter()
        .filter(|o| matches!(o, ChunkOutcome::Failed(_)))
        .count();

    let hit = deadline_hit.load(Ordering::SeqCst);
    if ssn_telemetry::enabled() {
        ssn_telemetry::add(
            ssn_telemetry::names::DURABLE_RESUMED_CHUNKS,
            resumed_count as u64,
        );
        let skipped = outcomes
            .iter()
            .filter(|o| matches!(o, ChunkOutcome::DeadlineSkipped))
            .count();
        ssn_telemetry::add(
            ssn_telemetry::names::DURABLE_DEADLINE_SKIPPED,
            skipped as u64,
        );
    }

    Ok(DurableRun {
        chunks: outcomes,
        stats,
        resumed_chunks: resumed_count,
        deadline_hit: hit,
        checkpoint_degraded: cell.degraded,
    })
}

fn rewrap_payload_err(path: &Path, chunk: u64, e: SsnError) -> SsnError {
    match e {
        SsnError::Checkpoint { kind, detail, .. } => SsnError::checkpoint(
            path.display().to_string(),
            kind,
            format!("chunk {chunk}: {detail}"),
        ),
        other => SsnError::checkpoint(
            path.display().to_string(),
            CheckpointErrorKind::Corrupt,
            format!("chunk {chunk}: {other}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "ssn-durable-unit-{}-{}-{}.ckpt",
            std::process::id(),
            tag,
            n
        ))
    }

    fn toy_spec(path_tag: u64) -> RunSpec {
        RunSpec {
            kind: "toy",
            seed: 11,
            params_hash: ParamDigest::new("toy").push_u64(path_tag).finish(),
            n_items: 100,
            chunk_size: 16,
        }
    }

    fn toy_eval(spec: &RunSpec) -> impl Fn(usize, Range<usize>) -> Result<Vec<f64>, SsnError> + '_ {
        move |c, range| {
            let mut rng = ssn_numeric::rng::Rng::from_seed_and_stream(spec.seed, c as u64);
            Ok(range.map(|i| rng.normal() + i as f64).collect())
        }
    }

    fn encode_chunk(v: &Vec<f64>) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(v.len());
        for &x in v {
            w.put_f64(x);
        }
        w.into_vec()
    }

    fn decode_chunk(r: &mut ByteReader<'_>) -> Result<Vec<f64>, SsnError> {
        let n = r.take_usize()?;
        (0..n).map(|_| r.take_f64()).collect()
    }

    fn collect(run: DurableRun<Vec<f64>>) -> Vec<f64> {
        run.chunks
            .into_iter()
            .flat_map(|o| match o {
                ChunkOutcome::Done(v) => v,
                other => panic!("unexpected outcome {other:?}"),
            })
            .collect()
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_order_sensitive_and_bit_exact() {
        let a = ParamDigest::new("x").push_f64(1.0).push_f64(2.0).finish();
        let b = ParamDigest::new("x").push_f64(2.0).push_f64(1.0).finish();
        assert_ne!(a, b);
        let nz = ParamDigest::new("x").push_f64(-0.0).finish();
        let pz = ParamDigest::new("x").push_f64(0.0).finish();
        assert_ne!(nz, pz, "digest must see the sign bit");
        assert_ne!(
            ParamDigest::new("x").finish(),
            ParamDigest::new("y").finish()
        );
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let mut w = ByteWriter::new();
        w.put_u8(7)
            .put_u64(u64::MAX)
            .put_f64(f64::NAN)
            .put_f64(-0.0)
            .put_str("kind");
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_str().unwrap(), "kind");
        assert!(r.is_empty());
        assert!(r.take_u8().is_err(), "reads past the end must fail typed");
    }

    #[test]
    fn store_round_trips_through_disk() {
        let path = temp_path("roundtrip");
        let spec = toy_spec(1);
        let mut store = CheckpointStore::create(path.clone(), &spec);
        store.record(0, vec![1, 2, 3]);
        store.record(4, vec![0xff; 40]);
        store.commit(Duration::from_millis(250)).unwrap();

        let loaded = CheckpointStore::load(&path).unwrap();
        loaded.verify_spec(&spec).unwrap();
        assert_eq!(loaded.records().len(), 2);
        assert_eq!(loaded.records()[&0], vec![1, 2, 3]);
        assert_eq!(loaded.records()[&4], vec![0xff; 40]);
        assert_eq!(loaded.prior_elapsed(), Duration::from_millis(250));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spec_mismatches_are_refused_field_by_field() {
        let path = temp_path("mismatch");
        let spec = toy_spec(2);
        let mut store = CheckpointStore::create(path.clone(), &spec);
        store.record(0, vec![9]);
        store.commit(Duration::ZERO).unwrap();
        let loaded = CheckpointStore::load(&path).unwrap();

        for wrong in [
            RunSpec { seed: 12, ..spec },
            RunSpec {
                params_hash: spec.params_hash ^ 1,
                ..spec
            },
            RunSpec {
                n_items: 101,
                ..spec
            },
            RunSpec {
                chunk_size: 8,
                ..spec
            },
            RunSpec {
                kind: "other",
                ..spec
            },
        ] {
            let err = loaded.verify_spec(&wrong).unwrap_err();
            match err {
                SsnError::Checkpoint { kind, .. } => {
                    assert_eq!(kind, CheckpointErrorKind::SpecMismatch)
                }
                other => panic!("expected spec mismatch, got {other}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_an_io_error() {
        let path = temp_path("missing");
        match CheckpointStore::load(&path).unwrap_err() {
            SsnError::Checkpoint { kind, .. } => assert_eq!(kind, CheckpointErrorKind::Io),
            other => panic!("expected io checkpoint error, got {other}"),
        }
    }

    #[test]
    fn durable_run_without_options_matches_plain_evaluation() {
        let spec = toy_spec(3);
        let run = run_chunked_durable(
            &spec,
            &ExecPolicy::serial(),
            &DurableOptions::none(),
            encode_chunk,
            decode_chunk,
            toy_eval(&spec),
        )
        .unwrap();
        assert_eq!(run.resumed_chunks, 0);
        assert!(!run.deadline_hit);
        assert_eq!(run.stats.checkpointed_chunks, 0);
        assert_eq!(run.stats.items, 100);
        let all = collect(run);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn resume_restores_instead_of_recomputing() {
        let path = temp_path("resume");
        let spec = toy_spec(4);

        // Uninterrupted golden.
        let golden = collect(
            run_chunked_durable(
                &spec,
                &ExecPolicy::serial(),
                &DurableOptions::none(),
                encode_chunk,
                decode_chunk,
                toy_eval(&spec),
            )
            .unwrap(),
        );

        // Session 1: evaluate only the first 3 chunks, then "die" (here:
        // pre-commit 3 chunks by hand through the store API).
        let mut store = CheckpointStore::create(path.clone(), &spec);
        for c in 0..3 {
            let v = toy_eval(&spec)(c, spec.range(c)).unwrap();
            store.record(c, encode_chunk(&v));
        }
        store.commit(Duration::from_millis(10)).unwrap();

        // Session 2: resume. The three restored chunks must not be
        // recomputed (poison the evaluator for them to prove it).
        let opts = DurableOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            budget: RunBudget::unlimited(),
        };
        let evals = AtomicUsize::new(0);
        let run = run_chunked_durable(
            &spec,
            &ExecPolicy::with_threads(4),
            &opts,
            encode_chunk,
            decode_chunk,
            |c, range| {
                assert!(c >= 3, "chunk {c} must come from the checkpoint");
                evals.fetch_add(1, Ordering::Relaxed);
                toy_eval(&spec)(c, range)
            },
        )
        .unwrap();
        assert_eq!(run.resumed_chunks, 3);
        assert_eq!(run.stats.checkpointed_chunks, 3);
        assert_eq!(evals.load(Ordering::Relaxed), spec.n_chunks() - 3);
        assert!(run.stats.elapsed_wall >= Duration::from_millis(10));
        let resumed = collect(run);
        assert_eq!(
            resumed.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            golden.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "resume must be bit-identical to the uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_quota_budget_skips_deterministically() {
        let spec = toy_spec(5);
        let opts = DurableOptions {
            checkpoint: None,
            resume: false,
            budget: RunBudget::expire_after_checks(2),
        };
        let run = run_chunked_durable(
            &spec,
            &ExecPolicy::serial(),
            &opts,
            encode_chunk,
            decode_chunk,
            toy_eval(&spec),
        )
        .unwrap();
        assert!(run.deadline_hit);
        let done = run
            .chunks
            .iter()
            .filter(|o| matches!(o, ChunkOutcome::Done(_)))
            .count();
        let skipped = run
            .chunks
            .iter()
            .filter(|o| matches!(o, ChunkOutcome::DeadlineSkipped))
            .count();
        assert_eq!(done, 2, "exactly the budgeted chunks complete");
        assert_eq!(done + skipped, spec.n_chunks());
    }

    #[test]
    fn zero_deadline_skips_everything_without_hanging() {
        let spec = toy_spec(6);
        let opts = DurableOptions {
            checkpoint: None,
            resume: false,
            budget: RunBudget::with_deadline(Duration::ZERO),
        };
        let run = run_chunked_durable(
            &spec,
            &ExecPolicy::with_threads(2),
            &opts,
            encode_chunk,
            decode_chunk,
            toy_eval(&spec),
        )
        .unwrap();
        assert!(run.deadline_hit);
        assert!(run
            .chunks
            .iter()
            .all(|o| matches!(o, ChunkOutcome::DeadlineSkipped)));
    }

    #[test]
    fn failed_chunks_are_isolated_not_fatal() {
        let spec = toy_spec(7);
        let run = run_chunked_durable(
            &spec,
            &ExecPolicy::serial(),
            &DurableOptions::none(),
            encode_chunk,
            decode_chunk,
            |c, range| {
                if c == 2 {
                    return Err(SsnError::scenario("chunk 2 refuses"));
                }
                toy_eval(&spec)(c, range)
            },
        )
        .unwrap();
        assert_eq!(run.stats.failed_chunks, 1);
        assert!(matches!(&run.chunks[2], ChunkOutcome::Failed(m) if m.contains("refuses")));
        assert!(matches!(&run.chunks[0], ChunkOutcome::Done(_)));
    }

    #[test]
    fn journal_lock_excludes_second_acquirer_and_releases_on_drop() {
        let journal = temp_path("lock-exclusive");
        let lock = JournalLock::acquire(&journal).unwrap();
        assert!(lock.path().exists());
        // A second acquirer (same live PID) must be refused, typed.
        match JournalLock::acquire(&journal).unwrap_err() {
            SsnError::Checkpoint { kind, detail, .. } => {
                assert_eq!(kind, CheckpointErrorKind::Locked);
                assert!(detail.contains(&std::process::id().to_string()), "{detail}");
            }
            other => panic!("expected Locked, got {other}"),
        }
        let lock_path = lock.path().to_path_buf();
        drop(lock);
        assert!(!lock_path.exists(), "drop must remove the lock file");
        // Released: re-acquisition succeeds.
        drop(JournalLock::acquire(&journal).unwrap());
    }

    #[test]
    fn journal_lock_recovers_stale_and_garbage_locks() {
        let journal = temp_path("lock-stale");
        let lock_path = lock_path_for(&journal);
        // A dead PID: 32-bit PIDs cap below this on Linux, and the kernel
        // never hands out pid 0 to a user process either way.
        std::fs::write(&lock_path, "4194999999\n").unwrap();
        let lock = JournalLock::acquire(&journal).expect("stale lock must be recovered");
        drop(lock);
        // Unreadable contents (torn write of the lock itself): also stale.
        std::fs::write(&lock_path, b"\xff\xfenot a pid").unwrap();
        drop(JournalLock::acquire(&journal).expect("garbage lock must be recovered"));
        assert!(!lock_path.exists());
    }

    #[test]
    fn durable_runner_holds_the_lock_and_releases_after() {
        let path = temp_path("runner-lock");
        let spec = toy_spec(8);
        let opts = DurableOptions {
            checkpoint: Some(path.clone()),
            resume: false,
            budget: RunBudget::unlimited(),
        };
        // While a lock is held, the runner must refuse to start.
        let held = JournalLock::acquire(&path).unwrap();
        let err = run_chunked_durable(
            &spec,
            &ExecPolicy::serial(),
            &opts,
            encode_chunk,
            decode_chunk,
            toy_eval(&spec),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                SsnError::Checkpoint {
                    kind: CheckpointErrorKind::Locked,
                    ..
                }
            ),
            "{err}"
        );
        drop(held);
        // Lock free: the run completes and leaves no lock file behind.
        let run = run_chunked_durable(
            &spec,
            &ExecPolicy::serial(),
            &opts,
            encode_chunk,
            decode_chunk,
            toy_eval(&spec),
        )
        .unwrap();
        assert_eq!(collect(run).len(), 100);
        assert!(!lock_path_for(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_remaining_reports_only_wall_deadlines() {
        assert_eq!(RunBudget::unlimited().remaining(), None);
        assert_eq!(RunBudget::expire_after_checks(3).remaining(), None);
        let b = RunBudget::with_deadline(Duration::from_secs(3600));
        let left = b.remaining().expect("deadline budget reports remaining");
        assert!(left <= Duration::from_secs(3600));
        assert!(left > Duration::from_secs(3000));
        let spent = RunBudget::with_deadline(Duration::ZERO);
        assert_eq!(spent.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn degrade_events_render_and_tag() {
        let mut d = Durability::default();
        assert!(!d.is_degraded());
        d.note_degrade(DegradeStep::ShrinkSamples, 2000, 1500);
        assert!(d.is_degraded());
        let text = d.degradation[0].to_string();
        assert!(text.contains("shrink-samples"), "{text}");
        assert!(text.contains("2000"), "{text}");
        assert!(text.contains("1500"), "{text}");
        assert_eq!(DegradeStep::CoarsenGrid.tag(), "coarsen-grid");
        assert_eq!(DegradeStep::ClosedFormOnly.tag(), "closed-form-only");
    }
}
