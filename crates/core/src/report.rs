//! A complete, human-readable SSN assessment for one scenario.
//!
//! Bundles everything a signoff review wants on one page: the fitted
//! model, both closed forms with the active Table-1 case, the damping
//! diagnosis, the design levers, and (optionally) the simulation
//! cross-check.

use crate::bridge::{measure, DriverBankConfig};
use crate::design;
use crate::durable::Durability;
use crate::error::SsnError;
use crate::parallel::ExecStats;
use crate::scenario::SsnScenario;
use crate::{lcmodel, lmodel};
use ssn_devices::MosModel;
use ssn_units::Volts;
use std::fmt::Write as _;
use std::sync::Arc;

/// The shared run footer for corpus-scale commands: the `run:` statistics
/// line plus — only when a durable run actually resumed, hit its deadline,
/// or degraded — one line per durability fact. A fresh full-fidelity run
/// renders exactly the single `run:` line, so golden outputs of
/// non-durable invocations are unchanged byte-for-byte.
pub fn run_footer(stats: &ExecStats, durability: Option<&Durability>) -> String {
    let mut s = format!("run: {stats}\n");
    if let Some(d) = durability {
        if d.resumed_chunks > 0 {
            let _ = writeln!(
                s,
                "resume: {} chunk(s) restored from checkpoint",
                d.resumed_chunks
            );
        }
        if d.deadline_hit {
            let _ = writeln!(s, "deadline: budget expired before the full run completed");
        }
        for e in &d.degradation {
            let _ = writeln!(s, "degraded: {e}");
        }
    }
    s
}

/// The assembled assessment; render with `Display` or access the fields.
#[derive(Debug, Clone)]
pub struct SsnReport {
    /// The assessed scenario.
    pub scenario: SsnScenario,
    /// L-only estimate (paper Eqn. 7).
    pub l_only: Volts,
    /// LC estimate (Table 1) and its case.
    pub lc: Volts,
    /// Which Table-1 row applied.
    pub case: lcmodel::MaxSsnCase,
    /// Damping diagnosis.
    pub damping: lcmodel::Damping,
    /// Critical capacitance.
    pub critical_c: ssn_units::Farads,
    /// Simulated reference, when requested.
    pub simulated: Option<Volts>,
    /// Largest N meeting a 25%-of-Vdd budget (a common signoff line).
    pub n_at_quarter_vdd: usize,
}

/// Builds a report for `scenario`; pass a golden device to include the
/// simulation cross-check (slower).
///
/// # Errors
///
/// Propagates analysis and simulation failures.
pub fn assess(
    scenario: &SsnScenario,
    simulate_with: Option<Arc<dyn MosModel>>,
) -> Result<SsnReport, SsnError> {
    let (lc, case) = lcmodel::vn_max(scenario);
    let simulated = match simulate_with {
        Some(model) => Some(measure(&DriverBankConfig::from_scenario(scenario, model))?.vn_max),
        None => None,
    };
    let budget = Volts::new(scenario.vdd().value() * 0.25);
    Ok(SsnReport {
        scenario: scenario.clone(),
        l_only: lmodel::vn_max(scenario),
        lc,
        case,
        damping: lcmodel::classify(scenario),
        critical_c: lcmodel::critical_capacitance(scenario),
        simulated,
        n_at_quarter_vdd: design::max_simultaneous_drivers(scenario, budget)?,
    })
}

impl std::fmt::Display for SsnReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        let _ = writeln!(s, "# SSN assessment");
        let _ = writeln!(s, "scenario:      {}", self.scenario);
        let _ = writeln!(
            s,
            "figures:       Z = {:.1}, V_inf = {}, tau = {}",
            self.scenario.z_figure(),
            self.scenario.v_inf(),
            lmodel::time_constant(&self.scenario)
        );
        let _ = writeln!(
            s,
            "damping:       {} (C_m = {}; C {} C_m)",
            self.damping,
            self.critical_c,
            if self.scenario.capacitance() > self.critical_c {
                ">"
            } else {
                "<="
            }
        );
        let _ = writeln!(s, "L-only model:  Vn_max = {}", self.l_only);
        let _ = writeln!(s, "LC model:      Vn_max = {}  [{}]", self.lc, self.case);
        if let Some(sim) = self.simulated {
            let err = (self.lc.value() - sim.value()).abs() / sim.value();
            let _ = writeln!(
                s,
                "simulated:     Vn_max = {sim}  (LC model error {:.1}%)",
                err * 100.0
            );
        }
        let _ = writeln!(
            s,
            "budget check:  <= {} drivers may switch together within Vdd/4",
            self.n_at_quarter_vdd
        );
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssn_devices::process::Process;
    use ssn_units::Seconds;

    fn scenario() -> SsnScenario {
        SsnScenario::builder(&Process::p018())
            .drivers(8)
            .rise_time(Seconds::from_nanos(0.5))
            .build()
            .unwrap()
    }

    #[test]
    fn assess_without_simulation() {
        let r = assess(&scenario(), None).unwrap();
        assert!(r.simulated.is_none());
        assert!(r.lc.value() > 0.3);
        assert!(r.n_at_quarter_vdd >= 1);
        let text = r.to_string();
        assert!(text.contains("SSN assessment"));
        assert!(text.contains("LC model"));
        assert!(text.contains("budget check"));
        assert!(!text.contains("simulated"));
    }

    #[test]
    fn assess_with_simulation() {
        let process = Process::p018();
        let r = assess(&scenario(), Some(Arc::new(process.output_driver()))).unwrap();
        let sim = r.simulated.expect("requested");
        assert!(sim.value() > 0.3);
        let text = r.to_string();
        assert!(text.contains("simulated"));
        assert!(text.contains("error"));
    }

    #[test]
    fn run_footer_is_just_the_stats_line_for_fresh_runs() {
        let stats = ExecStats {
            items: 10,
            chunks: 1,
            threads: 1,
            failed_chunks: 0,
            retried_chunks: 0,
            wall: std::time::Duration::from_millis(5),
            busy: std::time::Duration::from_millis(5),
            sched_wait: std::time::Duration::ZERO,
            checkpointed_chunks: 0,
            elapsed_wall: std::time::Duration::from_millis(5),
        };
        let fresh = Durability {
            resumed_chunks: 0,
            deadline_hit: false,
            degradation: Vec::new(),
        };
        let base = run_footer(&stats, None);
        assert_eq!(base, format!("run: {stats}\n"));
        assert_eq!(run_footer(&stats, Some(&fresh)), base, "golden unchanged");

        let mut d = fresh;
        d.resumed_chunks = 3;
        d.deadline_hit = true;
        d.note_degrade(crate::durable::DegradeStep::ShrinkSamples, 100, 40);
        let text = run_footer(&stats, Some(&d));
        assert!(text.starts_with(&base));
        assert!(text.contains("resume: 3 chunk(s)"));
        assert!(text.contains("deadline: budget expired"));
        assert!(text.contains("degraded: shrink-samples"));
    }

    #[test]
    fn report_flags_the_damping_side() {
        let under = scenario().with_drivers(1).unwrap();
        let r = assess(&under, None).unwrap();
        assert!(matches!(r.damping, lcmodel::Damping::Underdamped { .. }));
        assert!(r.to_string().contains("C > C_m"));
    }
}
