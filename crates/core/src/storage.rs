//! The storage fault layer: every durable-path I/O primitive behind one
//! trait, with deterministic fault injection and a typed retry policy.
//!
//! The durability story (journaled checkpoints, the optimizer's `.lv<k>`
//! journal family, `JournalLock`, the server's content-addressed result
//! cache and job spool) proves kill→resume bit-identity — but a disk that
//! *errors* is a different failure class from a process that dies. ENOSPC,
//! EIO, and failed fsync must land in the same typed-error-or-declared-
//! degradation contract the solver and network layers already obey, never
//! an untyped abort mid-run.
//!
//! # The pieces
//!
//! * [`CkptIo`] — the trait abstracting every primitive a durable path
//!   performs: whole-file create/write/fsync, exclusive create (lock
//!   files), rename, parent-directory fsync, read, remove, mkdir.
//! * [`RealIo`] — the `std::fs` implementation. The only place in the
//!   durable paths that touches the filesystem directly.
//! * [`DiskFaultPlan`] — a deterministic seeded injector, armed
//!   programmatically ([`with_disk_faults`]) or via the `SSN_DISK_FAULTS`
//!   environment variable (`seed=..,enospc=..,eio=..,fsync=..,torn=..`,
//!   mirroring `SSN_NET_FAULTS`). Every decision hashes
//!   `(seed, fault-site, operation-index)` with FNV-1a — same seed, same
//!   operation order → same faults, at any thread count of the *storage*
//!   call sequence.
//! * [`RetryPolicy`] — bounded retry with backoff for transient faults
//!   (flaky EIO, failed fsync, interrupted syscalls). Persistent faults
//!   (ENOSPC, permission, a dead process) are not retried: they go
//!   straight to the caller's degradation ladder.
//!
//! # The crash-consistency sweep
//!
//! [`DiskFaultPlan::kill_at`] simulates a power cut at one exact operation
//! index: the operation applies a *partial* effect (a torn write, a
//! skipped rename) and every later operation fails — the process is
//! "dead". `tests/storage_faults.rs` sweeps that kill point across every
//! operation index of a checkpointed run and proves the headline
//! invariant: restart yields a bit-identical resume or a typed
//! clean-slate rerun — never a panic, never silently-corrupt accepted
//! output.
//!
//! When disarmed (the default, and whenever `SSN_DISK_FAULTS` is unset)
//! every primitive is a direct `std::fs` call; fault-off runs are
//! byte-identical to a build without this layer.

use std::io;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// The trait and the real implementation
// ---------------------------------------------------------------------------

/// Every I/O primitive a durable path performs, behind one seam.
///
/// The primitives are *whole operations*, not POSIX calls: `write_file`
/// is create + write-all + fsync because that is the unit the atomic
/// commit discipline reasons about (and the unit a fault tears).
pub trait CkptIo: Send + Sync {
    /// Creates (or truncates) `path`, writes `bytes`, and fsyncs the file.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Exclusively creates `path` (`O_EXCL`), writes `bytes`, fsyncs.
    /// Fails with [`io::ErrorKind::AlreadyExists`] when the file exists —
    /// the lock-acquisition primitive.
    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsyncs the directory itself, making a preceding rename durable.
    /// A no-op `Ok` on platforms where directories cannot be opened.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The `std::fs` implementation of [`CkptIo`].
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl CkptIo for RealIo {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

// ---------------------------------------------------------------------------
// The fault plan
// ---------------------------------------------------------------------------

/// What class of storage fault was injected (carried inside the
/// `io::Error` so the retry policy can classify without string matching).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFaultKind {
    /// The disk is full — persistent; not retried.
    Enospc,
    /// A flaky-media read/write error — transient; retried.
    Eio,
    /// The fsync itself failed (data reached the page cache but its
    /// durability is unknown) — transient; retried, and a retried
    /// `write_file` rewrites from scratch so the retry is safe.
    FsyncFailed,
    /// The write was torn partway — transient for the same reason.
    TornWrite,
    /// The simulated power cut of [`DiskFaultPlan::kill_at`] — the
    /// process is "dead"; persistent, never retried.
    Killed,
}

impl InjectedFaultKind {
    fn tag(self) -> &'static str {
        match self {
            Self::Enospc => "enospc",
            Self::Eio => "eio",
            Self::FsyncFailed => "fsync-failed",
            Self::TornWrite => "torn-write",
            Self::Killed => "killed",
        }
    }
}

/// The payload of an injected `io::Error`; retrievable via
/// [`injected_fault`].
#[derive(Debug)]
struct InjectedFault {
    kind: InjectedFaultKind,
    op: u64,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected disk fault: {} (op {})",
            self.kind.tag(),
            self.op
        )
    }
}

impl std::error::Error for InjectedFault {}

fn injected(kind: InjectedFaultKind, op: u64) -> io::Error {
    let io_kind = match kind {
        InjectedFaultKind::Enospc => io::ErrorKind::StorageFull,
        _ => io::ErrorKind::Other,
    };
    io::Error::new(io_kind, InjectedFault { kind, op })
}

/// The [`InjectedFaultKind`] inside `e`, when `e` came from the injector.
pub fn injected_fault(e: &io::Error) -> Option<InjectedFaultKind> {
    e.get_ref()
        .and_then(|r| r.downcast_ref::<InjectedFault>())
        .map(|f| f.kind)
}

/// Deterministic storage fault schedule (all probabilities default 0).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiskFaultPlan {
    /// Seed for every per-operation decision.
    pub seed: u64,
    /// Probability a write-class operation fails with ENOSPC (persistent:
    /// never retried, goes straight to the degradation ladder).
    pub enospc: f64,
    /// Probability an operation fails with a flaky-media EIO (transient:
    /// retried with backoff; a retry re-decides at a fresh op index).
    pub eio: f64,
    /// Probability an fsync fails after the data was written (transient).
    pub fsync: f64,
    /// Probability a write is torn partway — half the bytes land, then
    /// the operation errors (transient; the retry rewrites from scratch).
    pub torn: f64,
    /// Hard power-cut at exactly this operation index: the operation
    /// applies a *partial* effect, and every later operation fails — the
    /// crash-consistency sweep's knob. Not expressible via the env
    /// grammar's probabilities; `kill_at=<k>` arms it.
    pub kill_at: Option<u64>,
}

impl DiskFaultPlan {
    /// Parses the `SSN_DISK_FAULTS` grammar:
    /// `seed=<u64>,enospc=<p>,eio=<p>,fsync=<p>,torn=<p>,kill_at=<u64>`
    /// (all fields optional, any order). `None` for malformed text — a
    /// production binary logs and ignores a bad env var rather than crash.
    pub fn parse(text: &str) -> Option<Self> {
        let mut plan = Self::default();
        for field in text.split(',') {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field.split_once('=')?;
            match key.trim() {
                "seed" => plan.seed = value.trim().parse().ok()?,
                "enospc" => plan.enospc = parse_prob(value)?,
                "eio" => plan.eio = parse_prob(value)?,
                "fsync" => plan.fsync = parse_prob(value)?,
                "torn" => plan.torn = parse_prob(value)?,
                "kill_at" => plan.kill_at = Some(value.trim().parse().ok()?),
                _ => return None,
            }
        }
        Some(plan)
    }

    /// `true` when the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.enospc > 0.0
            || self.eio > 0.0
            || self.fsync > 0.0
            || self.torn > 0.0
            || self.kill_at.is_some()
    }

    fn decide(&self, site: u64, op: u64, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&site.to_le_bytes());
        bytes[16..].copy_from_slice(&op.to_le_bytes());
        let h = crate::durable::fnv1a64(&bytes);
        // Upper 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < prob
    }
}

fn parse_prob(s: &str) -> Option<f64> {
    let p: f64 = s.trim().parse().ok()?;
    (0.0..=1.0).contains(&p).then_some(p)
}

// Distinct decision streams per fault site at the same op index.
const SITE_ENOSPC: u64 = 0x5344_4953_4b5f_6e6f;
const SITE_EIO: u64 = 0x5344_4953_4b5f_6569;
const SITE_FSYNC: u64 = 0x5344_4953_4b5f_6673;
const SITE_TORN: u64 = 0x5344_4953_4b5f_746f;

// ---------------------------------------------------------------------------
// Global arming (mirrors `ssn_server::netfaults`)
// ---------------------------------------------------------------------------

static ARMED: AtomicBool = AtomicBool::new(false);
static KILLED: AtomicBool = AtomicBool::new(false);
static OPS: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<DiskFaultPlan> = Mutex::new(DiskFaultPlan {
    seed: 0,
    enospc: 0.0,
    eio: 0.0,
    fsync: 0.0,
    torn: 0.0,
    kill_at: None,
});

/// Arms `plan` process-wide until [`disarm`]; resets the operation
/// counter and the simulated-death latch.
pub fn arm(plan: DiskFaultPlan) {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    OPS.store(0, Ordering::SeqCst);
    KILLED.store(false, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms all storage faults; primitives return to direct `std::fs`.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    KILLED.store(false, Ordering::SeqCst);
}

/// Arms from `SSN_DISK_FAULTS` if set and well-formed; returns the armed
/// plan so binaries can log what is being attacked.
pub fn arm_from_env() -> Option<DiskFaultPlan> {
    let text = std::env::var("SSN_DISK_FAULTS").ok()?;
    let plan = DiskFaultPlan::parse(&text)?;
    arm(plan);
    Some(plan)
}

/// Operations performed since the plan was armed (the sweep uses this to
/// size its kill schedule).
pub fn ops_performed() -> u64 {
    OPS.load(Ordering::SeqCst)
}

/// `true` once [`DiskFaultPlan::kill_at`] has fired: the simulated
/// process is dead and nothing may degrade-and-continue past it — the
/// durable runner distinguishes "the disk failed" (degrade) from "the
/// power went out" (typed interrupt) through this.
pub fn simulated_death() -> bool {
    KILLED.load(Ordering::SeqCst)
}

fn armed_plan() -> Option<DiskFaultPlan> {
    if !ARMED.load(Ordering::SeqCst) {
        return None;
    }
    Some(*PLAN.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Serializes fault-armed sections across test threads: the op counter
/// and plan are process-global, so two concurrently armed tests would
/// perturb each other's schedules.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with `plan` armed, then disarms — the test entry point.
/// Activations are serialized process-wide; a panicking body still
/// disarms before the panic resumes.
pub fn with_disk_faults<R>(plan: DiskFaultPlan, f: impl FnOnce() -> R) -> R {
    let _serialized = gate();
    arm(plan);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    disarm();
    match result {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// The injecting implementation
// ---------------------------------------------------------------------------

/// [`CkptIo`] that consults the armed [`DiskFaultPlan`] before delegating
/// to [`RealIo`]. One operation = one index in the fault schedule.
#[derive(Debug, Default, Clone, Copy)]
pub struct FaultIo;

impl FaultIo {
    /// Claims the next operation index; `Err` when the simulated power
    /// cut already happened (every op after the kill fails).
    fn next_op(&self) -> io::Result<(DiskFaultPlan, u64)> {
        let plan = armed_plan().unwrap_or_default();
        if KILLED.load(Ordering::SeqCst) {
            return Err(injected(
                InjectedFaultKind::Killed,
                OPS.load(Ordering::SeqCst),
            ));
        }
        let op = OPS.fetch_add(1, Ordering::SeqCst);
        Ok((plan, op))
    }

    fn kill_fires(&self, plan: &DiskFaultPlan, op: u64) -> bool {
        if plan.kill_at == Some(op) {
            KILLED.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }
}

fn count_injected(kind: InjectedFaultKind) {
    if ssn_telemetry::enabled() {
        let _ = kind;
        ssn_telemetry::add(ssn_telemetry::names::STORAGE_FAULTS, 1);
    }
}

impl CkptIo for FaultIo {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let (plan, op) = self.next_op()?;
        if self.kill_fires(&plan, op) {
            // Power cut mid-write: half the bytes land, nothing is synced.
            let _ = RealIo.write_file(path, &bytes[..bytes.len() / 2]);
            count_injected(InjectedFaultKind::Killed);
            return Err(injected(InjectedFaultKind::Killed, op));
        }
        if plan.decide(SITE_ENOSPC, op, plan.enospc) {
            count_injected(InjectedFaultKind::Enospc);
            return Err(injected(InjectedFaultKind::Enospc, op));
        }
        if plan.decide(SITE_TORN, op, plan.torn) {
            let _ = RealIo.write_file(path, &bytes[..bytes.len() / 2]);
            count_injected(InjectedFaultKind::TornWrite);
            return Err(injected(InjectedFaultKind::TornWrite, op));
        }
        if plan.decide(SITE_EIO, op, plan.eio) {
            count_injected(InjectedFaultKind::Eio);
            return Err(injected(InjectedFaultKind::Eio, op));
        }
        RealIo.write_file(path, bytes)?;
        if plan.decide(SITE_FSYNC, op, plan.fsync) {
            count_injected(InjectedFaultKind::FsyncFailed);
            return Err(injected(InjectedFaultKind::FsyncFailed, op));
        }
        Ok(())
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let (plan, op) = self.next_op()?;
        if self.kill_fires(&plan, op) {
            // Power cut while taking a lock: the file exists, the PID
            // never lands — exactly the torn-lock case staleness covers.
            let _ = RealIo.create_new(path, b"");
            count_injected(InjectedFaultKind::Killed);
            return Err(injected(InjectedFaultKind::Killed, op));
        }
        if plan.decide(SITE_ENOSPC, op, plan.enospc) {
            count_injected(InjectedFaultKind::Enospc);
            return Err(injected(InjectedFaultKind::Enospc, op));
        }
        if plan.decide(SITE_EIO, op, plan.eio) {
            count_injected(InjectedFaultKind::Eio);
            return Err(injected(InjectedFaultKind::Eio, op));
        }
        RealIo.create_new(path, bytes)?;
        if plan.decide(SITE_FSYNC, op, plan.fsync) {
            count_injected(InjectedFaultKind::FsyncFailed);
            return Err(injected(InjectedFaultKind::FsyncFailed, op));
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (plan, op) = self.next_op()?;
        if self.kill_fires(&plan, op) {
            // Power cut before the rename: the temp file stays orphaned.
            count_injected(InjectedFaultKind::Killed);
            return Err(injected(InjectedFaultKind::Killed, op));
        }
        if plan.decide(SITE_EIO, op, plan.eio) {
            count_injected(InjectedFaultKind::Eio);
            return Err(injected(InjectedFaultKind::Eio, op));
        }
        RealIo.rename(from, to)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        let (plan, op) = self.next_op()?;
        if self.kill_fires(&plan, op) {
            count_injected(InjectedFaultKind::Killed);
            return Err(injected(InjectedFaultKind::Killed, op));
        }
        if plan.decide(SITE_FSYNC, op, plan.fsync) {
            count_injected(InjectedFaultKind::FsyncFailed);
            return Err(injected(InjectedFaultKind::FsyncFailed, op));
        }
        RealIo.fsync_dir(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let (plan, op) = self.next_op()?;
        if self.kill_fires(&plan, op) {
            count_injected(InjectedFaultKind::Killed);
            return Err(injected(InjectedFaultKind::Killed, op));
        }
        if plan.decide(SITE_EIO, op, plan.eio) {
            count_injected(InjectedFaultKind::Eio);
            return Err(injected(InjectedFaultKind::Eio, op));
        }
        RealIo.read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let (plan, op) = self.next_op()?;
        if self.kill_fires(&plan, op) {
            count_injected(InjectedFaultKind::Killed);
            return Err(injected(InjectedFaultKind::Killed, op));
        }
        if plan.decide(SITE_EIO, op, plan.eio) {
            count_injected(InjectedFaultKind::Eio);
            return Err(injected(InjectedFaultKind::Eio, op));
        }
        RealIo.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let (plan, op) = self.next_op()?;
        if self.kill_fires(&plan, op) {
            count_injected(InjectedFaultKind::Killed);
            return Err(injected(InjectedFaultKind::Killed, op));
        }
        if plan.decide(SITE_ENOSPC, op, plan.enospc) {
            count_injected(InjectedFaultKind::Enospc);
            return Err(injected(InjectedFaultKind::Enospc, op));
        }
        if plan.decide(SITE_EIO, op, plan.eio) {
            count_injected(InjectedFaultKind::Eio);
            return Err(injected(InjectedFaultKind::Eio, op));
        }
        RealIo.create_dir_all(path)
    }
}

static REAL: RealIo = RealIo;
static FAULTY: FaultIo = FaultIo;

/// The active [`CkptIo`]: [`RealIo`] when disarmed (one relaxed atomic
/// load of overhead), the injector while a plan is armed.
pub fn io() -> &'static dyn CkptIo {
    if ARMED.load(Ordering::Relaxed) {
        &FAULTY
    } else {
        &REAL
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// `true` for faults worth retrying: interrupted/timed-out syscalls and
/// the injected transient classes (EIO, failed fsync, torn write). ENOSPC,
/// permission problems, missing files, and a simulated power cut are
/// persistent — retrying cannot help, the degradation ladder can.
pub fn is_transient(e: &io::Error) -> bool {
    if let Some(kind) = injected_fault(e) {
        return matches!(
            kind,
            InjectedFaultKind::Eio | InjectedFaultKind::FsyncFailed | InjectedFaultKind::TornWrite
        );
    }
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => true,
        io::ErrorKind::StorageFull
        | io::ErrorKind::PermissionDenied
        | io::ErrorKind::NotFound
        | io::ErrorKind::AlreadyExists
        | io::ErrorKind::Unsupported => false,
        // Real-media EIO surfaces as an uncategorized kind; one bounded
        // retry round is cheap and may clear a genuinely flaky sector.
        _ => true,
    }
}

/// Bounded retry-with-backoff for transient storage faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 = no retry.
    pub attempts: u32,
    /// Sleep before retry `n` is `base_backoff * 2^(n-1)`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base_backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// No retries: every fault surfaces on the first attempt.
    pub fn none() -> Self {
        Self {
            attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// Runs `f`, retrying transient failures up to the attempt budget
    /// with doubling backoff. Persistent failures (see [`is_transient`])
    /// return immediately. Each retry is counted in the
    /// `storage.retries` telemetry counter.
    pub fn run<T>(&self, mut f: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let attempts = self.attempts.max(1);
        let mut backoff = self.base_backoff;
        let mut attempt = 1;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < attempts && is_transient(&e) => {
                    if ssn_telemetry::enabled() {
                        ssn_telemetry::add(ssn_telemetry::names::STORAGE_RETRIES, 1);
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "ssn-storage-unit-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    #[test]
    fn parses_the_env_grammar() {
        let p = DiskFaultPlan::parse("seed=9,enospc=0.25,eio=0.5,fsync=1,torn=0.1").unwrap();
        assert_eq!(p.seed, 9);
        assert_eq!(p.enospc, 0.25);
        assert_eq!(p.eio, 0.5);
        assert_eq!(p.fsync, 1.0);
        assert_eq!(p.torn, 0.1);
        assert_eq!(p.kill_at, None);
        assert!(p.is_active());
        let p = DiskFaultPlan::parse("kill_at=7").unwrap();
        assert_eq!(p.kill_at, Some(7));
        assert_eq!(
            DiskFaultPlan::parse("").unwrap(),
            DiskFaultPlan::default(),
            "empty text is the inert plan"
        );
        assert!(!DiskFaultPlan::default().is_active());
        assert!(DiskFaultPlan::parse("enospc=2").is_none());
        assert!(DiskFaultPlan::parse("zebra=1").is_none());
        assert!(DiskFaultPlan::parse("eio").is_none());
    }

    #[test]
    fn decisions_are_deterministic_and_probability_shaped() {
        let p = DiskFaultPlan {
            seed: 3,
            eio: 0.5,
            ..DiskFaultPlan::default()
        };
        let fired: Vec<bool> = (0..1000).map(|op| p.decide(SITE_EIO, op, p.eio)).collect();
        let again: Vec<bool> = (0..1000).map(|op| p.decide(SITE_EIO, op, p.eio)).collect();
        assert_eq!(fired, again);
        let count = fired.iter().filter(|&&b| b).count();
        assert!((300..700).contains(&count), "got {count} of 1000 at p=0.5");
        // Sites are independent streams at the same op index.
        let other: Vec<bool> = (0..1000).map(|op| p.decide(SITE_TORN, op, 0.5)).collect();
        assert_ne!(fired, other);
    }

    #[test]
    fn disarmed_layer_is_the_real_filesystem() {
        disarm();
        let path = temp_path("real");
        io().write_file(&path, b"plain").unwrap();
        assert_eq!(io().read(&path).unwrap(), b"plain");
        io().remove_file(&path).unwrap();
        assert!(io().read(&path).is_err());
    }

    #[test]
    fn enospc_schedule_fails_writes_typed_and_leaves_no_file() {
        let path = temp_path("enospc");
        with_disk_faults(
            DiskFaultPlan {
                enospc: 1.0,
                ..DiskFaultPlan::default()
            },
            || {
                let e = io().write_file(&path, b"doomed").unwrap_err();
                assert_eq!(e.kind(), io::ErrorKind::StorageFull);
                assert_eq!(injected_fault(&e), Some(InjectedFaultKind::Enospc));
                assert!(!is_transient(&e), "ENOSPC must not be retried");
                assert!(!path.exists(), "a failed allocation writes nothing");
            },
        );
    }

    #[test]
    fn torn_write_leaves_half_the_bytes_and_is_transient() {
        let path = temp_path("torn");
        with_disk_faults(
            DiskFaultPlan {
                torn: 1.0,
                ..DiskFaultPlan::default()
            },
            || {
                let e = io().write_file(&path, &[7u8; 64]).unwrap_err();
                assert_eq!(injected_fault(&e), Some(InjectedFaultKind::TornWrite));
                assert!(is_transient(&e));
                let on_disk = std::fs::read(&path).unwrap();
                assert_eq!(on_disk.len(), 32, "exactly half the bytes landed");
            },
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_at_applies_partial_effect_then_everything_fails() {
        let a = temp_path("kill-a");
        let b = temp_path("kill-b");
        with_disk_faults(
            DiskFaultPlan {
                kill_at: Some(1),
                ..DiskFaultPlan::default()
            },
            || {
                io().write_file(&a, &[1u8; 10]).unwrap(); // op 0 survives
                let e = io().write_file(&b, &[2u8; 10]).unwrap_err(); // op 1 dies
                assert_eq!(injected_fault(&e), Some(InjectedFaultKind::Killed));
                assert_eq!(std::fs::read(&b).unwrap().len(), 5, "torn at the cut");
                // The process is dead: every later operation fails too.
                let e = io().read(&a).unwrap_err();
                assert_eq!(injected_fault(&e), Some(InjectedFaultKind::Killed));
                assert!(!is_transient(&e), "death is not retryable");
            },
        );
        // Disarmed again: the world is readable.
        assert_eq!(io().read(&a).unwrap(), vec![1u8; 10]);
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn retry_policy_clears_transient_faults_and_respects_persistent_ones() {
        let flaky_left = AtomicUsize::new(2);
        let policy = RetryPolicy {
            attempts: 3,
            base_backoff: Duration::ZERO,
        };
        let out = policy.run(|| {
            if flaky_left.fetch_sub(1, Ordering::SeqCst) > 0 {
                Err(injected(InjectedFaultKind::Eio, 0))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42, "two transient failures, third try wins");

        let tries = AtomicUsize::new(0);
        let out: io::Result<()> = policy.run(|| {
            tries.fetch_add(1, Ordering::SeqCst);
            Err(injected(InjectedFaultKind::Enospc, 0))
        });
        assert!(out.is_err());
        assert_eq!(
            tries.load(Ordering::SeqCst),
            1,
            "persistent faults are not retried"
        );

        let tries = AtomicUsize::new(0);
        let out: io::Result<()> = policy.run(|| {
            tries.fetch_add(1, Ordering::SeqCst);
            Err(injected(InjectedFaultKind::Eio, 0))
        });
        assert!(out.is_err());
        assert_eq!(
            tries.load(Ordering::SeqCst),
            3,
            "transient faults exhaust the attempt budget"
        );
    }

    #[test]
    fn op_counter_counts_only_while_armed() {
        let path = temp_path("ops");
        with_disk_faults(DiskFaultPlan::default(), || {
            assert_eq!(ops_performed(), 0);
            io().write_file(&path, b"x").unwrap();
            io().read(&path).unwrap();
            io().remove_file(&path).unwrap();
            assert_eq!(ops_performed(), 3);
        });
    }
}
