//! Error type for the SSN core.

use ssn_numeric::NumericError;
use ssn_spice::SpiceError;
use ssn_waveform::WaveformError;
use std::error::Error;
use std::fmt;

/// Error produced by SSN scenario construction or evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SsnError {
    /// A scenario parameter was out of its physical domain.
    InvalidScenario {
        /// Human-readable description.
        context: String,
    },
    /// Device-model fitting failed.
    Fit(NumericError),
    /// The validation simulator failed.
    Simulation(SpiceError),
    /// A waveform operation failed.
    Waveform(WaveformError),
}

impl SsnError {
    pub(crate) fn scenario(context: impl Into<String>) -> Self {
        Self::InvalidScenario {
            context: context.into(),
        }
    }
}

impl fmt::Display for SsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidScenario { context } => write!(f, "invalid SSN scenario: {context}"),
            Self::Fit(e) => write!(f, "model fit failed: {e}"),
            Self::Simulation(e) => write!(f, "validation simulation failed: {e}"),
            Self::Waveform(e) => write!(f, "waveform operation failed: {e}"),
        }
    }
}

impl Error for SsnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::InvalidScenario { .. } => None,
            Self::Fit(e) => Some(e),
            Self::Simulation(e) => Some(e),
            Self::Waveform(e) => Some(e),
        }
    }
}

impl From<NumericError> for SsnError {
    fn from(e: NumericError) -> Self {
        Self::Fit(e)
    }
}

impl From<SpiceError> for SsnError {
    fn from(e: SpiceError) -> Self {
        Self::Simulation(e)
    }
}

impl From<WaveformError> for SsnError {
    fn from(e: WaveformError) -> Self {
        Self::Waveform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SsnError::scenario("n must be positive");
        assert!(e.to_string().contains("n must be positive"));
        assert!(e.source().is_none());
        let e: SsnError = NumericError::argument("bad").into();
        assert!(e.to_string().contains("fit failed"));
        assert!(e.source().is_some());
        let e: SsnError = WaveformError::InvalidTimeGrid.into();
        assert!(e.to_string().contains("waveform"));
    }
}
