//! Error type for the SSN core.

use ssn_numeric::NumericError;
use ssn_spice::SpiceError;
use ssn_waveform::WaveformError;
use std::error::Error;
use std::fmt;

/// Error produced by SSN scenario construction or evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SsnError {
    /// A scenario parameter was out of its physical domain.
    InvalidScenario {
        /// Human-readable description.
        context: String,
    },
    /// A single named input failed validation at a public entry point.
    ///
    /// Unlike [`SsnError::InvalidScenario`] (free-form context), this
    /// variant is structured so callers — and the CLI's exit-code mapping —
    /// can report exactly which field was rejected and why.
    InvalidInput {
        /// Human-readable field name (e.g. `"inductance"`, `"rise time"`).
        field: &'static str,
        /// The offending value.
        value: f64,
        /// The constraint it violated (e.g. `"must be positive and finite"`).
        constraint: &'static str,
    },
    /// A parallel run lost every chunk to injected or real faults: there is
    /// no partial result to return.
    AllChunksFailed {
        /// Chunks that failed.
        failed: usize,
        /// Total chunks attempted.
        total: usize,
        /// The first chunk's failure description.
        first_cause: String,
    },
    /// Device-model fitting failed.
    Fit(NumericError),
    /// The validation simulator failed.
    Simulation(SpiceError),
    /// A waveform operation failed.
    Waveform(WaveformError),
    /// A checkpoint journal could not be used: unreadable, corrupt,
    /// written by an incompatible format version, or recorded for a
    /// different run. The run must start fresh rather than risk resuming
    /// from wrong-but-plausible state.
    Checkpoint {
        /// The journal path.
        path: String,
        /// What class of problem was detected.
        kind: CheckpointErrorKind,
        /// Human-readable detail (which check failed, expected vs found).
        detail: String,
    },
    /// A simulated crash (fault injection or `SSN_CRASH_AFTER_COMMITS`)
    /// killed the run after some chunks were committed to the checkpoint.
    /// Resume with `--resume` to continue from the journal.
    Interrupted {
        /// Chunks durably committed before the crash.
        committed_chunks: usize,
        /// Total chunks the run planned.
        total_chunks: usize,
    },
    /// The run deadline expired before *any* result was produced, so there
    /// is no partial result to degrade to.
    DeadlineExhausted {
        /// Work items completed (always 0 at raise time today, kept for
        /// forward compatibility).
        completed_items: usize,
        /// Work items the run planned.
        planned_items: usize,
    },
}

/// Classification of an unusable checkpoint journal (see
/// [`SsnError::Checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointErrorKind {
    /// Truncated file, bad magic, or a checksum mismatch.
    Corrupt,
    /// The journal was written by a different (newer or retired) format
    /// version.
    VersionMismatch,
    /// The journal header does not match this run's parameters (different
    /// seed, corpus size, chunk size, or workload kind).
    SpecMismatch,
    /// The journal could not be read or written at the filesystem level.
    Io,
    /// Another live process holds the journal's exclusive lock file —
    /// two runs must never resume (and concurrently commit to) the same
    /// journal.
    Locked,
}

impl CheckpointErrorKind {
    /// Short lowercase tag used in error text and logs.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Corrupt => "corrupt",
            Self::VersionMismatch => "version-mismatch",
            Self::SpecMismatch => "spec-mismatch",
            Self::Io => "io",
            Self::Locked => "locked",
        }
    }
}

impl SsnError {
    pub(crate) fn scenario(context: impl Into<String>) -> Self {
        Self::InvalidScenario {
            context: context.into(),
        }
    }

    pub(crate) fn invalid(field: &'static str, value: f64, constraint: &'static str) -> Self {
        Self::InvalidInput {
            field,
            value,
            constraint,
        }
    }

    pub(crate) fn checkpoint(
        path: impl Into<String>,
        kind: CheckpointErrorKind,
        detail: impl Into<String>,
    ) -> Self {
        Self::Checkpoint {
            path: path.into(),
            kind,
            detail: detail.into(),
        }
    }

    /// `true` when this error means "the run deadline expired inside a
    /// kernel", i.e. the chunk was *skipped* cooperatively rather than
    /// failed. The durable runner uses this to classify chunk outcomes.
    pub fn is_cancelled(&self) -> bool {
        match self {
            Self::Simulation(SpiceError::Cancelled { .. }) => true,
            Self::Simulation(SpiceError::Numeric(NumericError::Cancelled { .. })) => true,
            Self::Fit(NumericError::Cancelled { .. }) => true,
            _ => false,
        }
    }
}

impl fmt::Display for SsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidScenario { context } => write!(f, "invalid SSN scenario: {context}"),
            Self::InvalidInput {
                field,
                value,
                constraint,
            } => {
                // Long decimal expansions (e.g. a parsed `-3n` rise time)
                // are unreadable; fall back to scientific notation.
                let plain = format!("{value}");
                let shown = if plain.len() <= 8 {
                    plain
                } else {
                    format!("{value:.4e}")
                };
                write!(f, "invalid input: {field} = {shown} ({constraint})")
            }
            Self::AllChunksFailed {
                failed,
                total,
                first_cause,
            } => write!(
                f,
                "all {failed} of {total} parallel chunks failed; first cause: {first_cause}"
            ),
            Self::Fit(e) => write!(f, "model fit failed: {e}"),
            Self::Simulation(e) => write!(f, "validation simulation failed: {e}"),
            Self::Waveform(e) => write!(f, "waveform operation failed: {e}"),
            Self::Checkpoint { path, kind, detail } => match kind {
                CheckpointErrorKind::Locked => write!(
                    f,
                    "checkpoint {path:?} is locked: {detail}; wait for the holding run to \
                     finish (a stale lock left by a dead process is recovered automatically)"
                ),
                _ => write!(
                    f,
                    "checkpoint {path:?} unusable ({}): {detail}; delete the file or rerun \
                     without --resume to start fresh",
                    kind.tag()
                ),
            },
            Self::Interrupted {
                committed_chunks,
                total_chunks,
            } => write!(
                f,
                "run interrupted by injected crash after {committed_chunks} of {total_chunks} \
                 chunk(s) were committed; rerun with --resume to continue"
            ),
            Self::DeadlineExhausted {
                completed_items,
                planned_items,
            } => write!(
                f,
                "run deadline expired with {completed_items} of {planned_items} item(s) \
                 completed: no partial result to return"
            ),
        }
    }
}

impl Error for SsnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::InvalidScenario { .. } => None,
            Self::InvalidInput { .. } => None,
            Self::AllChunksFailed { .. } => None,
            Self::Fit(e) => Some(e),
            Self::Simulation(e) => Some(e),
            Self::Waveform(e) => Some(e),
            Self::Checkpoint { .. } => None,
            Self::Interrupted { .. } => None,
            Self::DeadlineExhausted { .. } => None,
        }
    }
}

impl From<NumericError> for SsnError {
    fn from(e: NumericError) -> Self {
        Self::Fit(e)
    }
}

impl From<SpiceError> for SsnError {
    fn from(e: SpiceError) -> Self {
        Self::Simulation(e)
    }
}

impl From<WaveformError> for SsnError {
    fn from(e: WaveformError) -> Self {
        Self::Waveform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SsnError::scenario("n must be positive");
        assert!(e.to_string().contains("n must be positive"));
        assert!(e.source().is_none());
        let e: SsnError = NumericError::argument("bad").into();
        assert!(e.to_string().contains("fit failed"));
        assert!(e.source().is_some());
        let e: SsnError = WaveformError::InvalidTimeGrid.into();
        assert!(e.to_string().contains("waveform"));
        let e = SsnError::invalid("rise time", -1.0, "must be positive and finite");
        assert!(e.to_string().contains("rise time"));
        assert!(e.to_string().contains("-1"));
        assert!(e.to_string().contains("positive"));
        assert!(e.source().is_none());
        let e = SsnError::AllChunksFailed {
            failed: 4,
            total: 4,
            first_cause: "worker panicked".into(),
        };
        assert!(e.to_string().contains("4 of 4"));
        assert!(e.to_string().contains("worker panicked"));
    }

    #[test]
    fn durable_variants_display() {
        let e = SsnError::checkpoint(
            "/tmp/run.ckpt",
            CheckpointErrorKind::Corrupt,
            "record 3 checksum mismatch",
        );
        assert!(e.to_string().contains("corrupt"));
        assert!(e.to_string().contains("start fresh"));
        assert!(e.source().is_none());
        let e = SsnError::Interrupted {
            committed_chunks: 2,
            total_chunks: 8,
        };
        assert!(e.to_string().contains("2 of 8"));
        assert!(e.to_string().contains("--resume"));
        let e = SsnError::DeadlineExhausted {
            completed_items: 0,
            planned_items: 100,
        };
        assert!(e.to_string().contains("deadline"));
        assert_eq!(
            CheckpointErrorKind::VersionMismatch.tag(),
            "version-mismatch"
        );
        assert_eq!(CheckpointErrorKind::SpecMismatch.tag(), "spec-mismatch");
        assert_eq!(CheckpointErrorKind::Io.tag(), "io");
    }

    #[test]
    fn cancelled_classification() {
        let e: SsnError = SpiceError::Cancelled { time: 1e-9 }.into();
        assert!(e.is_cancelled());
        let e: SsnError = NumericError::Cancelled {
            method: "rkf45",
            at: 0.5,
        }
        .into();
        assert!(e.is_cancelled());
        let e: SsnError = SpiceError::Numeric(NumericError::Cancelled {
            method: "rkf45",
            at: 0.5,
        })
        .into();
        assert!(e.is_cancelled());
        assert!(!SsnError::scenario("x").is_cancelled());
    }
}
