//! Error type for the SSN core.

use ssn_numeric::NumericError;
use ssn_spice::SpiceError;
use ssn_waveform::WaveformError;
use std::error::Error;
use std::fmt;

/// Error produced by SSN scenario construction or evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SsnError {
    /// A scenario parameter was out of its physical domain.
    InvalidScenario {
        /// Human-readable description.
        context: String,
    },
    /// A single named input failed validation at a public entry point.
    ///
    /// Unlike [`SsnError::InvalidScenario`] (free-form context), this
    /// variant is structured so callers — and the CLI's exit-code mapping —
    /// can report exactly which field was rejected and why.
    InvalidInput {
        /// Human-readable field name (e.g. `"inductance"`, `"rise time"`).
        field: &'static str,
        /// The offending value.
        value: f64,
        /// The constraint it violated (e.g. `"must be positive and finite"`).
        constraint: &'static str,
    },
    /// A parallel run lost every chunk to injected or real faults: there is
    /// no partial result to return.
    AllChunksFailed {
        /// Chunks that failed.
        failed: usize,
        /// Total chunks attempted.
        total: usize,
        /// The first chunk's failure description.
        first_cause: String,
    },
    /// Device-model fitting failed.
    Fit(NumericError),
    /// The validation simulator failed.
    Simulation(SpiceError),
    /// A waveform operation failed.
    Waveform(WaveformError),
}

impl SsnError {
    pub(crate) fn scenario(context: impl Into<String>) -> Self {
        Self::InvalidScenario {
            context: context.into(),
        }
    }

    pub(crate) fn invalid(field: &'static str, value: f64, constraint: &'static str) -> Self {
        Self::InvalidInput {
            field,
            value,
            constraint,
        }
    }
}

impl fmt::Display for SsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidScenario { context } => write!(f, "invalid SSN scenario: {context}"),
            Self::InvalidInput {
                field,
                value,
                constraint,
            } => {
                // Long decimal expansions (e.g. a parsed `-3n` rise time)
                // are unreadable; fall back to scientific notation.
                let plain = format!("{value}");
                let shown = if plain.len() <= 8 {
                    plain
                } else {
                    format!("{value:.4e}")
                };
                write!(f, "invalid input: {field} = {shown} ({constraint})")
            }
            Self::AllChunksFailed {
                failed,
                total,
                first_cause,
            } => write!(
                f,
                "all {failed} of {total} parallel chunks failed; first cause: {first_cause}"
            ),
            Self::Fit(e) => write!(f, "model fit failed: {e}"),
            Self::Simulation(e) => write!(f, "validation simulation failed: {e}"),
            Self::Waveform(e) => write!(f, "waveform operation failed: {e}"),
        }
    }
}

impl Error for SsnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::InvalidScenario { .. } => None,
            Self::InvalidInput { .. } => None,
            Self::AllChunksFailed { .. } => None,
            Self::Fit(e) => Some(e),
            Self::Simulation(e) => Some(e),
            Self::Waveform(e) => Some(e),
        }
    }
}

impl From<NumericError> for SsnError {
    fn from(e: NumericError) -> Self {
        Self::Fit(e)
    }
}

impl From<SpiceError> for SsnError {
    fn from(e: SpiceError) -> Self {
        Self::Simulation(e)
    }
}

impl From<WaveformError> for SsnError {
    fn from(e: WaveformError) -> Self {
        Self::Waveform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SsnError::scenario("n must be positive");
        assert!(e.to_string().contains("n must be positive"));
        assert!(e.source().is_none());
        let e: SsnError = NumericError::argument("bad").into();
        assert!(e.to_string().contains("fit failed"));
        assert!(e.source().is_some());
        let e: SsnError = WaveformError::InvalidTimeGrid.into();
        assert!(e.to_string().contains("waveform"));
        let e = SsnError::invalid("rise time", -1.0, "must be positive and finite");
        assert!(e.to_string().contains("rise time"));
        assert!(e.to_string().contains("-1"));
        assert!(e.to_string().contains("positive"));
        assert!(e.source().is_none());
        let e = SsnError::AllChunksFailed {
            failed: 4,
            total: 4,
            first_cause: "worker panicked".into(),
        };
        assert!(e.to_string().contains("4 of 4"));
        assert!(e.to_string().contains("worker panicked"));
    }
}
