//! DC operating point via Newton–Raphson with gmin and source stepping.

use crate::error::SpiceError;
use crate::linsolve::{SolverWorkspace, SPARSE_DIM_THRESHOLD};
use crate::netlist::Circuit;
use crate::solution::DcSolution;
use crate::stamp::{AnalysisMode, SystemLayout};

/// Options for [`dc_operating_point`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOptions {
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Absolute node-voltage tolerance (V).
    pub vntol: f64,
    /// Absolute branch-current tolerance (A).
    pub abstol: f64,
    /// Newton iteration budget per homotopy stage.
    pub max_newton: usize,
    /// Per-iteration voltage step clamp (V).
    pub v_step_limit: f64,
    /// Systems with at least this many unknowns use the sparse/GMRES
    /// ladder instead of dense LU. `usize::MAX` forces dense everywhere;
    /// a small value forces the sparse tier (useful in tests).
    pub sparse_dim_threshold: usize,
}

impl Default for DcOptions {
    fn default() -> Self {
        Self {
            reltol: 1e-6,
            vntol: 1e-9,
            abstol: 1e-12,
            max_newton: 100,
            v_step_limit: 1.0,
            sparse_dim_threshold: SPARSE_DIM_THRESHOLD,
        }
    }
}

/// Runs one Newton solve for a fixed analysis mode, starting from `x`,
/// using the analysis-scoped solver state in `ws`.
///
/// Returns the converged solution and the number of iterations used.
pub(crate) fn newton_solve(
    circuit: &Circuit,
    layout: &SystemLayout,
    mode: &AnalysisMode<'_>,
    mut x: Vec<f64>,
    opts: &DcOptions,
    ws: &mut SolverWorkspace,
) -> Result<(Vec<f64>, usize), SpiceError> {
    let n = layout.dim();
    let n_node_unknowns = layout.n_nodes - 1;
    // The voltage step clamp grows whenever it engages on consecutive
    // iterations, so legitimate large linear solutions (e.g. a current
    // source into a gmin-only node) stay reachable while nonlinear devices
    // still get damped through their region changes.
    let mut step_limit = opts.v_step_limit;

    // For a linear circuit the assembled system does not depend on the
    // iterate, so every iteration of the naive loop solves the identical
    // system and lands on the identical `x_new`: solve once up front and
    // replay it through the damping iterations (bit-identical, and the
    // damping/convergence bookkeeping below stays untouched).
    let hoisted = if ws.is_linear_circuit() {
        Some(ws.solve(circuit, layout, &x, mode)?)
    } else {
        None
    };

    for iter in 1..=opts.max_newton {
        let x_new = match &hoisted {
            Some(sol) => sol.clone(),
            None => ws.solve(circuit, layout, &x, mode)?,
        };

        // Raw Newton step, then damping on the voltage block.
        let mut max_v_step = 0.0f64;
        for i in 0..n_node_unknowns {
            max_v_step = max_v_step.max((x_new[i] - x[i]).abs());
        }
        let damp = if max_v_step > step_limit {
            let d = step_limit / max_v_step;
            step_limit *= 2.0;
            d
        } else {
            step_limit = opts.v_step_limit;
            1.0
        };

        let mut converged = damp == 1.0;
        for i in 0..n {
            let delta = x_new[i] - x[i];
            let tol = if i < n_node_unknowns {
                opts.vntol + opts.reltol * x[i].abs().max(x_new[i].abs())
            } else {
                opts.abstol + opts.reltol * x[i].abs().max(x_new[i].abs())
            };
            if delta.abs() > tol {
                converged = false;
            }
            x[i] += damp * delta;
        }
        if converged {
            return Ok((x, iter));
        }
    }
    Err(SpiceError::NewtonDiverged {
        time: None,
        iterations: opts.max_newton,
    })
}

/// Computes the DC operating point: capacitors open, inductors shorted,
/// nonlinear devices iterated to convergence.
///
/// Convergence is rescued with two homotopies: gmin stepping (a conductance
/// from every node to ground swept from 1 mS down to nothing) and, failing
/// that, source stepping (all sources ramped from zero).
///
/// # Errors
///
/// * [`SpiceError::NewtonDiverged`] when every homotopy fails,
/// * [`SpiceError::Numeric`] for singular MNA systems (e.g. a floating
///   subcircuit without even a gmin path — prevented internally by the gmin
///   floor, so this indicates a malformed circuit).
///
/// # Examples
///
/// ```
/// use ssn_spice::{Circuit, SourceWave, dc_operating_point, DcOptions};
///
/// # fn main() -> Result<(), ssn_spice::SpiceError> {
/// let mut c = Circuit::new();
/// c.vsource("v1", "in", "0", SourceWave::Dc(2.0))?;
/// c.resistor("r1", "in", "out", 1e3)?;
/// c.resistor("r2", "out", "0", 3e3)?;
/// let op = dc_operating_point(&c, DcOptions::default())?;
/// assert!((op.voltage("out")? - 1.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn dc_operating_point(circuit: &Circuit, opts: DcOptions) -> Result<DcSolution, SpiceError> {
    let layout = SystemLayout::new(circuit);
    let x0 = vec![0.0; layout.dim()];
    let mut ws = SolverWorkspace::new(circuit, &layout, opts.sparse_dim_threshold, true)?;

    // Plain Newton first.
    let direct = newton_solve(
        circuit,
        &layout,
        &AnalysisMode::Dc {
            gmin: 0.0,
            source_scale: 1.0,
        },
        x0.clone(),
        &opts,
        &mut ws,
    );
    if let Ok((x, _)) = direct {
        return Ok(DcSolution {
            circuit: circuit.clone(),
            layout,
            x,
        });
    }

    // gmin stepping.
    let mut x = x0.clone();
    let mut ok = true;
    for exp in 3..=12 {
        let gmin = 10f64.powi(-exp);
        match newton_solve(
            circuit,
            &layout,
            &AnalysisMode::Dc {
                gmin,
                source_scale: 1.0,
            },
            x.clone(),
            &opts,
            &mut ws,
        ) {
            Ok((next, _)) => x = next,
            Err(_) => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        if let Ok((x, _)) = newton_solve(
            circuit,
            &layout,
            &AnalysisMode::Dc {
                gmin: 0.0,
                source_scale: 1.0,
            },
            x,
            &opts,
            &mut ws,
        ) {
            return Ok(DcSolution {
                circuit: circuit.clone(),
                layout,
                x,
            });
        }
    }

    // Source stepping.
    let mut x = x0;
    for k in 1..=10 {
        let scale = f64::from(k) / 10.0;
        let (next, _) = newton_solve(
            circuit,
            &layout,
            &AnalysisMode::Dc {
                gmin: 0.0,
                source_scale: scale,
            },
            x,
            &opts,
            &mut ws,
        )?;
        x = next;
    }
    Ok(DcSolution {
        circuit: circuit.clone(),
        layout,
        x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;
    use ssn_devices::{AlphaPower, Level1, MosPolarity};
    use std::sync::Arc;

    #[test]
    fn resistor_ladder() {
        let mut c = Circuit::new();
        c.vsource("v1", "n1", "0", SourceWave::Dc(3.0)).unwrap();
        c.resistor("r1", "n1", "n2", 1e3).unwrap();
        c.resistor("r2", "n2", "n3", 1e3).unwrap();
        c.resistor("r3", "n3", "0", 1e3).unwrap();
        let op = dc_operating_point(&c, DcOptions::default()).unwrap();
        assert!((op.voltage("n2").unwrap() - 2.0).abs() < 1e-6);
        assert!((op.voltage("n3").unwrap() - 1.0).abs() < 1e-6);
        assert!((op.branch_current("v1").unwrap() + 1e-3).abs() < 1e-6);
        assert!(op.voltage("nope").is_err());
        assert!(op.branch_current("r1").is_err());
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new();
        c.vsource("v1", "a", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "a", "b", 1e3).unwrap();
        c.inductor("l1", "b", "c", 1e-9).unwrap();
        c.resistor("r2", "c", "0", 1e3).unwrap();
        let op = dc_operating_point(&c, DcOptions::default()).unwrap();
        assert!((op.voltage("b").unwrap() - op.voltage("c").unwrap()).abs() < 1e-9);
        assert!((op.branch_current("l1").unwrap() - 0.5e-3).abs() < 1e-8);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut c = Circuit::new();
        c.vsource("v1", "a", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "a", "b", 1e3).unwrap();
        c.capacitor("c1", "b", "0", 1e-9).unwrap();
        let op = dc_operating_point(&c, DcOptions::default()).unwrap();
        // No DC path to ground except gmin: node b floats to the source.
        assert!((op.voltage("b").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nmos_inverter_transfer_points() {
        // Resistive-load inverter: vdd -- r(10k) -- out -- nmos -- gnd.
        let model = Arc::new(Level1::new(2e-3, 0.5));
        let build = |vin: f64| {
            let mut c = Circuit::new();
            c.vsource("vdd", "vdd", "0", SourceWave::Dc(1.8)).unwrap();
            c.vsource("vin", "g", "0", SourceWave::Dc(vin)).unwrap();
            c.resistor("rl", "vdd", "out", 10e3).unwrap();
            c.mosfet("m1", MosPolarity::Nmos, "out", "g", "0", "0", model.clone())
                .unwrap();
            c
        };
        // Input low: output high.
        let hi = dc_operating_point(&build(0.0), DcOptions::default()).unwrap();
        assert!((hi.voltage("out").unwrap() - 1.8).abs() < 1e-3);
        // Input high: output pulled low (strong device vs 10k load).
        let lo = dc_operating_point(&build(1.8), DcOptions::default()).unwrap();
        assert!(lo.voltage("out").unwrap() < 0.1);
    }

    #[test]
    fn cmos_inverter_rails() {
        let n = Arc::new(AlphaPower::builder().build());
        let p = Arc::new(AlphaPower::builder().build()); // symmetric stand-in
        let build = |vin: f64| {
            let mut c = Circuit::new();
            c.vsource("vdd", "vdd", "0", SourceWave::Dc(1.8)).unwrap();
            c.vsource("vin", "g", "0", SourceWave::Dc(vin)).unwrap();
            c.mosfet("mp", MosPolarity::Pmos, "out", "g", "vdd", "vdd", p.clone())
                .unwrap();
            c.mosfet("mn", MosPolarity::Nmos, "out", "g", "0", "0", n.clone())
                .unwrap();
            c
        };
        let hi = dc_operating_point(&build(0.0), DcOptions::default()).unwrap();
        assert!(
            (hi.voltage("out").unwrap() - 1.8).abs() < 1e-2,
            "out = {}",
            hi.voltage("out").unwrap()
        );
        let lo = dc_operating_point(&build(1.8), DcOptions::default()).unwrap();
        assert!(lo.voltage("out").unwrap() < 1e-2);
    }

    #[test]
    fn diode_rectifier_drop() {
        use ssn_devices::Diode;
        // 1 V source through 1k into a diode: I = (1 - Vd)/1k and
        // Vd = forward_voltage(I) must agree self-consistently.
        let mut c = Circuit::new();
        c.vsource("v1", "in", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "in", "d", 1e3).unwrap();
        let model = Diode::new(1e-14, 1.0);
        c.diode("d1", "d", "0", model).unwrap();
        let op = dc_operating_point(&c, DcOptions::default()).unwrap();
        let vd = op.voltage("d").unwrap();
        assert!(vd > 0.4 && vd < 0.8, "diode drop {vd}");
        let i = (1.0 - vd) / 1e3;
        assert!(
            (model.forward_voltage(i) - vd).abs() < 1e-6,
            "inconsistent op: vd = {vd}, i = {i}"
        );
        // Reverse direction: blocks, node follows the source through R
        // (only the saturation current flows).
        let mut c = Circuit::new();
        c.vsource("v1", "in", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "in", "d", 1e3).unwrap();
        c.diode("d2", "0", "d", model).unwrap(); // flipped
        let op = dc_operating_point(&c, DcOptions::default()).unwrap();
        assert!((op.voltage("d").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_injects_current() {
        let mut c = Circuit::new();
        c.vsource("vc", "ctl", "0", SourceWave::Dc(1.0)).unwrap();
        c.vccs("g1", "out", "0", "ctl", "0", 1e-3).unwrap();
        c.resistor("rl", "out", "0", 1e3).unwrap();
        let op = dc_operating_point(&c, DcOptions::default()).unwrap();
        // 1 mA leaves "out" through the VCCS, so the resistor pulls the node
        // to -1 V.
        assert!((op.voltage("out").unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn isource_polarity() {
        let mut c = Circuit::new();
        c.isource("i1", "0", "out", SourceWave::Dc(1e-3)).unwrap();
        c.resistor("rl", "out", "0", 1e3).unwrap();
        let op = dc_operating_point(&c, DcOptions::default()).unwrap();
        // Current injected INTO "out": +1 V.
        assert!((op.voltage("out").unwrap() - 1.0).abs() < 1e-6);
    }
}
