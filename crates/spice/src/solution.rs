//! Analysis results and probes.

use crate::error::SpiceError;
use crate::netlist::{Circuit, ElementKind};
use crate::stamp::{mos_linearize, SystemLayout};
use ssn_waveform::Waveform;

/// The solution of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    pub(crate) circuit: Circuit,
    pub(crate) layout: SystemLayout,
    pub(crate) x: Vec<f64>,
}

impl DcSolution {
    /// The DC voltage of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for an unknown node name.
    pub fn voltage(&self, node: &str) -> Result<f64, SpiceError> {
        let id = self
            .circuit
            .find_node(node)
            .ok_or_else(|| SpiceError::UnknownProbe { name: node.into() })?;
        Ok(self.layout.voltage(&self.x, id))
    }

    /// The DC branch current of a voltage source or inductor.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] when `element` does not name a
    /// voltage source or inductor.
    pub fn branch_current(&self, element: &str) -> Result<f64, SpiceError> {
        let idx = element_index(&self.circuit, element)?;
        let bi = self
            .layout
            .branch_index(idx)
            .ok_or_else(|| SpiceError::UnknownProbe {
                name: element.into(),
            })?;
        Ok(self.x[bi])
    }
}

/// The sampled trajectory of a transient analysis.
#[derive(Debug, Clone)]
pub struct TranResult {
    pub(crate) circuit: Circuit,
    pub(crate) layout: SystemLayout,
    pub(crate) times: Vec<f64>,
    pub(crate) states: Vec<Vec<f64>>,
    pub(crate) newton_iterations: usize,
    pub(crate) rejected_steps: usize,
}

impl TranResult {
    /// Number of accepted timepoints.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no timepoints were stored (cannot happen for a
    /// successful analysis).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Total Newton iterations spent (performance metric).
    pub fn newton_iterations(&self) -> usize {
        self.newton_iterations
    }

    /// Steps rejected by the error controller (performance metric).
    pub fn rejected_steps(&self) -> usize {
        self.rejected_steps
    }

    /// The accepted sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The voltage waveform of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for an unknown node name.
    pub fn voltage(&self, node: &str) -> Result<Waveform, SpiceError> {
        let id = self
            .circuit
            .find_node(node)
            .ok_or_else(|| SpiceError::UnknownProbe { name: node.into() })?;
        let v: Vec<f64> = self
            .states
            .iter()
            .map(|x| self.layout.voltage(x, id))
            .collect();
        Ok(Waveform::new(self.times.clone(), v)?)
    }

    /// The branch-current waveform of a voltage source or inductor
    /// (positive current flows into the `+`/`a` terminal and out of the
    /// other).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] when `element` does not name a
    /// voltage source or inductor.
    pub fn branch_current(&self, element: &str) -> Result<Waveform, SpiceError> {
        let idx = element_index(&self.circuit, element)?;
        let bi = self
            .layout
            .branch_index(idx)
            .ok_or_else(|| SpiceError::UnknownProbe {
                name: element.into(),
            })?;
        let v: Vec<f64> = self.states.iter().map(|x| x[bi]).collect();
        Ok(Waveform::new(self.times.clone(), v)?)
    }

    /// The drain-terminal current waveform of a MOSFET, re-evaluated from
    /// the stored node voltages.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] when `element` does not name a
    /// MOSFET.
    pub fn mosfet_current(&self, element: &str) -> Result<Waveform, SpiceError> {
        let idx = element_index(&self.circuit, element)?;
        let ElementKind::Mosfet {
            polarity,
            d,
            g,
            s,
            b,
            model,
        } = self.circuit.elements()[idx].kind().clone()
        else {
            return Err(SpiceError::UnknownProbe {
                name: element.into(),
            });
        };
        let v: Vec<f64> = self
            .states
            .iter()
            .map(|x| {
                let vd = self.layout.voltage(x, d);
                let vg = self.layout.voltage(x, g);
                let vs = self.layout.voltage(x, s);
                let vb = self.layout.voltage(x, b);
                mos_linearize(model.as_ref(), polarity, vd, vg, vs, vb).i
            })
            .collect();
        Ok(Waveform::new(self.times.clone(), v)?)
    }

    /// The final state's voltage of `node` (convenience for settling
    /// checks).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for an unknown node name.
    pub fn final_voltage(&self, node: &str) -> Result<f64, SpiceError> {
        let id = self
            .circuit
            .find_node(node)
            .ok_or_else(|| SpiceError::UnknownProbe { name: node.into() })?;
        let last = self.states.last().expect("non-empty trajectory");
        Ok(self.layout.voltage(last, id))
    }
}

fn element_index(circuit: &Circuit, name: &str) -> Result<usize, SpiceError> {
    circuit
        .elements()
        .iter()
        .position(|e| e.name() == name)
        .or_else(|| {
            // SPICE tradition: element names are case-insensitive.
            circuit
                .elements()
                .iter()
                .position(|e| e.name().eq_ignore_ascii_case(name))
        })
        .ok_or_else(|| SpiceError::UnknownProbe { name: name.into() })
}
