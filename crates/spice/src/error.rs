//! Simulator error type.

use ssn_numeric::NumericError;
use ssn_waveform::WaveformError;
use std::error::Error;
use std::fmt;

/// Error produced by circuit construction or analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A node name was referenced that is structurally invalid (empty).
    InvalidNode {
        /// The offending name.
        name: String,
    },
    /// An element name was reused or is empty.
    InvalidElement {
        /// Human-readable description.
        context: String,
    },
    /// A probe referenced a node or element that does not exist in the
    /// analyzed circuit.
    UnknownProbe {
        /// The name that failed to resolve.
        name: String,
    },
    /// A component value was out of its physical domain (e.g. negative
    /// capacitance).
    InvalidValue {
        /// Human-readable description.
        context: String,
    },
    /// The Newton iteration failed to converge.
    NewtonDiverged {
        /// Simulation time at which convergence was lost (`None` for DC).
        time: Option<f64>,
        /// Iterations attempted.
        iterations: usize,
    },
    /// The adaptive timestep controller hit its minimum step.
    TimestepUnderflow {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The rejected step size.
        dt: f64,
    },
    /// A SPICE deck could not be parsed.
    Parse {
        /// 1-based line number in the deck.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A deck file (or one of its `.include`s) could not be read.
    DeckIo {
        /// The offending path.
        path: String,
        /// The underlying I/O error text.
        message: String,
    },
    /// The process-wide run deadline (see `ssn_numeric::cancel`) expired
    /// mid-analysis and the simulator stopped cooperatively. The partial
    /// trajectory is discarded; the caller decides whether this is a skip
    /// or a failure.
    Cancelled {
        /// Simulation time reached when the deadline was observed.
        time: f64,
    },
    /// A numeric kernel failed (singular MNA matrix, etc.).
    Numeric(NumericError),
    /// A probe waveform could not be constructed.
    Waveform(WaveformError),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidNode { name } => write!(f, "invalid node name {name:?}"),
            Self::InvalidElement { context } => write!(f, "invalid element: {context}"),
            Self::UnknownProbe { name } => write!(f, "unknown probe target {name:?}"),
            Self::InvalidValue { context } => write!(f, "invalid component value: {context}"),
            Self::NewtonDiverged { time, iterations } => match time {
                Some(t) => write!(
                    f,
                    "newton iteration diverged at t = {t:.4e} after {iterations} iterations"
                ),
                None => write!(
                    f,
                    "dc newton iteration diverged after {iterations} iterations"
                ),
            },
            Self::TimestepUnderflow { time, dt } => {
                write!(f, "timestep underflow at t = {time:.4e} (dt = {dt:.3e})")
            }
            Self::Parse { line, message } => write!(f, "deck parse error, line {line}: {message}"),
            Self::DeckIo { path, message } => {
                write!(f, "cannot read deck file {path:?}: {message}")
            }
            Self::Cancelled { time } => {
                write!(
                    f,
                    "transient cancelled: run deadline expired at t = {time:.4e}"
                )
            }
            Self::Numeric(e) => write!(f, "numeric failure: {e}"),
            Self::Waveform(e) => write!(f, "waveform failure: {e}"),
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Numeric(e) => Some(e),
            Self::Waveform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for SpiceError {
    fn from(e: NumericError) -> Self {
        Self::Numeric(e)
    }
}

impl From<WaveformError> for SpiceError {
    fn from(e: WaveformError) -> Self {
        Self::Waveform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SpiceError::InvalidNode { name: "".into() }
            .to_string()
            .contains("invalid node"));
        assert!(SpiceError::NewtonDiverged {
            time: Some(1e-9),
            iterations: 50
        }
        .to_string()
        .contains("1.0000e-9"));
        assert!(SpiceError::NewtonDiverged {
            time: None,
            iterations: 50
        }
        .to_string()
        .contains("dc"));
        assert!(SpiceError::TimestepUnderflow {
            time: 0.0,
            dt: 1e-20
        }
        .to_string()
        .contains("underflow"));
        let n: SpiceError = NumericError::argument("x").into();
        assert!(n.to_string().contains("numeric failure"));
        assert!(Error::source(&n).is_some());
    }
}
