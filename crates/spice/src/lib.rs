#![warn(missing_docs)]

//! A mini SPICE-class circuit simulator.
//!
//! `ssn-spice` is the suite's stand-in for HSPICE: a nonlinear
//! modified-nodal-analysis (MNA) simulator with
//!
//! * R, L, C, independent V/I sources (DC, pulse, PWL, sine), VCCS, and
//!   MOSFETs driven by any [`ssn_devices::MosModel`],
//! * Newton–Raphson per timestep with voltage-step limiting,
//! * DC operating point via gmin stepping,
//! * transient analysis with backward-Euler or trapezoidal companion
//!   models, source-breakpoint alignment and predictor-based adaptive
//!   timestep control,
//! * probes returning [`ssn_waveform::Waveform`]s.
//!
//! It is sized for the paper's workloads (tens of nodes, nanosecond
//! windows), not for general-purpose EDA — but within that envelope it is a
//! real simulator, validated against analytic RC/RLC responses and the
//! reference integrators in [`ssn_numeric::ode`].
//!
//! # Examples
//!
//! An RC low-pass step response:
//!
//! ```
//! use ssn_spice::{Circuit, SourceWave, TranOptions};
//!
//! # fn main() -> Result<(), ssn_spice::SpiceError> {
//! let mut c = Circuit::new();
//! c.vsource("vin", "in", "0", SourceWave::Dc(1.0))?;
//! c.resistor("r1", "in", "out", 1e3)?;
//! c.capacitor("c1", "out", "0", 1e-9)?;
//! let result = ssn_spice::transient(&c, TranOptions::to(5e-6))?;
//! let out = result.voltage("out")?;
//! // Settles to 1 V through the 1 us time constant.
//! assert!((out.sample(5e-6) - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod ac;
mod dc;
mod error;
mod linsolve;
mod netlist;
pub mod parser;
mod solution;
mod source;
mod stamp;
pub mod synth;
mod tran;
pub mod writer;

pub use ac::{ac_analysis, AcOptions, AcResult};
pub use dc::{dc_operating_point, DcOptions};
pub use error::SpiceError;
pub use netlist::{Circuit, ElementKind, NodeId, GROUND};
pub use solution::{DcSolution, TranResult};
pub use source::SourceWave;
pub use tran::{transient, IntegrationMethod, TranOptions};
