//! Independent source waveforms.

/// The time-dependent value of an independent voltage or current source.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWave {
    /// A constant value.
    Dc(f64),
    /// A SPICE-style pulse train.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time (0 becomes an effectively instant 1 fs ramp).
        rise: f64,
        /// Fall time (same convention as `rise`).
        fall: f64,
        /// Time spent at `v1`.
        width: f64,
        /// Repetition period (`0` = single pulse).
        period: f64,
    },
    /// Piecewise-linear points `(time, value)`; must be sorted by time.
    /// Holds the first value before the first point and the last value
    /// after the last point.
    Pwl(Vec<(f64, f64)>),
    /// A sine `offset + ampl * sin(2 pi freq (t - delay) + phase)`, zero
    /// before `delay`... starting from `offset` at `t = delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Start delay.
        delay: f64,
    },
}

impl SourceWave {
    /// A single rising ramp from `v0` to `v1` starting at `delay` with rise
    /// time `rise` — the canonical SSN driver input.
    pub fn ramp(v0: f64, v1: f64, delay: f64, rise: f64) -> Self {
        Self::Pwl(vec![(delay, v0), (delay + rise.max(1e-15), v1)])
    }

    /// The source value at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Self::Dc(v) => *v,
            Self::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                let cycle = rise + *width + fall;
                let local = if *period > 0.0 {
                    (t - delay) % period
                } else {
                    t - delay
                };
                if local < rise {
                    v0 + (v1 - v0) * local / rise
                } else if local < rise + width {
                    *v1
                } else if local < cycle {
                    v1 + (v0 - v1) * (local - rise - width) / fall
                } else {
                    *v0
                }
            }
            Self::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
            Self::Sine {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }

    /// Times in `[0, t_stop]` at which the waveform has slope corners; the
    /// transient engine aligns timesteps to these.
    pub fn breakpoints(&self, t_stop: f64) -> Vec<f64> {
        let mut out = Vec::new();
        match self {
            Self::Dc(_) => {}
            Self::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                let cycle = rise + *width + fall;
                let mut start = *delay;
                loop {
                    for c in [start, start + rise, start + rise + width, start + cycle] {
                        if c <= t_stop {
                            out.push(c);
                        }
                    }
                    if *period > 0.0 && start + period <= t_stop {
                        start += period;
                    } else {
                        break;
                    }
                }
            }
            Self::Pwl(points) => {
                out.extend(points.iter().map(|(t, _)| *t).filter(|t| *t <= t_stop));
            }
            Self::Sine { delay, .. } => {
                if *delay <= t_stop {
                    out.push(*delay);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let s = SourceWave::Dc(1.8);
        assert_eq!(s.value_at(0.0), 1.8);
        assert_eq!(s.value_at(1.0), 1.8);
        assert!(s.breakpoints(1.0).is_empty());
    }

    #[test]
    fn ramp_interpolates() {
        let s = SourceWave::ramp(0.0, 1.8, 1e-9, 0.5e-9);
        assert_eq!(s.value_at(0.0), 0.0);
        assert!((s.value_at(1.25e-9) - 0.9).abs() < 1e-12);
        assert_eq!(s.value_at(2e-9), 1.8);
        assert_eq!(s.breakpoints(3e-9).len(), 2);
    }

    #[test]
    fn pulse_single_shot() {
        let s = SourceWave::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 0.0,
        };
        assert_eq!(s.value_at(0.5), 0.0);
        assert!((s.value_at(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(s.value_at(3.0), 1.0);
        assert!((s.value_at(4.5) - 0.5).abs() < 1e-12);
        assert_eq!(s.value_at(6.0), 0.0);
    }

    #[test]
    fn pulse_periodic_repeats() {
        let s = SourceWave::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        assert!((s.value_at(0.2) - 1.0).abs() < 1e-12);
        assert!((s.value_at(1.2) - 1.0).abs() < 1e-12);
        assert!((s.value_at(2.7)).abs() < 1e-12);
        let bps = s.breakpoints(2.5);
        assert!(bps.len() >= 8);
    }

    #[test]
    fn pwl_holds_ends() {
        let s = SourceWave::Pwl(vec![(1.0, 0.0), (2.0, 1.0), (3.0, -1.0)]);
        assert_eq!(s.value_at(0.0), 0.0);
        assert!((s.value_at(1.5) - 0.5).abs() < 1e-12);
        assert!((s.value_at(2.5) - 0.0).abs() < 1e-12);
        assert_eq!(s.value_at(10.0), -1.0);
        assert_eq!(s.breakpoints(10.0).len(), 3);
        assert_eq!(SourceWave::Pwl(vec![]).value_at(1.0), 0.0);
    }

    #[test]
    fn sine_starts_at_delay() {
        let s = SourceWave::Sine {
            offset: 0.5,
            ampl: 1.0,
            freq: 1.0,
            delay: 1.0,
        };
        assert_eq!(s.value_at(0.0), 0.5);
        assert!((s.value_at(1.25) - 1.5).abs() < 1e-12);
        assert_eq!(s.breakpoints(2.0), vec![1.0]);
    }

    #[test]
    fn zero_rise_pulse_does_not_divide_by_zero() {
        let s = SourceWave::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 0.0,
        };
        assert!(s.value_at(0.5).is_finite());
        assert_eq!(s.value_at(0.5), 1.0);
    }
}
