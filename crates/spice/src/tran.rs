//! Transient analysis with adaptive timestep control.

use crate::dc::{dc_operating_point, newton_solve, DcOptions};
use crate::error::SpiceError;
use crate::linsolve::SolverWorkspace;
use crate::netlist::{Circuit, ElementKind};
use crate::solution::TranResult;
use crate::stamp::{AnalysisMode, CapState, PrevState, SystemLayout};

/// Companion-model integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// First-order, L-stable; heavily damped but never rings.
    BackwardEuler,
    /// Second-order, A-stable; the default, as in SPICE.
    #[default]
    Trapezoidal,
}

/// Options for [`transient`].
#[derive(Debug, Clone, PartialEq)]
pub struct TranOptions {
    /// Stop time (the analysis always starts at `t = 0`).
    pub t_stop: f64,
    /// Initial step size (`0` = `t_stop / 1000`).
    pub dt_init: f64,
    /// Minimum step before declaring failure (`0` = `t_stop * 1e-12`).
    pub dt_min: f64,
    /// Maximum step (`0` = `t_stop / 50`).
    pub dt_max: f64,
    /// Integration method.
    pub method: IntegrationMethod,
    /// Start from the circuit's initial conditions instead of a DC
    /// operating point (SPICE `UIC`).
    pub use_ic: bool,
    /// Newton options used inside every timestep.
    pub newton: DcOptions,
    /// Relative local-truncation tolerance for the step controller.
    pub lte_rel: f64,
    /// Absolute local-truncation tolerance (V or A).
    pub lte_abs: f64,
    /// Reuse matrix factorizations across Newton iterations and timesteps
    /// when the circuit is linear (bit-identical results; disable only to
    /// benchmark the factor-per-step path).
    pub reuse_factor: bool,
}

impl TranOptions {
    /// Sensible defaults for a window of `t_stop` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` is not positive and finite.
    pub fn to(t_stop: f64) -> Self {
        assert!(
            t_stop.is_finite() && t_stop > 0.0,
            "t_stop must be positive"
        );
        Self {
            t_stop,
            dt_init: 0.0,
            dt_min: 0.0,
            dt_max: 0.0,
            method: IntegrationMethod::Trapezoidal,
            use_ic: false,
            newton: DcOptions {
                max_newton: 50,
                ..DcOptions::default()
            },
            lte_rel: 0.01,
            lte_abs: 1e-4,
            reuse_factor: true,
        }
    }

    /// Builder-style: start from initial conditions (`UIC`).
    pub fn with_ic(mut self) -> Self {
        self.use_ic = true;
        self
    }

    /// Builder-style: select the integration method.
    pub fn with_method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    /// Builder-style: cap the maximum timestep.
    pub fn with_dt_max(mut self, dt_max: f64) -> Self {
        self.dt_max = dt_max;
        self
    }

    fn resolved(&self) -> (f64, f64, f64) {
        let dt_max = if self.dt_max > 0.0 {
            self.dt_max
        } else {
            self.t_stop / 50.0
        };
        let dt_init = if self.dt_init > 0.0 {
            self.dt_init.min(dt_max)
        } else {
            (self.t_stop / 1000.0).min(dt_max)
        };
        let dt_min = if self.dt_min > 0.0 {
            self.dt_min
        } else {
            self.t_stop * 1e-12
        };
        (dt_init, dt_min, dt_max)
    }
}

/// Builds the initial state (unknown vector + capacitor states).
fn initial_state(
    circuit: &Circuit,
    layout: &SystemLayout,
    opts: &TranOptions,
) -> Result<PrevState, SpiceError> {
    if opts.use_ic {
        let mut x = vec![0.0; layout.dim()];
        let mut pinned = vec![false; layout.dim()];
        for (&node, &v) in circuit.initial_voltages() {
            if let Some(i) = layout.node_index(node) {
                x[i] = v;
                pinned[i] = true;
            }
        }
        // A grounded capacitor with an explicit IC pins its free terminal
        // unless the user already set that node.
        for el in circuit.elements() {
            if let ElementKind::Capacitor {
                a, b, ic: Some(v0), ..
            } = el.kind()
            {
                match (layout.node_index(*a), layout.node_index(*b)) {
                    (Some(i), None) if !pinned[i] => x[i] = *v0,
                    (None, Some(j)) if !pinned[j] => x[j] = -*v0,
                    _ => {}
                }
            }
        }
        let mut caps = vec![CapState::default(); layout.n_caps];
        for (idx, el) in circuit.elements().iter().enumerate() {
            match el.kind() {
                ElementKind::Capacitor { a, b, ic, .. } => {
                    let slot = layout.cap_of[&idx];
                    caps[slot].v =
                        ic.unwrap_or_else(|| layout.voltage(&x, *a) - layout.voltage(&x, *b));
                    caps[slot].i = 0.0;
                }
                ElementKind::Inductor { ic, .. } => {
                    if let (Some(i0), Some(bi)) = (ic, layout.branch_index(idx)) {
                        x[bi] = *i0;
                    }
                }
                _ => {}
            }
        }
        Ok(PrevState { x, caps })
    } else {
        let op = dc_operating_point(circuit, opts.newton)?;
        let x = op.x;
        let mut caps = vec![CapState::default(); layout.n_caps];
        for (idx, el) in circuit.elements().iter().enumerate() {
            if let ElementKind::Capacitor { a, b, .. } = el.kind() {
                let slot = layout.cap_of[&idx];
                caps[slot].v = layout.voltage(&x, *a) - layout.voltage(&x, *b);
                caps[slot].i = 0.0;
            }
        }
        Ok(PrevState { x, caps })
    }
}

/// Updates capacitor companion states after an accepted step.
fn update_cap_states(
    circuit: &Circuit,
    layout: &SystemLayout,
    x_new: &[f64],
    dt: f64,
    method: IntegrationMethod,
    caps: &mut [CapState],
) {
    for (idx, el) in circuit.elements().iter().enumerate() {
        if let ElementKind::Capacitor { a, b, farads, .. } = el.kind() {
            let slot = layout.cap_of[&idx];
            let v_new = layout.voltage(x_new, *a) - layout.voltage(x_new, *b);
            let state = &mut caps[slot];
            state.i = match method {
                IntegrationMethod::BackwardEuler => farads * (v_new - state.v) / dt,
                IntegrationMethod::Trapezoidal => 2.0 * farads * (v_new - state.v) / dt - state.i,
            };
            state.v = v_new;
        }
    }
}

/// Collects and sorts source breakpoints in `(0, t_stop]`.
fn breakpoints(circuit: &Circuit, t_stop: f64) -> Vec<f64> {
    let mut bps: Vec<f64> = Vec::new();
    for el in circuit.elements() {
        let wave = match el.kind() {
            ElementKind::VSource { wave, .. } | ElementKind::ISource { wave, .. } => wave,
            _ => continue,
        };
        bps.extend(
            wave.breakpoints(t_stop)
                .into_iter()
                .filter(|&t| t > 0.0 && t <= t_stop),
        );
    }
    bps.push(t_stop);
    bps.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    bps.dedup_by(|a, b| (*a - *b).abs() < t_stop * 1e-12);
    bps
}

/// Runs a transient analysis of `circuit` over `[0, opts.t_stop]`.
///
/// # Errors
///
/// * [`SpiceError::NewtonDiverged`] when a timestep cannot be converged
///   even at the minimum step size,
/// * [`SpiceError::TimestepUnderflow`] when the error controller drives the
///   step below `dt_min`,
/// * errors from the initial DC operating point when `use_ic` is off.
pub fn transient(circuit: &Circuit, opts: TranOptions) -> Result<TranResult, SpiceError> {
    let _span = ssn_telemetry::span("spice.tran");
    let layout = SystemLayout::new(circuit);
    let (dt_init, dt_min, dt_max) = opts.resolved();
    let bps = breakpoints(circuit, opts.t_stop);
    let mut ws = SolverWorkspace::new(
        circuit,
        &layout,
        opts.newton.sparse_dim_threshold,
        opts.reuse_factor,
    )?;

    let mut prev = initial_state(circuit, &layout, &opts)?;
    let mut times = vec![0.0];
    let mut states = vec![prev.x.clone()];

    let mut t = 0.0f64;
    let mut dt = dt_init;
    let mut bp_cursor = 0usize;
    // Force a damped first-order step right after t = 0 and after every
    // breakpoint corner.
    let mut post_discontinuity = true;
    // For the LTE predictor.
    let mut hist: Option<(Vec<f64>, f64)> = None; // (x at t-2, dt of last step)
    let mut total_newton = 0usize;
    let mut rejected = 0usize;

    while t < opts.t_stop * (1.0 - 1e-12) {
        if ssn_numeric::cancel::deadline_exceeded() {
            return Err(SpiceError::Cancelled { time: t });
        }
        // Align to the next breakpoint.
        while bp_cursor < bps.len() && bps[bp_cursor] <= t * (1.0 + 1e-12) {
            bp_cursor += 1;
        }
        let next_bp = bps.get(bp_cursor).copied().unwrap_or(opts.t_stop);
        let mut landed_on_bp = false;
        let mut dt_eff = dt.min(dt_max);
        if t + dt_eff >= next_bp * (1.0 - 1e-12) {
            dt_eff = next_bp - t;
            landed_on_bp = true;
        }
        if dt_eff < dt_min {
            // A breakpoint collision can legitimately produce a tiny final
            // sliver; only fail when the controller itself shrank dt.
            if !landed_on_bp {
                return Err(SpiceError::TimestepUnderflow {
                    time: t,
                    dt: dt_eff,
                });
            }
        }

        let method = if post_discontinuity {
            IntegrationMethod::BackwardEuler
        } else {
            opts.method
        };
        let t_new = t + dt_eff;
        let mode = AnalysisMode::Tran {
            t: t_new,
            dt: dt_eff,
            method,
            prev: &prev,
        };
        match newton_solve(
            circuit,
            &layout,
            &mode,
            prev.x.clone(),
            &opts.newton,
            &mut ws,
        ) {
            Ok((x_new, iters)) => {
                total_newton += iters;
                // Local-truncation estimate via the linear predictor.
                if !post_discontinuity {
                    if let Some((x_old, dt_old)) = &hist {
                        let ratio = dt_eff / dt_old;
                        let mut err = 0.0f64;
                        let mut scale = 0.0f64;
                        for i in 0..layout.n_nodes - 1 {
                            let pred = prev.x[i] + (prev.x[i] - x_old[i]) * ratio;
                            err = err.max((x_new[i] - pred).abs());
                            scale = scale.max(x_new[i].abs());
                        }
                        let tol = opts.lte_abs + opts.lte_rel * scale;
                        if err > 4.0 * tol && dt_eff > dt_min * 4.0 {
                            // Reject and retry with a smaller step.
                            rejected += 1;
                            dt = (dt_eff * 0.5).max(dt_min);
                            continue;
                        }
                        // Grow or shrink the next step towards the target.
                        let factor = if err > 0.0 {
                            (0.9 * (tol / err).sqrt()).clamp(0.3, 2.0)
                        } else {
                            2.0
                        };
                        dt = (dt_eff * factor).clamp(dt_min, dt_max);
                    } else {
                        dt = (dt_eff * 1.5).clamp(dt_min, dt_max);
                    }
                } else {
                    dt = (dt_eff * 1.2).clamp(dt_min, dt_max);
                }
                // Newton-effort feedback.
                if iters > opts.newton.max_newton / 2 {
                    dt = (dt * 0.5).max(dt_min);
                }

                update_cap_states(circuit, &layout, &x_new, dt_eff, method, &mut prev.caps);
                hist = Some((prev.x.clone(), dt_eff));
                prev.x = x_new;
                t = t_new;
                times.push(t);
                states.push(prev.x.clone());
                post_discontinuity = landed_on_bp && t < opts.t_stop * (1.0 - 1e-12);
                if post_discontinuity {
                    hist = None;
                    dt = (dt_eff.min(dt_init)).max(dt_min);
                }
            }
            Err(_) if dt_eff > dt_min * 2.0 => {
                rejected += 1;
                dt = (dt_eff * 0.25).max(dt_min);
            }
            Err(e) => return Err(e),
        }
    }

    ssn_telemetry::add("spice.tran.steps", times.len() as u64);
    ssn_telemetry::add("spice.tran.newton_iters", total_newton as u64);
    ssn_telemetry::add("spice.tran.rejected_steps", rejected as u64);
    Ok(TranResult {
        circuit: circuit.clone(),
        layout,
        times,
        states,
        newton_iterations: total_newton,
        rejected_steps: rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;
    use ssn_devices::{AlphaPower, MosPolarity};
    use std::sync::Arc;

    #[test]
    fn rc_step_response_matches_analytic() {
        // 1k / 1n: tau = 1 us. Step at t = 0 via DC source + use_ic at 0.
        let mut c = Circuit::new();
        c.vsource("vin", "in", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "in", "out", 1e3).unwrap();
        c.capacitor_with_ic("c1", "out", "0", 1e-9, 0.0).unwrap();
        let res = transient(&c, TranOptions::to(5e-6).with_ic()).unwrap();
        let out = res.voltage("out").unwrap();
        for frac in [0.5, 1.0, 2.0, 4.0] {
            let t = frac * 1e-6;
            let exact = 1.0 - (-t / 1e-6_f64).exp();
            assert!(
                (out.sample(t) - exact).abs() < 5e-3,
                "t = {t}: {} vs {exact}",
                out.sample(t)
            );
        }
    }

    #[test]
    fn rc_from_dc_operating_point_is_flat() {
        // Starting from the DC op, nothing should move.
        let mut c = Circuit::new();
        c.vsource("vin", "in", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "in", "out", 1e3).unwrap();
        c.capacitor("c1", "out", "0", 1e-9).unwrap();
        let res = transient(&c, TranOptions::to(1e-6)).unwrap();
        let out = res.voltage("out").unwrap();
        assert!(out.values().iter().all(|v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn rl_current_ramp() {
        // V across L: i = V t / L.
        let mut c = Circuit::new();
        c.vsource("v1", "a", "0", SourceWave::Dc(1.0)).unwrap();
        c.inductor("l1", "a", "b", 1e-6).unwrap();
        c.resistor("r1", "b", "0", 1e-3).unwrap(); // nearly a short
        let res = transient(&c, TranOptions::to(1e-6).with_ic()).unwrap();
        let i = res.branch_current("l1").unwrap();
        let expect = 1.0 * 0.5e-6 / 1e-6;
        assert!(
            (i.sample(0.5e-6) - expect).abs() / expect < 0.02,
            "i = {}",
            i.sample(0.5e-6)
        );
    }

    #[test]
    fn series_rlc_underdamped_ringing() {
        // L = 1 uH, C = 1 nF, R = 10: underdamped (Q ~ 3.2).
        // Step response peak overshoot = 1 + exp(-pi zeta / sqrt(1-zeta^2)).
        let mut c = Circuit::new();
        c.vsource("v1", "in", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "in", "n1", 10.0).unwrap();
        c.inductor("l1", "n1", "n2", 1e-6).unwrap();
        c.capacitor_with_ic("c1", "n2", "0", 1e-9, 0.0).unwrap();
        let opts = TranOptions {
            lte_rel: 0.002,
            ..TranOptions::to(8e-6).with_ic()
        };
        let res = transient(&c, opts).unwrap();
        let out = res.voltage("n2").unwrap();
        let zeta = 10.0 / 2.0 * (1e-9f64 / 1e-6).sqrt(); // R/2 sqrt(C/L)
        let overshoot = 1.0 + (-std::f64::consts::PI * zeta / (1.0 - zeta * zeta).sqrt()).exp();
        let peak = out.peak();
        assert!(
            (peak.value - overshoot).abs() < 0.03,
            "peak {} vs {overshoot}",
            peak.value
        );
        // Peak time = pi / omega_d.
        let w0 = 1.0 / (1e-6f64 * 1e-9).sqrt();
        let wd = w0 * (1.0 - zeta * zeta).sqrt();
        let tp = std::f64::consts::PI / wd;
        assert!(
            (peak.time - tp).abs() / tp < 0.05,
            "tp {} vs {tp}",
            peak.time
        );
    }

    #[test]
    fn pwl_ramp_breakpoints_are_honoured() {
        let mut c = Circuit::new();
        c.vsource("vin", "in", "0", SourceWave::ramp(0.0, 1.8, 1e-9, 0.5e-9))
            .unwrap();
        c.resistor("r1", "in", "out", 100.0).unwrap();
        c.capacitor_with_ic("c1", "out", "0", 1e-13, 0.0).unwrap();
        let res = transient(&c, TranOptions::to(3e-9).with_ic()).unwrap();
        // Breakpoint times should be sampled exactly.
        assert!(res.times().iter().any(|&t| (t - 1e-9).abs() < 1e-21));
        assert!(res.times().iter().any(|&t| (t - 1.5e-9).abs() < 1e-21));
        let inw = res.voltage("in").unwrap();
        assert!((inw.sample(1.25e-9) - 0.9).abs() < 1e-6);
        assert!((inw.sample(3e-9) - 1.8).abs() < 1e-9);
    }

    #[test]
    fn cmos_inverter_switches_dynamically() {
        let n = Arc::new(AlphaPower::builder().build());
        let p = Arc::new(AlphaPower::builder().build());
        let mut c = Circuit::new();
        c.vsource("vdd", "vdd", "0", SourceWave::Dc(1.8)).unwrap();
        c.vsource("vin", "g", "0", SourceWave::ramp(0.0, 1.8, 0.2e-9, 0.2e-9))
            .unwrap();
        c.mosfet("mp", MosPolarity::Pmos, "out", "g", "vdd", "vdd", p)
            .unwrap();
        c.mosfet("mn", MosPolarity::Nmos, "out", "g", "0", "0", n)
            .unwrap();
        c.capacitor("cl", "out", "0", 50e-15).unwrap();
        let res = transient(&c, TranOptions::to(2e-9)).unwrap();
        let out = res.voltage("out").unwrap();
        // Starts at vdd, ends at 0.
        assert!((out.sample(0.0) - 1.8).abs() < 1e-2);
        assert!(out.sample(2e-9) < 0.02, "final {}", out.sample(2e-9));
        // The NMOS sank the load charge.
        let imn = res.mosfet_current("mn").unwrap();
        assert!(imn.peak().value > 1e-3);
    }

    #[test]
    fn trapezoidal_and_backward_euler_agree() {
        let build = || {
            let mut c = Circuit::new();
            c.vsource("vin", "in", "0", SourceWave::ramp(0.0, 1.0, 0.0, 1e-7))
                .unwrap();
            c.resistor("r1", "in", "out", 1e3).unwrap();
            c.capacitor_with_ic("c1", "out", "0", 1e-11, 0.0).unwrap();
            c
        };
        let tight = |method| TranOptions {
            lte_rel: 0.001,
            lte_abs: 1e-5,
            ..TranOptions::to(1e-6).with_ic().with_method(method)
        };
        let a = transient(&build(), tight(IntegrationMethod::Trapezoidal)).unwrap();
        let b = transient(&build(), tight(IntegrationMethod::BackwardEuler)).unwrap();
        let wa = a.voltage("out").unwrap();
        let wb = b.voltage("out").unwrap();
        let err = wa.max_abs_error(&wb).unwrap();
        assert!(err < 2e-2, "methods disagree by {err}");
    }

    #[test]
    fn probe_errors() {
        let mut c = Circuit::new();
        c.vsource("v1", "a", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "a", "0", 1e3).unwrap();
        let res = transient(&c, TranOptions::to(1e-9).with_ic()).unwrap();
        assert!(res.voltage("zz").is_err());
        assert!(res.branch_current("r1").is_err());
        assert!(res.mosfet_current("v1").is_err());
        assert!(!res.is_empty());
        assert!(res.len() >= 2);
        assert!(res.newton_iterations() > 0);
        let _ = res.rejected_steps();
        assert!((res.final_voltage("a").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "t_stop must be positive")]
    fn options_validate_t_stop() {
        let _ = TranOptions::to(0.0);
    }

    #[test]
    fn periodic_pulse_corners_are_all_sampled() {
        let mut c = Circuit::new();
        c.vsource(
            "vin",
            "in",
            "0",
            SourceWave::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-9,
                rise: 0.2e-9,
                fall: 0.2e-9,
                width: 1e-9,
                period: 3e-9,
            },
        )
        .unwrap();
        c.resistor("r1", "in", "0", 1e3).unwrap();
        let res = transient(&c, TranOptions::to(7e-9).with_ic()).unwrap();
        // Every pulse corner in the window must be an exact sample.
        for corner in [1e-9, 1.2e-9, 2.2e-9, 2.4e-9, 4e-9, 4.2e-9, 5.2e-9, 5.4e-9] {
            assert!(
                res.times().iter().any(|&t| (t - corner).abs() < 1e-20),
                "corner {corner:e} missed"
            );
        }
        // And the resistive node follows the source exactly at a corner.
        let vin = res.voltage("in").unwrap();
        assert!((vin.sample(2.2e-9) - 1.0).abs() < 1e-9);
        assert!((vin.sample(2.4e-9)).abs() < 1e-9);
    }

    #[test]
    fn dt_max_is_honoured() {
        let mut c = Circuit::new();
        c.vsource("v1", "a", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "a", "0", 1e3).unwrap();
        let res = transient(&c, TranOptions::to(1e-6).with_ic().with_dt_max(1e-8)).unwrap();
        let worst = res
            .times()
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0f64, f64::max);
        assert!(worst <= 1e-8 * 1.001, "step {worst:e} exceeded dt_max");
        assert!(res.len() >= 100);
    }

    #[test]
    fn rejected_steps_are_counted_on_stiff_transitions() {
        // A sharp pulse into an RC with a long window forces the LTE
        // controller to reject at least occasionally while re-expanding
        // between edges.
        let mut c = Circuit::new();
        c.vsource(
            "vin",
            "in",
            "0",
            SourceWave::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 10e-9,
                rise: 1e-12,
                fall: 1e-12,
                width: 10e-9,
                period: 0.0,
            },
        )
        .unwrap();
        c.resistor("r1", "in", "out", 100.0).unwrap();
        c.capacitor_with_ic("c1", "out", "0", 1e-12, 0.0).unwrap();
        let res = transient(&c, TranOptions::to(100e-9).with_ic()).unwrap();
        let out = res.voltage("out").unwrap();
        // The pulse got through and settled back.
        assert!(out.peak().value > 0.99);
        assert!(out.sample(100e-9).abs() < 1e-3);
    }
}
