//! Programmatic synthesis of the linearized SSN equivalent circuit.
//!
//! The differential oracle in `ssn-core` needs a netlist that solves
//! *exactly* the ODE behind the paper's closed forms, so that any
//! disagreement is attributable to the closed-form derivation or the
//! integrator — never to device-model mismatch. During the conduction
//! window the bank of `N` identical drivers linearizes to a single
//! transconductance
//!
//! ```text
//! i(t) = N K (v_in(t) - V_0 - sigma * V_n(t))
//! ```
//!
//! With the turn-on clamp folded into the source, the drive becomes the
//! *excess gate voltage* `u(t) = max(0, s t - V_0)` — literally the
//! substitution `t' = t - V_0/s` the paper applies in Eqns. 6 and 13. The
//! synthesized PWL therefore holds `0` until the conduction start
//! `t0 = V_0/s` and ramps to `V_dd - V_0` at `t_r`, putting the netlist on
//! the same time origin as the closed forms (peak-time comparisons are
//! apples-to-apples). After `t_r` the PWL holds `V_dd - V_0`, which matches
//! the saturated input `v_in = V_dd` exactly.
//!
//! Circuit (all values plain SI floats; the caller owns unit handling):
//!
//! ```text
//!   ctrl --(vctrl: PWL u(t))         gdrv: i = gm * v(ctrl) into ng
//!                                    rfb:  R = 1 / (gm * sigma)  ng -> gnd
//!   ng  --- lg (L, ic 0) --- gnd     [cg (C, ic 0) when C > 0]
//! ```
//!
//! The feedback term `-gm * sigma * V_n` is realized as the resistor `rfb`
//! (a conductance `gm * sigma` to ground), and the drive as a VCCS sensing
//! the `ctrl` node. The resulting MNA system is linear and tiny (dimension
//! 4–5 regardless of `N`), so corpus-scale sweeps stay fast: `N` enters
//! only through `gm = N K`.
//!
//! Note the deliberate difference from `ssn_core::bridge`: the bridge
//! simulates the *nonlinear golden device* (the paper's HSPICE role), while
//! this module synthesizes the *linearized model circuit* (the paper's
//! Eqn. 13 verbatim, without the conduction clamp). The closed forms solve
//! exactly this linear system, which is what makes tight differential
//! error budgets meaningful.

use crate::error::SpiceError;
use crate::netlist::Circuit;
use crate::parser::TranDirective;
use crate::source::SourceWave;
use crate::tran::TranOptions;

/// The node carrying the synthesized ground bounce `V_n(t)`.
pub const SSN_BOUNCE_NODE: &str = "ng";

/// Parameters of the linearized SSN equivalent circuit (plain SI units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsnSynthParams {
    /// Total bank transconductance `gm = N K` (A/V).
    pub bank_gm: f64,
    /// ASDM source-sensitivity factor `sigma` (dimensionless, >= 1).
    pub sigma: f64,
    /// ASDM displacement voltage `V_0` (V); must satisfy `0 <= V_0 < V_dd`.
    pub v0: f64,
    /// Supply voltage `V_dd` (V).
    pub vdd: f64,
    /// Ground-path inductance `L` (H).
    pub inductance: f64,
    /// Ground-path capacitance `C` (F); `0` synthesizes the L-only circuit.
    pub capacitance: f64,
    /// Input rise time `t_r` (s).
    pub rise_time: f64,
}

impl SsnSynthParams {
    /// The conduction-start time `t0 = V_0 / s = V_0 t_r / V_dd`.
    pub fn conduction_start(&self) -> f64 {
        self.v0 * self.rise_time / self.vdd
    }

    /// The asymptote `V_inf = L * gm * s` every damping case relaxes
    /// towards — the natural voltage scale of the synthesized circuit.
    pub fn v_inf(&self) -> f64 {
        self.inductance * self.bank_gm * self.vdd / self.rise_time
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] naming the first offending
    /// field: non-positive or non-finite `gm`, `sigma < 1`, `L <= 0`,
    /// `C < 0`, `t_r <= 0`, `V_dd <= 0`, or `V_0` outside `[0, V_dd)`.
    /// The `!(x > 0.0)` form rejects NaN by the same branch.
    pub fn validate(&self) -> Result<(), SpiceError> {
        let bad = |context: String| Err(SpiceError::InvalidValue { context });
        if !(self.bank_gm > 0.0) || !self.bank_gm.is_finite() {
            return bad(format!(
                "bank gm must be positive and finite, got {}",
                self.bank_gm
            ));
        }
        if !(self.sigma >= 1.0) || !self.sigma.is_finite() {
            return bad(format!(
                "sigma must be at least 1 and finite, got {}",
                self.sigma
            ));
        }
        if !(self.inductance > 0.0) || !self.inductance.is_finite() {
            return bad(format!(
                "inductance must be positive and finite, got {}",
                self.inductance
            ));
        }
        if !(self.capacitance >= 0.0) || !self.capacitance.is_finite() {
            return bad(format!(
                "capacitance must be non-negative and finite, got {}",
                self.capacitance
            ));
        }
        if !(self.rise_time > 0.0) || !self.rise_time.is_finite() {
            return bad(format!(
                "rise time must be positive and finite, got {}",
                self.rise_time
            ));
        }
        if !(self.vdd > 0.0) || !self.vdd.is_finite() {
            return bad(format!("Vdd must be positive and finite, got {}", self.vdd));
        }
        if !(self.v0 >= 0.0) || !(self.v0 < self.vdd) {
            return bad(format!(
                "V0 must lie in [0, Vdd), got {} with Vdd {}",
                self.v0, self.vdd
            ));
        }
        Ok(())
    }

    /// The excess-gate-voltage source `u(t) = max(0, s t - V_0)` as a PWL:
    /// `0` until `t0`, then a ramp to `V_dd - V_0` at `t_r` (held after).
    ///
    /// The explicit `t0` breakpoint is the whole point: it encodes the
    /// paper's `t' = t - V_0/s` time shift in the netlist itself, and hands
    /// the transient engine an exact breakpoint at the conduction start.
    fn control_wave(&self) -> SourceWave {
        let t0 = self.conduction_start();
        let u_end = self.vdd - self.v0;
        // A degenerate zero-length first segment (v0 == 0) would duplicate
        // the t = 0 point; two points suffice then.
        if t0 > 0.0 {
            SourceWave::Pwl(vec![(0.0, 0.0), (t0, 0.0), (self.rise_time, u_end)])
        } else {
            SourceWave::Pwl(vec![(0.0, 0.0), (self.rise_time, u_end)])
        }
    }
}

/// Builds the linearized SSN equivalent circuit.
///
/// The ground bounce appears on node [`SSN_BOUNCE_NODE`]. All initial
/// conditions are zero (quiet rail before the ramp), so the circuit is
/// meant for a `UIC` transient over `[0, t_r]` — see
/// [`ssn_tran_options`].
///
/// # Errors
///
/// Returns [`SpiceError::InvalidValue`] for parameters that fail
/// [`SsnSynthParams::validate`]; construction itself cannot fail after
/// validation.
pub fn ssn_equivalent_circuit(p: &SsnSynthParams) -> Result<Circuit, SpiceError> {
    p.validate()?;
    let mut c = Circuit::new();
    c.vsource("vctrl", "ctrl", "0", p.control_wave())?;
    // Drive: i = gm * u(t) injected INTO ng (current flows out_p -> out_n
    // through a VCCS, so ng is the out_n terminal).
    c.vccs("gdrv", "0", SSN_BOUNCE_NODE, "ctrl", "0", p.bank_gm)?;
    // Feedback: the -gm * sigma * Vn term is a conductance to ground.
    c.resistor("rfb", SSN_BOUNCE_NODE, "0", 1.0 / (p.bank_gm * p.sigma))?;
    c.inductor_with_ic("lg", SSN_BOUNCE_NODE, "0", p.inductance, 0.0)?;
    if p.capacitance > 0.0 {
        c.capacitor_with_ic("cg", SSN_BOUNCE_NODE, "0", p.capacitance, 0.0)?;
    }
    c.set_initial_voltage(SSN_BOUNCE_NODE, 0.0)?;
    c.set_initial_voltage("ctrl", 0.0)?;
    Ok(c)
}

/// Transient options tuned for differential comparison over `[0, t_r]`.
///
/// The step cap resolves the fastest feature the closed forms predict
/// (first ring peaks land at `>= pi/omega0` after `t0`), and the LTE
/// budget is tied to the circuit's own voltage scale `V_inf` so relative
/// accuracy is uniform across the huge dynamic range a corpus sweep
/// visits (microvolts to hundreds of volts).
pub fn ssn_tran_options(p: &SsnSynthParams) -> TranOptions {
    TranOptions {
        lte_rel: 2e-4,
        lte_abs: (p.v_inf().abs() * 1e-6).max(1e-15),
        ..TranOptions::to(p.rise_time)
            .with_ic()
            .with_dt_max(p.rise_time / 200.0)
    }
}

/// The `.tran` directive matching [`ssn_tran_options`], for serializing a
/// self-contained deck with [`crate::writer::write_deck`].
pub fn ssn_tran_directive(p: &SsnSynthParams) -> TranDirective {
    TranDirective {
        tstep: p.rise_time / 200.0,
        tstop: p.rise_time,
        uic: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tran::transient;

    fn nominal() -> SsnSynthParams {
        // The paper's reference point: N = 8, K = 7.5 mS, sigma = 1.25,
        // V0 = 0.6 V, L = 5 nH, C = 1 pF, Vdd = 1.8 V, tr = 0.5 ns.
        SsnSynthParams {
            bank_gm: 8.0 * 7.5e-3,
            sigma: 1.25,
            v0: 0.6,
            vdd: 1.8,
            inductance: 5e-9,
            capacitance: 1e-12,
            rise_time: 0.5e-9,
        }
    }

    #[test]
    fn control_wave_encodes_the_conduction_start() {
        let p = nominal();
        let t0 = p.conduction_start();
        assert!((t0 - 0.6 * 0.5e-9 / 1.8).abs() < 1e-24);
        match p.control_wave() {
            SourceWave::Pwl(points) => {
                assert_eq!(points.len(), 3);
                assert_eq!(points[0], (0.0, 0.0));
                assert_eq!(points[1], (t0, 0.0));
                assert_eq!(points[2], (p.rise_time, p.vdd - p.v0));
            }
            other => panic!("expected PWL, got {other:?}"),
        }
        // v0 = 0: the degenerate first segment is dropped.
        let z = SsnSynthParams { v0: 0.0, ..p };
        match z.control_wave() {
            SourceWave::Pwl(points) => assert_eq!(points.len(), 2),
            other => panic!("expected PWL, got {other:?}"),
        }
    }

    #[test]
    fn circuit_structure_and_c_zero_variant() {
        let c = ssn_equivalent_circuit(&nominal()).unwrap();
        assert!(c.find_element("gdrv").is_some());
        assert!(c.find_element("rfb").is_some());
        assert!(c.find_element("lg").is_some());
        assert!(c.find_element("cg").is_some());
        assert!(c.find_node(SSN_BOUNCE_NODE).is_some());
        let l_only = SsnSynthParams {
            capacitance: 0.0,
            ..nominal()
        };
        let c = ssn_equivalent_circuit(&l_only).unwrap();
        assert!(c.find_element("cg").is_none());
    }

    #[test]
    fn bounce_is_quiet_before_conduction_and_active_after() {
        let p = nominal();
        let result = transient(&ssn_equivalent_circuit(&p).unwrap(), ssn_tran_options(&p)).unwrap();
        let vn = result.voltage(SSN_BOUNCE_NODE).unwrap();
        let t0 = p.conduction_start();
        // Dead flat before the excess voltage appears ...
        assert!(vn.sample(0.5 * t0).abs() < 1e-12 * p.v_inf());
        // ... and a substantial bounce by the end of the ramp.
        assert!(vn.sample(p.rise_time) > 0.1 * p.v_inf());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let p = nominal();
        let cases = [
            SsnSynthParams { bank_gm: 0.0, ..p },
            SsnSynthParams {
                bank_gm: f64::NAN,
                ..p
            },
            SsnSynthParams { sigma: 0.5, ..p },
            SsnSynthParams {
                inductance: -1e-9,
                ..p
            },
            SsnSynthParams {
                capacitance: -1e-12,
                ..p
            },
            SsnSynthParams {
                rise_time: 0.0,
                ..p
            },
            SsnSynthParams { vdd: 0.0, ..p },
            SsnSynthParams { v0: -0.1, ..p },
            SsnSynthParams { v0: 1.8, ..p },
        ];
        for bad in cases {
            assert!(
                matches!(
                    ssn_equivalent_circuit(&bad),
                    Err(SpiceError::InvalidValue { .. })
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn deck_round_trips_through_the_parser() {
        use crate::parser::parse_deck;
        use crate::writer::write_deck;
        let p = nominal();
        let circuit = ssn_equivalent_circuit(&p).unwrap();
        let text = write_deck(&circuit, "ssn equivalent", Some(ssn_tran_directive(&p))).unwrap();
        let deck = parse_deck(&text).unwrap();
        let tran = deck.tran.expect("directive survives");
        assert!((tran.tstop - p.rise_time).abs() < 1e-21);
        assert!(tran.uic);
        // Both circuits produce the same bounce.
        let a = transient(&circuit, ssn_tran_options(&p)).unwrap();
        let b = transient(&deck.circuit, ssn_tran_options(&p)).unwrap();
        let pa = a.voltage(SSN_BOUNCE_NODE).unwrap().peak();
        let pb = b.voltage(SSN_BOUNCE_NODE).unwrap().peak();
        assert!(
            (pa.value - pb.value).abs() <= 1e-9 * pa.value.abs(),
            "{} vs {}",
            pa.value,
            pb.value
        );
    }
}
