//! Programmatic synthesis of the linearized SSN equivalent circuit.
//!
//! The differential oracle in `ssn-core` needs a netlist that solves
//! *exactly* the ODE behind the paper's closed forms, so that any
//! disagreement is attributable to the closed-form derivation or the
//! integrator — never to device-model mismatch. During the conduction
//! window the bank of `N` identical drivers linearizes to a single
//! transconductance
//!
//! ```text
//! i(t) = N K (v_in(t) - V_0 - sigma * V_n(t))
//! ```
//!
//! With the turn-on clamp folded into the source, the drive becomes the
//! *excess gate voltage* `u(t) = max(0, s t - V_0)` — literally the
//! substitution `t' = t - V_0/s` the paper applies in Eqns. 6 and 13. The
//! synthesized PWL therefore holds `0` until the conduction start
//! `t0 = V_0/s` and ramps to `V_dd - V_0` at `t_r`, putting the netlist on
//! the same time origin as the closed forms (peak-time comparisons are
//! apples-to-apples). After `t_r` the PWL holds `V_dd - V_0`, which matches
//! the saturated input `v_in = V_dd` exactly.
//!
//! Circuit (all values plain SI floats; the caller owns unit handling):
//!
//! ```text
//!   ctrl --(vctrl: PWL u(t))         gdrv: i = gm * v(ctrl) into ng
//!                                    rfb:  R = 1 / (gm * sigma)  ng -> gnd
//!   ng  --- lg (L, ic 0) --- gnd     [cg (C, ic 0) when C > 0]
//! ```
//!
//! The feedback term `-gm * sigma * V_n` is realized as the resistor `rfb`
//! (a conductance `gm * sigma` to ground), and the drive as a VCCS sensing
//! the `ctrl` node. The resulting MNA system is linear and tiny (dimension
//! 4–5 regardless of `N`), so corpus-scale sweeps stay fast: `N` enters
//! only through `gm = N K`.
//!
//! Note the deliberate difference from `ssn_core::bridge`: the bridge
//! simulates the *nonlinear golden device* (the paper's HSPICE role), while
//! this module synthesizes the *linearized model circuit* (the paper's
//! Eqn. 13 verbatim, without the conduction clamp). The closed forms solve
//! exactly this linear system, which is what makes tight differential
//! error budgets meaningful.

use crate::error::SpiceError;
use crate::netlist::Circuit;
use crate::parser::TranDirective;
use crate::source::SourceWave;
use crate::tran::TranOptions;

/// The node carrying the synthesized ground bounce `V_n(t)`.
pub const SSN_BOUNCE_NODE: &str = "ng";

/// Parameters of the linearized SSN equivalent circuit (plain SI units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsnSynthParams {
    /// Total bank transconductance `gm = N K` (A/V).
    pub bank_gm: f64,
    /// ASDM source-sensitivity factor `sigma` (dimensionless, >= 1).
    pub sigma: f64,
    /// ASDM displacement voltage `V_0` (V); must satisfy `0 <= V_0 < V_dd`.
    pub v0: f64,
    /// Supply voltage `V_dd` (V).
    pub vdd: f64,
    /// Ground-path inductance `L` (H).
    pub inductance: f64,
    /// Ground-path capacitance `C` (F); `0` synthesizes the L-only circuit.
    pub capacitance: f64,
    /// Input rise time `t_r` (s).
    pub rise_time: f64,
}

impl SsnSynthParams {
    /// The conduction-start time `t0 = V_0 / s = V_0 t_r / V_dd`.
    pub fn conduction_start(&self) -> f64 {
        self.v0 * self.rise_time / self.vdd
    }

    /// The asymptote `V_inf = L * gm * s` every damping case relaxes
    /// towards — the natural voltage scale of the synthesized circuit.
    pub fn v_inf(&self) -> f64 {
        self.inductance * self.bank_gm * self.vdd / self.rise_time
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] naming the first offending
    /// field: non-positive or non-finite `gm`, `sigma < 1`, `L <= 0`,
    /// `C < 0`, `t_r <= 0`, `V_dd <= 0`, or `V_0` outside `[0, V_dd)`.
    /// The `!(x > 0.0)` form rejects NaN by the same branch.
    pub fn validate(&self) -> Result<(), SpiceError> {
        let bad = |context: String| Err(SpiceError::InvalidValue { context });
        if !(self.bank_gm > 0.0) || !self.bank_gm.is_finite() {
            return bad(format!(
                "bank gm must be positive and finite, got {}",
                self.bank_gm
            ));
        }
        if !(self.sigma >= 1.0) || !self.sigma.is_finite() {
            return bad(format!(
                "sigma must be at least 1 and finite, got {}",
                self.sigma
            ));
        }
        if !(self.inductance > 0.0) || !self.inductance.is_finite() {
            return bad(format!(
                "inductance must be positive and finite, got {}",
                self.inductance
            ));
        }
        if !(self.capacitance >= 0.0) || !self.capacitance.is_finite() {
            return bad(format!(
                "capacitance must be non-negative and finite, got {}",
                self.capacitance
            ));
        }
        if !(self.rise_time > 0.0) || !self.rise_time.is_finite() {
            return bad(format!(
                "rise time must be positive and finite, got {}",
                self.rise_time
            ));
        }
        if !(self.vdd > 0.0) || !self.vdd.is_finite() {
            return bad(format!("Vdd must be positive and finite, got {}", self.vdd));
        }
        if !(self.v0 >= 0.0) || !(self.v0 < self.vdd) {
            return bad(format!(
                "V0 must lie in [0, Vdd), got {} with Vdd {}",
                self.v0, self.vdd
            ));
        }
        Ok(())
    }

    /// The excess-gate-voltage source `u(t) = max(0, s t - V_0)` as a PWL:
    /// `0` until `t0`, then a ramp to `V_dd - V_0` at `t_r` (held after).
    ///
    /// The explicit `t0` breakpoint is the whole point: it encodes the
    /// paper's `t' = t - V_0/s` time shift in the netlist itself, and hands
    /// the transient engine an exact breakpoint at the conduction start.
    fn control_wave(&self) -> SourceWave {
        let t0 = self.conduction_start();
        let u_end = self.vdd - self.v0;
        // A degenerate zero-length first segment (v0 == 0) would duplicate
        // the t = 0 point; two points suffice then.
        if t0 > 0.0 {
            SourceWave::Pwl(vec![(0.0, 0.0), (t0, 0.0), (self.rise_time, u_end)])
        } else {
            SourceWave::Pwl(vec![(0.0, 0.0), (self.rise_time, u_end)])
        }
    }
}

/// Builds the linearized SSN equivalent circuit.
///
/// The ground bounce appears on node [`SSN_BOUNCE_NODE`]. All initial
/// conditions are zero (quiet rail before the ramp), so the circuit is
/// meant for a `UIC` transient over `[0, t_r]` — see
/// [`ssn_tran_options`].
///
/// # Errors
///
/// Returns [`SpiceError::InvalidValue`] for parameters that fail
/// [`SsnSynthParams::validate`]; construction itself cannot fail after
/// validation.
pub fn ssn_equivalent_circuit(p: &SsnSynthParams) -> Result<Circuit, SpiceError> {
    p.validate()?;
    let mut c = Circuit::new();
    c.vsource("vctrl", "ctrl", "0", p.control_wave())?;
    // Drive: i = gm * u(t) injected INTO ng (current flows out_p -> out_n
    // through a VCCS, so ng is the out_n terminal).
    c.vccs("gdrv", "0", SSN_BOUNCE_NODE, "ctrl", "0", p.bank_gm)?;
    // Feedback: the -gm * sigma * Vn term is a conductance to ground.
    c.resistor("rfb", SSN_BOUNCE_NODE, "0", 1.0 / (p.bank_gm * p.sigma))?;
    c.inductor_with_ic("lg", SSN_BOUNCE_NODE, "0", p.inductance, 0.0)?;
    if p.capacitance > 0.0 {
        c.capacitor_with_ic("cg", SSN_BOUNCE_NODE, "0", p.capacitance, 0.0)?;
    }
    c.set_initial_voltage(SSN_BOUNCE_NODE, 0.0)?;
    c.set_initial_voltage("ctrl", 0.0)?;
    Ok(c)
}

/// Transient options tuned for differential comparison over `[0, t_r]`.
///
/// The step cap resolves the fastest feature the closed forms predict
/// (first ring peaks land at `>= pi/omega0` after `t0`), and the LTE
/// budget is tied to the circuit's own voltage scale `V_inf` so relative
/// accuracy is uniform across the huge dynamic range a corpus sweep
/// visits (microvolts to hundreds of volts).
pub fn ssn_tran_options(p: &SsnSynthParams) -> TranOptions {
    TranOptions {
        lte_rel: 2e-4,
        lte_abs: (p.v_inf().abs() * 1e-6).max(1e-15),
        ..TranOptions::to(p.rise_time)
            .with_ic()
            .with_dt_max(p.rise_time / 200.0)
    }
}

/// The `.tran` directive matching [`ssn_tran_options`], for serializing a
/// self-contained deck with [`crate::writer::write_deck`].
pub fn ssn_tran_directive(p: &SsnSynthParams) -> TranDirective {
    TranDirective {
        tstep: p.rise_time / 200.0,
        tstop: p.rise_time,
        uic: true,
    }
}

/// Parameters for a synthesized distributed power-grid noise benchmark —
/// the scenario class the closed forms cannot reach, used to exercise the
/// sparse/GMRES solver tier at realistic MNA dimensions.
///
/// The grid models the *noise* network around an ideal supply: a
/// `rows x cols` resistive mesh of rail nodes with per-node decap to the
/// quiet reference, four corner pads returning to the reference through a
/// series `L + R` package path, and `n_drivers` switching current sinks
/// (PWL ramps) distributed over the mesh. Node voltages are then the
/// simultaneous-switching droop directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerGridParams {
    /// Mesh rows (>= 2).
    pub rows: usize,
    /// Mesh columns (>= 2).
    pub cols: usize,
    /// Resistance between adjacent mesh nodes (ohm).
    pub r_mesh: f64,
    /// Decoupling capacitance per mesh node (F).
    pub c_node: f64,
    /// Package inductance of each corner pad (H).
    pub l_pad: f64,
    /// Series resistance of each corner pad (ohm).
    pub r_pad: f64,
    /// Number of switching current sinks distributed over the mesh.
    pub n_drivers: usize,
    /// Peak current per sink (A).
    pub i_peak: f64,
    /// Current ramp time (s).
    pub rise_time: f64,
}

impl PowerGridParams {
    /// Mesh node count (excluding pad nodes and ground).
    pub fn grid_nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// MNA dimension of the synthesized circuit: mesh nodes, four pad
    /// nodes, and four inductor branch currents.
    pub fn mna_dim(&self) -> usize {
        self.grid_nodes() + 8
    }

    /// Total switched current at full ramp (A).
    pub fn total_current(&self) -> f64 {
        self.n_drivers as f64 * self.i_peak
    }

    /// A crude upper bound on the worst droop magnitude: the full switched
    /// current forced through one pad's `L di/dt + i R`, plus a mesh
    /// spreading term — generous by construction (the four pads share the
    /// return), so a violation signals a solver artifact, not physics.
    pub fn droop_bound(&self) -> f64 {
        let i = self.total_current();
        let half_span = (self.rows + self.cols) as f64 / 2.0;
        i * (self.l_pad / self.rise_time + self.r_pad + self.r_mesh * half_span)
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidValue`] naming the first offending
    /// field: a mesh smaller than 2x2, no drivers, or a non-positive /
    /// non-finite electrical value.
    pub fn validate(&self) -> Result<(), SpiceError> {
        let bad = |context: String| Err(SpiceError::InvalidValue { context });
        if self.rows < 2 || self.cols < 2 {
            return bad(format!(
                "power grid must be at least 2x2, got {}x{}",
                self.rows, self.cols
            ));
        }
        if self.n_drivers == 0 {
            return bad("power grid needs at least one driver".to_owned());
        }
        for (name, v) in [
            ("mesh resistance", self.r_mesh),
            ("node capacitance", self.c_node),
            ("pad inductance", self.l_pad),
            ("pad resistance", self.r_pad),
            ("driver peak current", self.i_peak),
            ("rise time", self.rise_time),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return bad(format!("{name} must be positive and finite, got {v}"));
            }
        }
        Ok(())
    }
}

/// Builds the power-grid noise circuit described by [`PowerGridParams`].
///
/// Mesh nodes are named `g<row>_<col>`; the four pad nodes `pad0..pad3`
/// sit behind the corner inductors. All initial conditions are zero (the
/// rail is quiet before the ramp), so run it as a `UIC` transient — see
/// [`power_grid_tran_options`].
///
/// # Errors
///
/// Returns [`SpiceError::InvalidValue`] for parameters failing
/// [`PowerGridParams::validate`]; construction cannot fail afterwards.
pub fn power_grid_circuit(p: &PowerGridParams) -> Result<Circuit, SpiceError> {
    p.validate()?;
    let node = |r: usize, c: usize| format!("g{r}_{c}");
    let mut c = Circuit::new();
    for r in 0..p.rows {
        for col in 0..p.cols {
            let n = node(r, col);
            c.capacitor_with_ic(&format!("c{r}_{col}"), &n, "0", p.c_node, 0.0)?;
            if col + 1 < p.cols {
                c.resistor(&format!("rh{r}_{col}"), &n, &node(r, col + 1), p.r_mesh)?;
            }
            if r + 1 < p.rows {
                c.resistor(&format!("rv{r}_{col}"), &n, &node(r + 1, col), p.r_mesh)?;
            }
        }
    }
    // Four corner pads: series L + R back to the quiet reference.
    let corners = [
        (0, 0),
        (0, p.cols - 1),
        (p.rows - 1, 0),
        (p.rows - 1, p.cols - 1),
    ];
    for (k, (r, col)) in corners.into_iter().enumerate() {
        let pad = format!("pad{k}");
        c.inductor_with_ic(&format!("lp{k}"), &node(r, col), &pad, p.l_pad, 0.0)?;
        c.resistor(&format!("rp{k}"), &pad, "0", p.r_pad)?;
    }
    // Switching sinks, distributed over the mesh with a fixed stride so
    // the layout is deterministic in the parameters alone.
    let total = p.grid_nodes();
    let stride = (total / p.n_drivers).max(1);
    for k in 0..p.n_drivers {
        let pos = (k * stride + stride / 2) % total;
        let (r, col) = (pos / p.cols, pos % p.cols);
        c.isource(
            &format!("id{k}"),
            &node(r, col),
            "0",
            SourceWave::ramp(0.0, p.i_peak, 0.0, p.rise_time),
        )?;
    }
    Ok(c)
}

/// Transient options for [`power_grid_circuit`]: a `UIC` run over three
/// ramp times (the droop peaks during the ramp and the window catches the
/// first relaxation), with tolerances tied to the grid's own droop scale.
pub fn power_grid_tran_options(p: &PowerGridParams) -> TranOptions {
    let v_scale = p.droop_bound();
    TranOptions {
        lte_rel: 1e-3,
        lte_abs: (v_scale * 1e-6).max(1e-15),
        ..TranOptions::to(p.rise_time * 3.0)
            .with_ic()
            .with_dt_max(p.rise_time / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tran::transient;

    fn nominal() -> SsnSynthParams {
        // The paper's reference point: N = 8, K = 7.5 mS, sigma = 1.25,
        // V0 = 0.6 V, L = 5 nH, C = 1 pF, Vdd = 1.8 V, tr = 0.5 ns.
        SsnSynthParams {
            bank_gm: 8.0 * 7.5e-3,
            sigma: 1.25,
            v0: 0.6,
            vdd: 1.8,
            inductance: 5e-9,
            capacitance: 1e-12,
            rise_time: 0.5e-9,
        }
    }

    #[test]
    fn control_wave_encodes_the_conduction_start() {
        let p = nominal();
        let t0 = p.conduction_start();
        assert!((t0 - 0.6 * 0.5e-9 / 1.8).abs() < 1e-24);
        match p.control_wave() {
            SourceWave::Pwl(points) => {
                assert_eq!(points.len(), 3);
                assert_eq!(points[0], (0.0, 0.0));
                assert_eq!(points[1], (t0, 0.0));
                assert_eq!(points[2], (p.rise_time, p.vdd - p.v0));
            }
            other => panic!("expected PWL, got {other:?}"),
        }
        // v0 = 0: the degenerate first segment is dropped.
        let z = SsnSynthParams { v0: 0.0, ..p };
        match z.control_wave() {
            SourceWave::Pwl(points) => assert_eq!(points.len(), 2),
            other => panic!("expected PWL, got {other:?}"),
        }
    }

    #[test]
    fn circuit_structure_and_c_zero_variant() {
        let c = ssn_equivalent_circuit(&nominal()).unwrap();
        assert!(c.find_element("gdrv").is_some());
        assert!(c.find_element("rfb").is_some());
        assert!(c.find_element("lg").is_some());
        assert!(c.find_element("cg").is_some());
        assert!(c.find_node(SSN_BOUNCE_NODE).is_some());
        let l_only = SsnSynthParams {
            capacitance: 0.0,
            ..nominal()
        };
        let c = ssn_equivalent_circuit(&l_only).unwrap();
        assert!(c.find_element("cg").is_none());
    }

    #[test]
    fn bounce_is_quiet_before_conduction_and_active_after() {
        let p = nominal();
        let result = transient(&ssn_equivalent_circuit(&p).unwrap(), ssn_tran_options(&p)).unwrap();
        let vn = result.voltage(SSN_BOUNCE_NODE).unwrap();
        let t0 = p.conduction_start();
        // Dead flat before the excess voltage appears ...
        assert!(vn.sample(0.5 * t0).abs() < 1e-12 * p.v_inf());
        // ... and a substantial bounce by the end of the ramp.
        assert!(vn.sample(p.rise_time) > 0.1 * p.v_inf());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let p = nominal();
        let cases = [
            SsnSynthParams { bank_gm: 0.0, ..p },
            SsnSynthParams {
                bank_gm: f64::NAN,
                ..p
            },
            SsnSynthParams { sigma: 0.5, ..p },
            SsnSynthParams {
                inductance: -1e-9,
                ..p
            },
            SsnSynthParams {
                capacitance: -1e-12,
                ..p
            },
            SsnSynthParams {
                rise_time: 0.0,
                ..p
            },
            SsnSynthParams { vdd: 0.0, ..p },
            SsnSynthParams { v0: -0.1, ..p },
            SsnSynthParams { v0: 1.8, ..p },
        ];
        for bad in cases {
            assert!(
                matches!(
                    ssn_equivalent_circuit(&bad),
                    Err(SpiceError::InvalidValue { .. })
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn deck_round_trips_through_the_parser() {
        use crate::parser::parse_deck;
        use crate::writer::write_deck;
        let p = nominal();
        let circuit = ssn_equivalent_circuit(&p).unwrap();
        let text = write_deck(&circuit, "ssn equivalent", Some(ssn_tran_directive(&p))).unwrap();
        let deck = parse_deck(&text).unwrap();
        let tran = deck.tran.expect("directive survives");
        assert!((tran.tstop - p.rise_time).abs() < 1e-21);
        assert!(tran.uic);
        // Both circuits produce the same bounce.
        let a = transient(&circuit, ssn_tran_options(&p)).unwrap();
        let b = transient(&deck.circuit, ssn_tran_options(&p)).unwrap();
        let pa = a.voltage(SSN_BOUNCE_NODE).unwrap().peak();
        let pb = b.voltage(SSN_BOUNCE_NODE).unwrap().peak();
        assert!(
            (pa.value - pb.value).abs() <= 1e-9 * pa.value.abs(),
            "{} vs {}",
            pa.value,
            pb.value
        );
    }
    fn small_grid() -> PowerGridParams {
        PowerGridParams {
            rows: 6,
            cols: 6,
            r_mesh: 0.2,
            c_node: 20e-15,
            l_pad: 1e-9,
            r_pad: 0.2,
            n_drivers: 8,
            i_peak: 1e-3,
            rise_time: 100e-12,
        }
    }

    #[test]
    fn power_grid_validates_parameters() {
        assert!(small_grid().validate().is_ok());
        for f in [
            &mut |p: &mut PowerGridParams| p.rows = 1,
            &mut |p: &mut PowerGridParams| p.cols = 0,
            &mut |p: &mut PowerGridParams| p.n_drivers = 0,
            &mut |p: &mut PowerGridParams| p.r_mesh = 0.0,
            &mut |p: &mut PowerGridParams| p.c_node = -1e-15,
            &mut |p: &mut PowerGridParams| p.l_pad = f64::NAN,
            &mut |p: &mut PowerGridParams| p.i_peak = 0.0,
            &mut |p: &mut PowerGridParams| p.rise_time = f64::INFINITY,
        ] as [&mut dyn FnMut(&mut PowerGridParams); 8]
        {
            let mut p = small_grid();
            f(&mut p);
            assert!(power_grid_circuit(&p).is_err(), "{p:?} must be rejected");
        }
    }

    #[test]
    fn power_grid_droops_and_stays_within_the_bound() {
        let p = small_grid();
        let c = power_grid_circuit(&p).unwrap();
        assert_eq!(c.node_count() - 1, p.grid_nodes() + 4); // mesh + pads
        let res = transient(&c, power_grid_tran_options(&p)).unwrap();
        // Probe the center node: sinks pull the rail *down*.
        let v = res.voltage("g3_3").unwrap();
        let (mut vmin, mut vmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in v.values() {
            vmin = vmin.min(x);
            vmax = vmax.max(x);
        }
        assert!(
            vmin < 0.0,
            "switching sinks must droop the rail, got {vmin}"
        );
        assert!(
            vmin.abs() <= p.droop_bound(),
            "droop {vmin} beyond bound {}",
            p.droop_bound()
        );
        assert!(vmax <= p.droop_bound(), "rebound {vmax} beyond bound");
    }
}
