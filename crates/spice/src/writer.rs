//! Writing a [`Circuit`] back out as a SPICE deck.
//!
//! The inverse of [`crate::parser`], used for interchange and round-trip
//! testing. MOSFET models must be expressible as `.model` cards
//! ([`MosModel::model_card_params`]); the built-in alpha-power and Level-1
//! models are, table models are not.

use crate::error::SpiceError;
use crate::netlist::{Circuit, ElementKind, NodeId};
use crate::parser::TranDirective;
use crate::source::SourceWave;
use ssn_devices::MosModel;
use std::fmt::Write as _;

fn v(x: f64) -> String {
    format!("{x:e}")
}

fn wave_text(wave: &SourceWave) -> String {
    match wave {
        SourceWave::Dc(x) => format!("DC {}", v(*x)),
        SourceWave::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
            period,
        } => format!(
            "PULSE({} {} {} {} {} {} {})",
            v(*v0),
            v(*v1),
            v(*delay),
            v(*rise),
            v(*fall),
            v(*width),
            v(*period)
        ),
        SourceWave::Pwl(points) => {
            let body: Vec<String> = points
                .iter()
                .map(|(t, val)| format!("{} {}", v(*t), v(*val)))
                .collect();
            format!("PWL({})", body.join(" "))
        }
        SourceWave::Sine {
            offset,
            ampl,
            freq,
            delay,
        } => format!(
            "SIN({} {} {} {})",
            v(*offset),
            v(*ampl),
            v(*freq),
            v(*delay)
        ),
    }
}

/// Serializes `circuit` as a SPICE deck.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidValue`] when the circuit contains a MOSFET
/// whose model cannot be expressed as a `.model` card.
pub fn write_deck(
    circuit: &Circuit,
    title: &str,
    tran: Option<TranDirective>,
) -> Result<String, SpiceError> {
    let mut out = String::new();
    let _ = writeln!(out, "{}", if title.is_empty() { "untitled" } else { title });

    let node = |id: NodeId| circuit.node_name(id).to_owned();
    // Collect unique model cards, keyed by their parameter text so
    // identical models share one card.
    let mut model_cards: Vec<(String, String, String)> = Vec::new(); // (params, polarity, name)
    let mut model_name_of = |params: &str, polarity: &str| -> String {
        if let Some((_, _, name)) = model_cards
            .iter()
            .find(|(p, pol, _)| p == params && pol == polarity)
        {
            return name.clone();
        }
        let name = format!("mod{}", model_cards.len());
        model_cards.push((params.to_owned(), polarity.to_owned(), name.clone()));
        name
    };

    let mut body = String::new();
    for el in circuit.elements() {
        match el.kind() {
            ElementKind::Resistor { a, b, ohms } => {
                let _ = writeln!(body, "{} {} {} {}", el.name(), node(*a), node(*b), v(*ohms));
            }
            ElementKind::Capacitor { a, b, farads, ic } => {
                let ic_text = ic.map(|x| format!(" IC={}", v(x))).unwrap_or_default();
                let _ = writeln!(
                    body,
                    "{} {} {} {}{}",
                    el.name(),
                    node(*a),
                    node(*b),
                    v(*farads),
                    ic_text
                );
            }
            ElementKind::Inductor { a, b, henrys, ic } => {
                let ic_text = ic.map(|x| format!(" IC={}", v(x))).unwrap_or_default();
                let _ = writeln!(
                    body,
                    "{} {} {} {}{}",
                    el.name(),
                    node(*a),
                    node(*b),
                    v(*henrys),
                    ic_text
                );
            }
            ElementKind::VSource { pos, neg, wave } | ElementKind::ISource { pos, neg, wave } => {
                let _ = writeln!(
                    body,
                    "{} {} {} {}",
                    el.name(),
                    node(*pos),
                    node(*neg),
                    wave_text(wave)
                );
            }
            ElementKind::Vccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gm,
            } => {
                let _ = writeln!(
                    body,
                    "{} {} {} {} {} {}",
                    el.name(),
                    node(*out_p),
                    node(*out_n),
                    node(*ctrl_p),
                    node(*ctrl_n),
                    v(*gm)
                );
            }
            ElementKind::Diode { a, k, model } => {
                let params = format!(
                    "is={:e} n={:e}",
                    model.saturation_current(),
                    model.ideality()
                );
                let mname = model_name_of(&params, "D");
                let _ = writeln!(body, "{} {} {} {}", el.name(), node(*a), node(*k), mname);
            }
            ElementKind::Mosfet {
                polarity,
                d,
                g,
                s,
                b,
                model,
            } => {
                let params = model
                    .model_card_params()
                    .ok_or_else(|| SpiceError::InvalidValue {
                        context: format!(
                            "model {:?} of {:?} cannot be written as a .model card",
                            model.name(),
                            el.name()
                        ),
                    })?;
                let pol = polarity.to_string().to_ascii_uppercase();
                let mname = model_name_of(&params, &pol);
                let _ = writeln!(
                    body,
                    "{} {} {} {} {} {}",
                    el.name(),
                    node(*d),
                    node(*g),
                    node(*s),
                    node(*b),
                    mname
                );
            }
        }
    }
    out.push_str(&body);
    for (params, polarity, name) in &model_cards {
        let _ = writeln!(out, ".model {name} {polarity} {params}");
    }
    // Node initial conditions, in a stable order.
    let mut ics: Vec<(String, f64)> = circuit
        .initial_voltages()
        .iter()
        .map(|(&id, &val)| (circuit.node_name(id).to_owned(), val))
        .collect();
    ics.sort_by(|a, b| a.0.cmp(&b.0));
    if !ics.is_empty() {
        let items: Vec<String> = ics
            .iter()
            .map(|(name, val)| format!("V({name})={}", v(*val)))
            .collect();
        let _ = writeln!(out, ".ic {}", items.join(" "));
    }
    if let Some(t) = tran {
        let uic = if t.uic { " UIC" } else { "" };
        let _ = writeln!(out, ".tran {} {}{}", v(t.tstep), v(t.tstop), uic);
    }
    out.push_str(".end\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_deck;
    use crate::tran::{transient, TranOptions};
    use ssn_devices::{AlphaPower, MosPolarity, TableModel};
    use std::sync::Arc;

    fn ssn_circuit() -> Circuit {
        let mut c = Circuit::new();
        c.vsource("Vin", "in", "0", SourceWave::ramp(0.0, 1.8, 50e-12, 0.5e-9))
            .expect("valid");
        c.inductor_with_ic("Lg", "ng", "0", 5e-9, 0.0)
            .expect("valid");
        c.capacitor_with_ic("Cg", "ng", "0", 1e-12, 0.0)
            .expect("valid");
        let m = Arc::new(AlphaPower::builder().build());
        for i in 0..3 {
            c.mosfet(
                &format!("M{i}"),
                MosPolarity::Nmos,
                &format!("out{i}"),
                "in",
                "ng",
                "0",
                m.clone(),
            )
            .expect("valid");
            c.capacitor_with_ic(&format!("Cl{i}"), &format!("out{i}"), "0", 5e-12, 1.8)
                .expect("valid");
            c.set_initial_voltage(&format!("out{i}"), 1.8)
                .expect("valid");
        }
        c.set_initial_voltage("ng", 0.0).expect("valid");
        c.set_initial_voltage("in", 0.0).expect("valid");
        c
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let c = ssn_circuit();
        let text = write_deck(&c, "ssn bank", None).unwrap();
        let deck = parse_deck(&text).unwrap();
        assert_eq!(deck.title, "ssn bank");
        assert_eq!(deck.circuit.element_count(), c.element_count());
        assert_eq!(deck.circuit.node_count(), c.node_count());
        // Shared models collapse into a single card.
        assert_eq!(text.matches(".model").count(), 1);
    }

    #[test]
    fn roundtrip_preserves_dynamics() {
        let c = ssn_circuit();
        let text = write_deck(
            &c,
            "ssn bank",
            Some(TranDirective {
                tstep: 1e-12,
                tstop: 1.2e-9,
                uic: true,
            }),
        )
        .unwrap();
        let deck = parse_deck(&text).unwrap();
        let opts = || TranOptions::to(1.2e-9).with_ic();
        let a = transient(&c, opts()).unwrap();
        let b = transient(&deck.circuit, opts()).unwrap();
        let va = a.voltage("ng").unwrap();
        let vb = b.voltage("ng").unwrap();
        let err = va.max_abs_error(&vb).unwrap();
        assert!(err < 2e-3, "roundtrip dynamics diverged by {err}");
        assert!(va.peak().value > 0.05);
    }

    #[test]
    fn all_source_shapes_roundtrip() {
        let mut c = Circuit::new();
        c.vsource("V1", "a", "0", SourceWave::Dc(1.5))
            .expect("valid");
        c.vsource(
            "V2",
            "b",
            "0",
            SourceWave::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-9,
                rise: 1e-10,
                fall: 2e-10,
                width: 5e-10,
                period: 2e-9,
            },
        )
        .expect("valid");
        c.vsource(
            "V3",
            "c",
            "0",
            SourceWave::Sine {
                offset: 0.9,
                ampl: 0.5,
                freq: 1e9,
                delay: 0.0,
            },
        )
        .expect("valid");
        c.isource(
            "I1",
            "d",
            "0",
            SourceWave::Pwl(vec![(0.0, 0.0), (1e-9, 1e-3)]),
        )
        .expect("valid");
        c.resistor("R1", "a", "0", 1e3).expect("valid");
        c.resistor("R2", "b", "0", 1e3).expect("valid");
        c.resistor("R3", "c", "0", 1e3).expect("valid");
        c.resistor("R4", "d", "0", 1e3).expect("valid");
        c.vccs("G1", "a", "0", "b", "0", 1e-3).expect("valid");

        let text = write_deck(&c, "sources", None).unwrap();
        let deck = parse_deck(&text).unwrap();
        assert_eq!(deck.circuit.element_count(), c.element_count());
        // Compare a source value at an arbitrary time through the parsed
        // representation.
        let orig = match c.find_element("V2").unwrap().kind() {
            ElementKind::VSource { wave, .. } => wave.value_at(3.15e-9),
            _ => unreachable!(),
        };
        let round = match deck.circuit.find_element("V2").unwrap().kind() {
            ElementKind::VSource { wave, .. } => wave.value_at(3.15e-9),
            _ => unreachable!(),
        };
        assert!((orig - round).abs() < 1e-12);
    }

    #[test]
    fn table_models_are_rejected() {
        let golden = AlphaPower::builder().build();
        let table = TableModel::sample(&golden, &[0.0, 1.0, 1.8], &[0.0, 1.0, 1.8], 0.0).unwrap();
        let mut c = Circuit::new();
        c.mosfet("M1", MosPolarity::Nmos, "d", "g", "0", "0", Arc::new(table))
            .expect("valid");
        assert!(matches!(
            write_deck(&c, "t", None),
            Err(SpiceError::InvalidValue { .. })
        ));
    }

    #[test]
    fn empty_title_gets_placeholder() {
        let mut c = Circuit::new();
        c.resistor("R1", "a", "0", 1.0).expect("valid");
        let text = write_deck(&c, "", None).unwrap();
        assert!(text.starts_with("untitled\n"));
        assert!(text.ends_with(".end\n"));
    }
}
