//! MNA system layout and element stamping.
//!
//! Unknown ordering: node voltages for every non-ground node (node `i` maps
//! to unknown `i - 1`), followed by one branch current per voltage source
//! and per inductor. The node equations are written as
//! `sum of currents leaving the node = injections`, i.e. `A x = z` where
//! conductance-like terms go to `A` and companion/independent currents to
//! `z`.

use crate::netlist::{Circuit, ElementKind, NodeId};
use crate::tran::IntegrationMethod;
use ssn_devices::{MosModel, MosPolarity};
use ssn_numeric::matrix::DenseMatrix;
use ssn_numeric::sparse::CsrMatrix;
use std::collections::HashMap;

/// Matrix storage the stamper can write into: dense for small systems,
/// CSR (with a precomputed pattern from [`sparsity_pattern`]) for large
/// ones. Both must accumulate (`+=`) on repeated stamps at one position.
pub(crate) trait StampMatrix {
    /// Zeroes every stored coefficient, keeping the structure.
    fn reset(&mut self);
    /// `self[i][j] += v`.
    fn add(&mut self, i: usize, j: usize, v: f64);
}

impl StampMatrix for DenseMatrix {
    fn reset(&mut self) {
        self.fill_zero();
    }
    fn add(&mut self, i: usize, j: usize, v: f64) {
        DenseMatrix::add(self, i, j, v);
    }
}

impl StampMatrix for CsrMatrix {
    fn reset(&mut self) {
        self.fill_zero();
    }
    fn add(&mut self, i: usize, j: usize, v: f64) {
        CsrMatrix::add(self, i, j, v);
    }
}

/// Conductance tied from every node to ground so that floating nodes never
/// make the MNA matrix singular.
pub(crate) const GMIN_FLOOR: f64 = 1e-12;

/// Static description of the unknown vector for one circuit.
#[derive(Debug, Clone)]
pub(crate) struct SystemLayout {
    /// Total nodes including ground.
    pub n_nodes: usize,
    /// Branch-current unknown index (within the branch block) per element
    /// index, for voltage sources and inductors.
    pub branch_of: HashMap<usize, usize>,
    /// Capacitor state-slot index per element index.
    pub cap_of: HashMap<usize, usize>,
    /// Number of branch unknowns.
    pub n_branches: usize,
    /// Number of capacitors.
    pub n_caps: usize,
}

impl SystemLayout {
    pub(crate) fn new(circuit: &Circuit) -> Self {
        let mut branch_of = HashMap::new();
        let mut cap_of = HashMap::new();
        let mut n_branches = 0;
        let mut n_caps = 0;
        for (i, el) in circuit.elements().iter().enumerate() {
            match el.kind() {
                ElementKind::VSource { .. } | ElementKind::Inductor { .. } => {
                    branch_of.insert(i, n_branches);
                    n_branches += 1;
                }
                ElementKind::Capacitor { .. } => {
                    cap_of.insert(i, n_caps);
                    n_caps += 1;
                }
                _ => {}
            }
        }
        Self {
            n_nodes: circuit.node_count(),
            branch_of,
            cap_of,
            n_branches,
            n_caps,
        }
    }

    /// Size of the unknown vector.
    pub(crate) fn dim(&self) -> usize {
        self.n_nodes - 1 + self.n_branches
    }

    /// Unknown index of a node (`None` for ground).
    pub(crate) fn node_index(&self, n: NodeId) -> Option<usize> {
        (!n.is_ground()).then(|| n.0 - 1)
    }

    /// Unknown index of the branch current of element `elem_idx`.
    pub(crate) fn branch_index(&self, elem_idx: usize) -> Option<usize> {
        self.branch_of.get(&elem_idx).map(|b| self.n_nodes - 1 + b)
    }

    /// Voltage of node `n` in the unknown vector `x` (0 for ground).
    pub(crate) fn voltage(&self, x: &[f64], n: NodeId) -> f64 {
        match self.node_index(n) {
            Some(i) => x[i],
            None => 0.0,
        }
    }
}

/// Per-capacitor dynamic state carried between accepted timesteps.
#[derive(Debug, Clone, Default)]
pub(crate) struct CapState {
    /// Capacitor voltage `v(a) - v(b)` at the previous accepted time.
    pub v: f64,
    /// Capacitor current at the previous accepted time (needed by the
    /// trapezoidal companion model).
    pub i: f64,
}

/// What kind of solve the assembly is for.
#[derive(Debug)]
pub(crate) enum AnalysisMode<'a> {
    /// DC operating point: capacitors open, inductors short, extra `gmin`
    /// from every node to ground, sources at their `t = 0` value scaled by
    /// `source_scale`.
    Dc { gmin: f64, source_scale: f64 },
    /// One transient timestep ending at `t`, of size `dt`, integrating with
    /// `method`, starting from `prev`.
    Tran {
        t: f64,
        dt: f64,
        method: IntegrationMethod,
        prev: &'a PrevState,
    },
}

/// The accepted solution at the previous timestep.
#[derive(Debug, Clone)]
pub(crate) struct PrevState {
    /// Full unknown vector.
    pub x: Vec<f64>,
    /// Capacitor states (indexed by the layout's capacitor slots).
    pub caps: Vec<CapState>,
}

/// Every matrix position any analysis mode can stamp for this circuit,
/// as `(row, col)` pairs (duplicates are fine — [`CsrMatrix::from_pattern`]
/// merges them). The union over DC and transient stamping keeps one CSR
/// pattern valid for the whole analysis; positions a given mode leaves
/// unstamped simply hold explicit zeros.
pub(crate) fn sparsity_pattern(circuit: &Circuit, layout: &SystemLayout) -> Vec<(usize, usize)> {
    let mut pat = Vec::new();
    // gmin floor touches every node diagonal.
    for n in 0..layout.n_nodes - 1 {
        pat.push((n, n));
    }
    let conductance = |pat: &mut Vec<(usize, usize)>, na: NodeId, nb: NodeId| {
        let (i, j) = (layout.node_index(na), layout.node_index(nb));
        if let Some(i) = i {
            pat.push((i, i));
            if let Some(j) = j {
                pat.push((i, j));
                pat.push((j, i));
            }
        }
        if let Some(j) = j {
            pat.push((j, j));
        }
    };
    for (idx, el) in circuit.elements().iter().enumerate() {
        match el.kind() {
            ElementKind::Resistor { a: na, b: nb, .. } => conductance(&mut pat, *na, *nb),
            ElementKind::Capacitor { a: na, b: nb, .. } => conductance(&mut pat, *na, *nb),
            ElementKind::Inductor { a: na, b: nb, .. } => {
                let bi = layout.branch_index(idx).expect("inductor has a branch");
                for n in [*na, *nb] {
                    if let Some(i) = layout.node_index(n) {
                        pat.push((i, bi));
                        pat.push((bi, i));
                    }
                }
                // Tran stamps -L/dt here; DC pins the degenerate all-ground
                // case. The full diagonal is in the CSR pattern anyway.
                pat.push((bi, bi));
            }
            ElementKind::VSource { pos, neg, .. } => {
                let bi = layout.branch_index(idx).expect("vsource has a branch");
                for n in [*pos, *neg] {
                    if let Some(i) = layout.node_index(n) {
                        pat.push((i, bi));
                        pat.push((bi, i));
                    }
                }
            }
            ElementKind::ISource { .. } => {}
            ElementKind::Vccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                ..
            } => {
                for out in [*out_p, *out_n] {
                    if let Some(i) = layout.node_index(out) {
                        for ctrl in [*ctrl_p, *ctrl_n] {
                            if let Some(c) = layout.node_index(ctrl) {
                                pat.push((i, c));
                            }
                        }
                    }
                }
            }
            ElementKind::Diode { a: na, k: nk, .. } => conductance(&mut pat, *na, *nk),
            ElementKind::Mosfet { d, g, s, b, .. } => {
                for row in [*d, *s] {
                    if let Some(i) = layout.node_index(row) {
                        for col in [*d, *g, *s, *b] {
                            if let Some(j) = layout.node_index(col) {
                                pat.push((i, j));
                            }
                        }
                    }
                }
            }
        }
    }
    pat
}

/// Assembles the linearized MNA system at iterate `x` into `(a, z)`.
pub(crate) fn assemble<S: StampMatrix>(
    circuit: &Circuit,
    layout: &SystemLayout,
    x: &[f64],
    mode: &AnalysisMode<'_>,
    a: &mut S,
    z: &mut [f64],
) {
    a.reset();
    z.fill(0.0);

    // gmin floor (plus DC homotopy gmin) on every non-ground node.
    let gmin = GMIN_FLOOR
        + match mode {
            AnalysisMode::Dc { gmin, .. } => *gmin,
            AnalysisMode::Tran { .. } => 0.0,
        };
    for n in 0..layout.n_nodes - 1 {
        a.add(n, n, gmin);
    }

    let stamp_conductance = |a: &mut S, na: NodeId, nb: NodeId, g: f64| {
        if let Some(i) = layout.node_index(na) {
            a.add(i, i, g);
            if let Some(j) = layout.node_index(nb) {
                a.add(i, j, -g);
            }
        }
        if let Some(j) = layout.node_index(nb) {
            a.add(j, j, g);
            if let Some(i) = layout.node_index(na) {
                a.add(j, i, -g);
            }
        }
    };

    for (idx, el) in circuit.elements().iter().enumerate() {
        match el.kind() {
            ElementKind::Resistor { a: na, b: nb, ohms } => {
                stamp_conductance(a, *na, *nb, 1.0 / ohms);
            }
            ElementKind::Capacitor {
                a: na,
                b: nb,
                farads,
                ..
            } => {
                if let AnalysisMode::Tran {
                    dt, method, prev, ..
                } = mode
                {
                    let slot = layout.cap_of[&idx];
                    let state = &prev.caps[slot];
                    let (geq, ieq) = match method {
                        IntegrationMethod::BackwardEuler => {
                            let geq = farads / dt;
                            (geq, geq * state.v)
                        }
                        IntegrationMethod::Trapezoidal => {
                            let geq = 2.0 * farads / dt;
                            (geq, geq * state.v + state.i)
                        }
                    };
                    stamp_conductance(a, *na, *nb, geq);
                    if let Some(i) = layout.node_index(*na) {
                        z[i] += ieq;
                    }
                    if let Some(j) = layout.node_index(*nb) {
                        z[j] -= ieq;
                    }
                }
                // DC: open circuit, nothing to stamp.
            }
            ElementKind::Inductor {
                a: na,
                b: nb,
                henrys,
                ..
            } => {
                let bi = layout.branch_index(idx).expect("inductor has a branch");
                // KCL: branch current leaves node a, enters node b.
                if let Some(i) = layout.node_index(*na) {
                    a.add(i, bi, 1.0);
                }
                if let Some(j) = layout.node_index(*nb) {
                    a.add(j, bi, -1.0);
                }
                // Branch equation.
                match mode {
                    AnalysisMode::Dc { .. } => {
                        // Ideal short: v_a - v_b = 0.
                        if let Some(i) = layout.node_index(*na) {
                            a.add(bi, i, 1.0);
                        }
                        if let Some(j) = layout.node_index(*nb) {
                            a.add(bi, j, -1.0);
                        }
                        // Degenerate all-ground case: pin the current to 0.
                        if layout.node_index(*na).is_none() && layout.node_index(*nb).is_none() {
                            a.add(bi, bi, 1.0);
                        }
                    }
                    AnalysisMode::Tran {
                        dt, method, prev, ..
                    } => {
                        let i_prev = prev.x[bi];
                        let v_prev = layout.voltage(&prev.x, *na) - layout.voltage(&prev.x, *nb);
                        let coeff = match method {
                            IntegrationMethod::BackwardEuler => henrys / dt,
                            IntegrationMethod::Trapezoidal => 2.0 * henrys / dt,
                        };
                        // (v_a - v_b) - coeff * i = rhs
                        if let Some(i) = layout.node_index(*na) {
                            a.add(bi, i, 1.0);
                        }
                        if let Some(j) = layout.node_index(*nb) {
                            a.add(bi, j, -1.0);
                        }
                        a.add(bi, bi, -coeff);
                        z[bi] = match method {
                            IntegrationMethod::BackwardEuler => -coeff * i_prev,
                            IntegrationMethod::Trapezoidal => -coeff * i_prev - v_prev,
                        };
                    }
                }
            }
            ElementKind::VSource { pos, neg, wave } => {
                let bi = layout.branch_index(idx).expect("vsource has a branch");
                if let Some(i) = layout.node_index(*pos) {
                    a.add(i, bi, 1.0);
                }
                if let Some(j) = layout.node_index(*neg) {
                    a.add(j, bi, -1.0);
                }
                if let Some(i) = layout.node_index(*pos) {
                    a.add(bi, i, 1.0);
                }
                if let Some(j) = layout.node_index(*neg) {
                    a.add(bi, j, -1.0);
                }
                z[bi] = match mode {
                    AnalysisMode::Dc { source_scale, .. } => wave.value_at(0.0) * source_scale,
                    AnalysisMode::Tran { t, .. } => wave.value_at(*t),
                };
            }
            ElementKind::ISource { pos, neg, wave } => {
                let value = match mode {
                    AnalysisMode::Dc { source_scale, .. } => wave.value_at(0.0) * source_scale,
                    AnalysisMode::Tran { t, .. } => wave.value_at(*t),
                };
                // Current flows pos -> (through source) -> neg: it leaves
                // the pos node and is injected into the neg node.
                if let Some(i) = layout.node_index(*pos) {
                    z[i] -= value;
                }
                if let Some(j) = layout.node_index(*neg) {
                    z[j] += value;
                }
            }
            ElementKind::Vccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gm,
            } => {
                for (node, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                    if let Some(i) = layout.node_index(*node) {
                        if let Some(cp) = layout.node_index(*ctrl_p) {
                            a.add(i, cp, sign * gm);
                        }
                        if let Some(cn) = layout.node_index(*ctrl_n) {
                            a.add(i, cn, -sign * gm);
                        }
                    }
                }
            }
            ElementKind::Diode {
                a: na,
                k: nk,
                model,
            } => {
                let va = layout.voltage(x, *na);
                let vk = layout.voltage(x, *nk);
                let (i0, g) = model.iv(va - vk);
                // Linearize: i = g * (va - vk) + ieq.
                let ieq = i0 - g * (va - vk);
                stamp_conductance(a, *na, *nk, g);
                if let Some(i) = layout.node_index(*na) {
                    z[i] -= ieq;
                }
                if let Some(j) = layout.node_index(*nk) {
                    z[j] += ieq;
                }
            }
            ElementKind::Mosfet {
                polarity,
                d,
                g,
                s,
                b,
                model,
            } => {
                let vd = layout.voltage(x, *d);
                let vg = layout.voltage(x, *g);
                let vs = layout.voltage(x, *s);
                let vb = layout.voltage(x, *b);
                let lin = mos_linearize(model.as_ref(), *polarity, vd, vg, vs, vb);
                // ieq so that i_into_d = sum(g_k v_k) + ieq at the iterate.
                let ieq = lin.i - lin.g_d * vd - lin.g_g * vg - lin.g_s * vs - lin.g_b * vb;
                let stamps = [(*d, lin.g_d), (*g, lin.g_g), (*s, lin.g_s), (*b, lin.g_b)];
                if let Some(i) = layout.node_index(*d) {
                    for (node, gval) in stamps {
                        if let Some(j) = layout.node_index(node) {
                            a.add(i, j, gval);
                        }
                    }
                    z[i] -= ieq;
                }
                if let Some(i) = layout.node_index(*s) {
                    for (node, gval) in stamps {
                        if let Some(j) = layout.node_index(node) {
                            a.add(i, j, -gval);
                        }
                    }
                    z[i] += ieq;
                }
            }
        }
    }
}

/// Linearized MOSFET terminal behaviour: the current flowing *into the
/// drain terminal* (and out of the source terminal) plus its derivatives
/// with respect to the four terminal voltages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MosLinearization {
    pub i: f64,
    pub g_d: f64,
    pub g_g: f64,
    pub g_s: f64,
    pub g_b: f64,
}

/// Evaluates `model` at absolute terminal voltages, handling polarity and
/// drain/source reversal so the model only ever sees the normalized NMOS
/// convention with non-negative `v_ds`.
pub(crate) fn mos_linearize<M: MosModel + ?Sized>(
    model: &M,
    polarity: MosPolarity,
    vd: f64,
    vg: f64,
    vs: f64,
    vb: f64,
) -> MosLinearization {
    match polarity {
        MosPolarity::Nmos => {
            if vd >= vs {
                let e = model.ids(vg - vs, vd - vs, vb - vs);
                MosLinearization {
                    i: e.id,
                    g_g: e.gm,
                    g_d: e.gds,
                    g_b: e.gmbs,
                    g_s: -(e.gm + e.gds + e.gmbs),
                }
            } else {
                // Channel reversal: the physical source is the drain pin.
                let e = model.ids(vg - vd, vs - vd, vb - vd);
                MosLinearization {
                    i: -e.id,
                    g_g: -e.gm,
                    g_s: -e.gds,
                    g_b: -e.gmbs,
                    g_d: e.gm + e.gds + e.gmbs,
                }
            }
        }
        MosPolarity::Pmos => {
            if vs >= vd {
                // Normal PMOS: source is the higher-potential pin.
                let e = model.ids(vs - vg, vs - vd, vs - vb);
                MosLinearization {
                    i: -e.id,
                    g_g: e.gm,
                    g_d: e.gds,
                    g_b: e.gmbs,
                    g_s: -(e.gm + e.gds + e.gmbs),
                }
            } else {
                let e = model.ids(vd - vg, vd - vs, vd - vb);
                MosLinearization {
                    i: e.id,
                    g_g: -e.gm,
                    g_s: -e.gds,
                    g_b: -e.gmbs,
                    g_d: e.gm + e.gds + e.gmbs,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;
    use ssn_devices::AlphaPower;

    #[test]
    fn layout_assigns_branches_and_caps() {
        let mut c = Circuit::new();
        c.vsource("v1", "a", "0", SourceWave::Dc(1.0)).unwrap();
        c.resistor("r1", "a", "b", 1e3).unwrap();
        c.capacitor("c1", "b", "0", 1e-12).unwrap();
        c.inductor("l1", "b", "c", 1e-9).unwrap();
        let layout = SystemLayout::new(&c);
        assert_eq!(layout.n_nodes, 4);
        assert_eq!(layout.n_branches, 2);
        assert_eq!(layout.n_caps, 1);
        assert_eq!(layout.dim(), 5);
        assert_eq!(layout.branch_index(0), Some(3)); // vsource
        assert_eq!(layout.branch_index(3), Some(4)); // inductor
        assert_eq!(layout.branch_index(1), None);
        let a = c.find_node("a").unwrap();
        assert_eq!(layout.node_index(a), Some(0));
        assert_eq!(layout.node_index(crate::netlist::GROUND), None);
    }

    /// Finite-difference validation of the four-quadrant MOS linearization.
    #[test]
    fn mos_linearization_matches_finite_difference() {
        let model = AlphaPower::builder().build();
        let h = 1e-7;
        let biases = [
            // (vd, vg, vs, vb) covering all four cases.
            (1.8, 1.8, 0.2, 0.0), // nmos normal
            (0.1, 1.8, 1.5, 0.0), // nmos reversed
            (0.2, 0.0, 1.8, 1.8), // pmos normal (when polarity = Pmos)
            (1.8, 0.0, 0.3, 1.8), // pmos reversed
        ];
        for &pol in &[MosPolarity::Nmos, MosPolarity::Pmos] {
            for &(vd, vg, vs, vb) in &biases {
                let base = mos_linearize(&model, pol, vd, vg, vs, vb);
                let fd = |dvd: f64, dvg: f64, dvs: f64, dvb: f64| {
                    let p = mos_linearize(&model, pol, vd + dvd, vg + dvg, vs + dvs, vb + dvb).i;
                    let m = mos_linearize(&model, pol, vd - dvd, vg - dvg, vs - dvs, vb - dvb).i;
                    (p - m) / (2.0 * h)
                };
                let checks = [
                    (base.g_d, fd(h, 0.0, 0.0, 0.0), "g_d"),
                    (base.g_g, fd(0.0, h, 0.0, 0.0), "g_g"),
                    (base.g_s, fd(0.0, 0.0, h, 0.0), "g_s"),
                    (base.g_b, fd(0.0, 0.0, 0.0, h), "g_b"),
                ];
                for (analytic, numeric, label) in checks {
                    assert!(
                        (analytic - numeric).abs() < 1e-4,
                        "{pol:?} {label} at ({vd},{vg},{vs},{vb}): {analytic} vs {numeric}"
                    );
                }
            }
        }
    }

    #[test]
    fn mos_current_antisymmetric_under_reversal() {
        // Swapping drain and source negates the terminal current.
        let model = AlphaPower::builder().build();
        let a = mos_linearize(&model, MosPolarity::Nmos, 1.0, 1.8, 0.2, 0.0);
        let b = mos_linearize(&model, MosPolarity::Nmos, 0.2, 1.8, 1.0, 0.0);
        assert!((a.i + b.i).abs() < 1e-12);
    }

    #[test]
    fn pmos_conducts_with_low_gate() {
        let model = AlphaPower::builder().build();
        // PMOS source at 1.8 (vs), drain at 0.9, gate at 0: strongly on.
        let on = mos_linearize(&model, MosPolarity::Pmos, 0.9, 0.0, 1.8, 1.8);
        assert!(
            on.i < -1e-3,
            "PMOS drain current should be negative (into channel from source)"
        );
        // Gate at 1.8: off.
        let off = mos_linearize(&model, MosPolarity::Pmos, 0.9, 1.8, 1.8, 1.8);
        assert_eq!(off.i, 0.0);
    }

    /// One of every element kind; the sparse pattern must cover every
    /// position the dense stamper writes, in both analysis modes, with
    /// bit-identical coefficients.
    #[test]
    fn sparse_assembly_matches_dense_in_both_modes() {
        let mut c = Circuit::new();
        c.vsource("vdd", "vdd", "0", SourceWave::Dc(1.8)).unwrap();
        c.resistor("r1", "vdd", "mid", 2e3).unwrap();
        c.capacitor("c1", "mid", "0", 3e-12).unwrap();
        c.inductor("l1", "mid", "out", 5e-9).unwrap();
        c.isource("i1", "out", "0", SourceWave::Dc(1e-4)).unwrap();
        c.vccs("g1", "out", "0", "mid", "0", 2e-3).unwrap();
        c.diode("d1", "out", "0", ssn_devices::Diode::new(1e-14, 1.5))
            .unwrap();
        c.mosfet(
            "m1",
            MosPolarity::Nmos,
            "vdd",
            "mid",
            "0",
            "0",
            std::sync::Arc::new(AlphaPower::builder().build()),
        )
        .unwrap();
        let layout = SystemLayout::new(&c);
        let dim = layout.dim();
        let mut x = vec![0.0; dim];
        // A non-trivial iterate so the nonlinear stamps are exercised.
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = 0.1 * (i as f64 + 1.0);
        }
        let prev = PrevState {
            x: x.clone(),
            caps: vec![CapState { v: 0.7, i: 1e-5 }; layout.n_caps],
        };
        let modes = [
            AnalysisMode::Dc {
                gmin: 1e-9,
                source_scale: 0.7,
            },
            AnalysisMode::Tran {
                t: 1e-9,
                dt: 1e-12,
                method: IntegrationMethod::Trapezoidal,
                prev: &prev,
            },
        ];
        let pattern = sparsity_pattern(&c, &layout);
        let mut sparse = CsrMatrix::from_pattern(dim, &pattern).unwrap();
        for mode in &modes {
            let mut dense = DenseMatrix::zeros(dim, dim);
            let mut z_dense = vec![0.0; dim];
            let mut z_sparse = vec![0.0; dim];
            assemble(&c, &layout, &x, mode, &mut dense, &mut z_dense);
            assemble(&c, &layout, &x, mode, &mut sparse, &mut z_sparse);
            assert_eq!(z_dense, z_sparse, "rhs differs in {mode:?}");
            let densified = sparse.to_dense();
            for i in 0..dim {
                for j in 0..dim {
                    assert_eq!(
                        dense[(i, j)],
                        densified[(i, j)],
                        "A[{i}][{j}] differs in {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn dc_assembly_of_divider_solves_correctly() {
        // v1 = 2 V across r1 + r2 (1k each): middle node = 1 V.
        let mut c = Circuit::new();
        c.vsource("v1", "in", "0", SourceWave::Dc(2.0)).unwrap();
        c.resistor("r1", "in", "mid", 1e3).unwrap();
        c.resistor("r2", "mid", "0", 1e3).unwrap();
        let layout = SystemLayout::new(&c);
        let mut a = DenseMatrix::zeros(layout.dim(), layout.dim());
        let mut z = vec![0.0; layout.dim()];
        let x = vec![0.0; layout.dim()];
        assemble(
            &c,
            &layout,
            &x,
            &AnalysisMode::Dc {
                gmin: 0.0,
                source_scale: 1.0,
            },
            &mut a,
            &mut z,
        );
        let sol = ssn_numeric::lu::solve(&a, &z).unwrap();
        let mid = layout.node_index(c.find_node("mid").unwrap()).unwrap();
        assert!((sol[mid] - 1.0).abs() < 1e-6);
        // Source branch current = -1 mA (current flows out of + terminal
        // through the circuit, so through the source it is negative by the
        // associated reference direction).
        let bi = layout.branch_index(0).unwrap();
        assert!((sol[bi] + 1e-3).abs() < 1e-6, "i = {}", sol[bi]);
    }
}
