//! A SPICE-style netlist deck parser.
//!
//! Supports the classic card set needed for SSN experiments:
//!
//! ```text
//! * title / comment lines
//! R<name> n+ n- value
//! C<name> n+ n- value [IC=v]
//! L<name> n+ n- value [IC=i]
//! V<name> n+ n- <dc | PULSE(..) | PWL(..) | SIN(..)>
//! I<name> n+ n- <dc | PULSE(..) | PWL(..) | SIN(..)>
//! G<name> out+ out- ctrl+ ctrl- gm
//! M<name> d g s b modelname [W=mult]
//! D<name> anode cathode modelname
//! X<name> node... subcktname
//! .subckt <name> port... / .ends
//! .model <name> NMOS|PMOS|D (key=value ...; `kp` selects Level-1,
//!                            otherwise alpha-power; D takes is=/n=)
//! .include "path"            (resolved by parse_deck_file)
//! .ic V(node)=value
//! .tran tstep tstop [UIC]
//! .end
//! ```
//!
//! Subcircuits are flattened at parse time: instance elements become
//! `<type>.<instance>.<name>` (ngspice style) and internal nodes
//! `<instance>.<node>`; the ground node is global.
//!
//! Values accept SI/SPICE suffixes (`5n`, `2.2p`, `1MEG`, `3k`, `10m`).
//! Lines starting with `+` continue the previous card; `*` starts a
//! comment; everything is case-insensitive except node names.

use crate::error::SpiceError;
use crate::netlist::Circuit;
use crate::source::SourceWave;
use crate::tran::TranOptions;
use ssn_devices::{AlphaPower, Level1, MosModel, MosPolarity};
use std::collections::HashMap;
use std::sync::Arc;

/// A parsed deck: the circuit plus any analysis directives.
#[derive(Debug, Clone)]
pub struct Deck {
    /// The first line of the deck (SPICE tradition).
    pub title: String,
    /// The constructed circuit.
    pub circuit: Circuit,
    /// The `.tran` directive, if present.
    pub tran: Option<TranDirective>,
}

/// A `.tran tstep tstop [UIC]` directive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranDirective {
    /// Suggested timestep.
    pub tstep: f64,
    /// Stop time.
    pub tstop: f64,
    /// Start from initial conditions instead of a DC operating point.
    pub uic: bool,
}

impl TranDirective {
    /// Converts the directive into engine options.
    pub fn to_options(self) -> TranOptions {
        let mut opts = TranOptions::to(self.tstop).with_dt_max(self.tstep.max(self.tstop * 1e-6));
        if self.uic {
            opts = opts.with_ic();
        }
        opts
    }
}

fn err(line: usize, message: impl Into<String>) -> SpiceError {
    SpiceError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_value(tok: &str, line: usize) -> Result<f64, SpiceError> {
    tok.parse::<ssn_units::Unitless>()
        .map(|q| q.value())
        .map_err(|_| err(line, format!("invalid numeric value {tok:?}")))
}

/// Splits a card into whitespace tokens, treating `(`, `)` and `,` as
/// separators so `PULSE(0 1.8 0 0.5n ...)` tokenizes cleanly.
fn tokenize(card: &str) -> Vec<String> {
    card.replace(['(', ')', ','], " ")
        .split_whitespace()
        .map(str::to_owned)
        .collect()
}

/// Joins continuation lines (`+` prefix) and strips comments, keeping the
/// original line number of each card's first line.
fn assemble_cards(text: &str) -> (String, Vec<(usize, String)>) {
    let mut title = String::new();
    let mut cards: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split(';').next().unwrap_or("").trim_end();
        if i == 0 && !line.trim_start().starts_with(['.', '*']) && !looks_like_card(line) {
            title = line.trim().to_owned();
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            if let Some(last) = cards.last_mut() {
                last.1.push(' ');
                last.1.push_str(cont);
                continue;
            }
        }
        cards.push((line_no, trimmed.to_owned()));
    }
    (title, cards)
}

/// Heuristic used only for the first line (SPICE tradition makes it a
/// title): it is treated as an element card when it both starts with an
/// element letter and has enough tokens to be one, so `rc lowpass` stays a
/// title while `R1 a 0 1k` parses.
fn looks_like_card(line: &str) -> bool {
    let starts_element = line
        .trim_start()
        .chars()
        .next()
        .is_some_and(|c| "rclvigmdRCLVIGMD".contains(c));
    starts_element && tokenize(line).len() >= 4
}

/// Parses a source specification starting at `toks[k]`.
fn parse_source(toks: &[String], k: usize, line: usize) -> Result<SourceWave, SpiceError> {
    if k >= toks.len() {
        return Err(err(line, "missing source value"));
    }
    let head = toks[k].to_ascii_uppercase();
    let nums = |from: usize| -> Result<Vec<f64>, SpiceError> {
        toks[from..].iter().map(|t| parse_value(t, line)).collect()
    };
    match head.as_str() {
        "DC" => {
            let v = toks
                .get(k + 1)
                .ok_or_else(|| err(line, "DC needs a value"))?;
            Ok(SourceWave::Dc(parse_value(v, line)?))
        }
        "PULSE" => {
            let p = nums(k + 1)?;
            if p.len() < 6 {
                return Err(err(line, "PULSE needs v0 v1 td tr tf pw [per]"));
            }
            Ok(SourceWave::Pulse {
                v0: p[0],
                v1: p[1],
                delay: p[2],
                rise: p[3],
                fall: p[4],
                width: p[5],
                period: p.get(6).copied().unwrap_or(0.0),
            })
        }
        "PWL" => {
            let p = nums(k + 1)?;
            if p.len() < 2 || p.len() % 2 != 0 {
                return Err(err(line, "PWL needs t/v pairs"));
            }
            let points: Vec<(f64, f64)> = p.chunks(2).map(|c| (c[0], c[1])).collect();
            if points.windows(2).any(|w| w[1].0 < w[0].0) {
                return Err(err(line, "PWL times must be non-decreasing"));
            }
            Ok(SourceWave::Pwl(points))
        }
        "SIN" => {
            let p = nums(k + 1)?;
            if p.len() < 3 {
                return Err(err(line, "SIN needs offset ampl freq [td]"));
            }
            Ok(SourceWave::Sine {
                offset: p[0],
                ampl: p[1],
                freq: p[2],
                delay: p.get(3).copied().unwrap_or(0.0),
            })
        }
        _ => Ok(SourceWave::Dc(parse_value(&toks[k], line)?)),
    }
}

/// Parses `KEY=value` pairs from the token tail.
fn parse_kv(toks: &[String], line: usize) -> Result<HashMap<String, f64>, SpiceError> {
    let mut out = HashMap::new();
    for t in toks {
        let Some((k, v)) = t.split_once('=') else {
            return Err(err(line, format!("expected key=value, got {t:?}")));
        };
        out.insert(k.to_ascii_lowercase(), parse_value(v, line)?);
    }
    Ok(out)
}

/// A parsed `.model` card, kept un-erased so instances can apply width
/// scaling before type erasure.
#[derive(Debug, Clone)]
enum ModelDef {
    Alpha(AlphaPower),
    Level1(Level1),
    Diode(ssn_devices::Diode),
}

impl ModelDef {
    fn instantiate(
        &self,
        width: Option<f64>,
        line: usize,
    ) -> Result<Arc<dyn MosModel>, SpiceError> {
        match (self, width) {
            (Self::Alpha(m), Some(w)) => {
                if !(w.is_finite() && w > 0.0) {
                    return Err(err(line, format!("W multiplier must be positive, got {w}")));
                }
                Ok(Arc::new(m.scaled(w)))
            }
            (Self::Alpha(m), None) => Ok(Arc::new(m.clone())),
            (Self::Level1(_), Some(_)) => {
                Err(err(line, "W= scaling is only supported for alpha models"))
            }
            (Self::Level1(m), None) => Ok(Arc::new(m.clone())),
            (Self::Diode(_), _) => Err(err(line, "diode model used on a MOSFET card")),
        }
    }
}

fn build_model(params: &HashMap<String, f64>, name: &str) -> ModelDef {
    let get = |key: &str, default: f64| params.get(key).copied().unwrap_or(default);
    if params.contains_key("kp") {
        ModelDef::Level1(
            Level1::new(get("kp", 2e-3), get("vth0", 0.5))
                .with_body_effect(get("gamma", 0.0), get("phi", 0.7))
                .with_lambda(get("lambda", 0.0)),
        )
    } else {
        ModelDef::Alpha(
            AlphaPower::builder()
                .vth0(get("vth0", 0.43))
                .gamma(get("gamma", 0.3))
                .phi(get("phi", 0.8))
                .alpha(get("alpha", 1.24))
                .drive(get("b", 6.1e-3))
                .vdsat_coeff(get("kd", 0.66))
                .lambda(get("lambda", 0.05))
                .name(name)
                .build(),
        )
    }
}

/// Parses a SPICE deck into a [`Deck`].
///
/// # Errors
///
/// Returns [`SpiceError::Parse`] (with a line number) for any malformed
/// card, plus the usual netlist-construction errors for duplicate element
/// names or invalid values.
///
/// # Examples
///
/// ```
/// use ssn_spice::parser::parse_deck;
///
/// # fn main() -> Result<(), ssn_spice::SpiceError> {
/// let deck = parse_deck(
///     "rc lowpass\n\
///      Vin in 0 DC 1.0\n\
///      R1 in out 1k\n\
///      C1 out 0 1n\n\
///      .tran 1n 5u\n\
///      .end\n",
/// )?;
/// assert_eq!(deck.title, "rc lowpass");
/// assert_eq!(deck.circuit.element_count(), 3);
/// assert!(deck.tran.is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse_deck(text: &str) -> Result<Deck, SpiceError> {
    let (title, cards) = assemble_cards(text);
    let cards = expand_subcircuits(cards)?;
    let mut circuit = Circuit::new();
    let mut tran = None;
    // Two passes: models first, then elements (so `M` cards can reference
    // `.model` cards written below them, as real decks do).
    let mut models: HashMap<String, (MosPolarity, ModelDef)> = HashMap::new();
    for (line, card) in &cards {
        let toks = tokenize(card);
        if toks.is_empty() || !toks[0].eq_ignore_ascii_case(".model") {
            continue;
        }
        if toks.len() < 3 {
            return Err(err(*line, ".model needs a name and a polarity"));
        }
        let name = toks[1].to_ascii_lowercase();
        let params = parse_kv(&toks[3..], *line)?;
        let entry = match toks[2].to_ascii_uppercase().as_str() {
            "NMOS" => (MosPolarity::Nmos, build_model(&params, &name)),
            "PMOS" => (MosPolarity::Pmos, build_model(&params, &name)),
            "D" => {
                let is = params.get("is").copied().unwrap_or(1e-14);
                let n = params.get("n").copied().unwrap_or(1.0);
                if !(is > 0.0 && n > 0.0) {
                    return Err(err(*line, "diode model needs positive is and n"));
                }
                // Polarity is irrelevant for diodes; Nmos is a placeholder.
                (
                    MosPolarity::Nmos,
                    ModelDef::Diode(ssn_devices::Diode::new(is, n)),
                )
            }
            other => return Err(err(*line, format!("unknown polarity {other:?}"))),
        };
        // For MOS cards the kind is inferred from the parameter set: `kp`
        // selects the square-law Level-1 model, anything else alpha-power.
        models.insert(name.clone(), entry);
    }

    for (line, card) in &cards {
        let toks = tokenize(card);
        if toks.is_empty() {
            continue;
        }
        let head = toks[0].clone();
        let upper = head.to_ascii_uppercase();
        if upper.starts_with('.') {
            match upper.as_str() {
                ".MODEL" => {} // handled in pass one
                ".END" => break,
                ".IC" => {
                    // Work on the raw card: the shared tokenizer strips the
                    // parentheses that `V(node)=value` relies on.
                    for t in card.split_whitespace().skip(1) {
                        let inner = t
                            .strip_prefix("V(")
                            .or_else(|| t.strip_prefix("v("))
                            .unwrap_or(t);
                        let Some((node, val)) = inner.split_once('=') else {
                            return Err(err(
                                *line,
                                format!(".ic expects V(node)=value, got {t:?}"),
                            ));
                        };
                        let node = node.trim_end_matches(')');
                        circuit.set_initial_voltage(node, parse_value(val, *line)?)?;
                    }
                }
                ".TRAN" => {
                    if toks.len() < 3 {
                        return Err(err(*line, ".tran needs tstep and tstop"));
                    }
                    let tstep = parse_value(&toks[1], *line)?;
                    let tstop = parse_value(&toks[2], *line)?;
                    let uic = toks.get(3).is_some_and(|t| t.eq_ignore_ascii_case("uic"));
                    if !(tstop > 0.0 && tstep > 0.0) {
                        return Err(err(*line, ".tran times must be positive"));
                    }
                    tran = Some(TranDirective { tstep, tstop, uic });
                }
                other => return Err(err(*line, format!("unknown directive {other:?}"))),
            }
            continue;
        }

        let Some(kind) = upper.chars().next() else {
            return Err(err(*line, "empty element card"));
        };
        match kind {
            'R' => {
                require(&toks, 4, *line, "R<name> n+ n- value")?;
                circuit.resistor(&head, &toks[1], &toks[2], parse_value(&toks[3], *line)?)?;
            }
            'C' => {
                require(&toks, 4, *line, "C<name> n+ n- value [IC=v]")?;
                let value = parse_value(&toks[3], *line)?;
                match ic_of(&toks[4..], *line)? {
                    Some(ic) => circuit.capacitor_with_ic(&head, &toks[1], &toks[2], value, ic)?,
                    None => circuit.capacitor(&head, &toks[1], &toks[2], value)?,
                }
            }
            'L' => {
                require(&toks, 4, *line, "L<name> n+ n- value [IC=i]")?;
                let value = parse_value(&toks[3], *line)?;
                match ic_of(&toks[4..], *line)? {
                    Some(ic) => circuit.inductor_with_ic(&head, &toks[1], &toks[2], value, ic)?,
                    None => circuit.inductor(&head, &toks[1], &toks[2], value)?,
                }
            }
            'V' => {
                require(&toks, 4, *line, "V<name> n+ n- value")?;
                let wave = parse_source(&toks, 3, *line)?;
                circuit.vsource(&head, &toks[1], &toks[2], wave)?;
            }
            'I' => {
                require(&toks, 4, *line, "I<name> n+ n- value")?;
                let wave = parse_source(&toks, 3, *line)?;
                circuit.isource(&head, &toks[1], &toks[2], wave)?;
            }
            'G' => {
                require(&toks, 6, *line, "G<name> out+ out- ctrl+ ctrl- gm")?;
                circuit.vccs(
                    &head,
                    &toks[1],
                    &toks[2],
                    &toks[3],
                    &toks[4],
                    parse_value(&toks[5], *line)?,
                )?;
            }
            'D' => {
                require(&toks, 4, *line, "D<name> anode cathode model")?;
                let model_name = toks[3].to_ascii_lowercase();
                let Some((_, def)) = models.get(&model_name) else {
                    return Err(err(*line, format!("unknown model {model_name:?}")));
                };
                let ModelDef::Diode(d) = def else {
                    return Err(err(*line, format!("{model_name:?} is not a diode model")));
                };
                circuit.diode(&head, &toks[1], &toks[2], *d)?;
            }
            'M' => {
                require(&toks, 6, *line, "M<name> d g s b model [W=mult]")?;
                let model_name = toks[5].to_ascii_lowercase();
                let Some((polarity, def)) = models.get(&model_name) else {
                    return Err(err(*line, format!("unknown model {model_name:?}")));
                };
                // Optional width multiplier.
                let width = match toks.get(6) {
                    Some(wtok) => parse_kv(std::slice::from_ref(wtok), *line)?
                        .get("w")
                        .copied(),
                    None => None,
                };
                let model = def.instantiate(width, *line)?;
                circuit.mosfet(
                    &head, *polarity, &toks[1], &toks[2], &toks[3], &toks[4], model,
                )?;
            }
            other => return Err(err(*line, format!("unknown element type {other:?}"))),
        }
    }

    Ok(Deck {
        title,
        circuit,
        tran,
    })
}

/// Parses a deck from a file, resolving `.include "path"` directives
/// relative to the including file (nesting limited to 16 levels).
///
/// # Errors
///
/// * [`SpiceError::DeckIo`] when a file cannot be read,
/// * everything [`parse_deck`] can return.
///
/// # Examples
///
/// ```no_run
/// use ssn_spice::parser::parse_deck_file;
/// let deck = parse_deck_file("pad_ring.sp")?;
/// # Ok::<(), ssn_spice::SpiceError>(())
/// ```
pub fn parse_deck_file(path: impl AsRef<std::path::Path>) -> Result<Deck, SpiceError> {
    let text = resolve_includes(path.as_ref(), 0)?;
    parse_deck(&text)
}

/// Maximum `.include` nesting depth.
const MAX_INCLUDE_DEPTH: usize = 16;

fn resolve_includes(path: &std::path::Path, depth: usize) -> Result<String, SpiceError> {
    if depth > MAX_INCLUDE_DEPTH {
        return Err(SpiceError::DeckIo {
            path: path.display().to_string(),
            message: "include nesting too deep (cycle?)".to_owned(),
        });
    }
    let text = std::fs::read_to_string(path).map_err(|e| SpiceError::DeckIo {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let dir = path
        .parent()
        .map(std::path::Path::to_path_buf)
        .unwrap_or_default();
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let trimmed = line.trim();
        let lower = trimmed.to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix(".include") {
            let raw = trimmed[trimmed.len() - rest.len()..].trim();
            let target = raw.trim_matches(['"', '\'']);
            if target.is_empty() {
                return Err(SpiceError::DeckIo {
                    path: path.display().to_string(),
                    message: ".include needs a path".to_owned(),
                });
            }
            let included = dir.join(target);
            out.push_str(&resolve_includes(&included, depth + 1)?);
            out.push('\n');
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    Ok(out)
}

/// A collected `.subckt` definition.
#[derive(Debug, Clone)]
struct Subckt {
    ports: Vec<String>,
    body: Vec<(usize, String)>,
}

/// Maximum subcircuit nesting depth (guards against recursive definitions).
const MAX_SUBCKT_DEPTH: usize = 16;

/// Expands `.subckt`/`.ends` definitions and `X` instantiation cards into
/// flat element cards. Instance elements and internal nodes are prefixed
/// with `<instance>.`; port nodes map to the caller's nodes; the ground
/// node `0`/`gnd` is global.
fn expand_subcircuits(cards: Vec<(usize, String)>) -> Result<Vec<(usize, String)>, SpiceError> {
    // Pass 1: harvest definitions.
    let mut subckts: HashMap<String, Subckt> = HashMap::new();
    let mut top: Vec<(usize, String)> = Vec::new();
    let mut current: Option<(String, Subckt)> = None;
    for (line, card) in cards {
        let toks = tokenize(&card);
        let head = toks
            .first()
            .map(|t| t.to_ascii_uppercase())
            .unwrap_or_default();
        match head.as_str() {
            ".SUBCKT" => {
                if current.is_some() {
                    return Err(err(line, "nested .subckt definitions are not supported"));
                }
                if toks.len() < 3 {
                    return Err(err(line, ".subckt needs a name and at least one port"));
                }
                let name = toks[1].to_ascii_lowercase();
                let ports = toks[2..].to_vec();
                current = Some((
                    name,
                    Subckt {
                        ports,
                        body: Vec::new(),
                    },
                ));
            }
            ".ENDS" => {
                let Some((name, def)) = current.take() else {
                    return Err(err(line, ".ends without a matching .subckt"));
                };
                subckts.insert(name, def);
            }
            _ => match &mut current {
                Some((_, def)) => def.body.push((line, card)),
                None => top.push((line, card)),
            },
        }
    }
    if let Some((name, _)) = current {
        return Err(err(0, format!(".subckt {name:?} is missing its .ends")));
    }
    if subckts.is_empty() {
        return Ok(top);
    }

    // Pass 2: expand X cards (depth-limited; bodies may instantiate other
    // subcircuits).
    fn expand_into(
        out: &mut Vec<(usize, String)>,
        cards: &[(usize, String)],
        prefix: &str,
        port_map: &HashMap<String, String>,
        subckts: &HashMap<String, Subckt>,
        depth: usize,
    ) -> Result<(), SpiceError> {
        for (line, card) in cards {
            let toks = tokenize(card);
            let Some(first) = toks.first() else { continue };
            if first.starts_with('.') {
                if prefix.is_empty() {
                    // Top level: directives pass through untouched.
                    out.push((*line, card.clone()));
                    continue;
                }
                return Err(err(
                    *line,
                    "directives are not allowed inside .subckt bodies",
                ));
            }
            let map_node = |n: &str| -> String {
                if n == "0" || n.eq_ignore_ascii_case("gnd") {
                    "0".to_owned()
                } else if let Some(outer) = port_map.get(n) {
                    outer.clone()
                } else if prefix.is_empty() {
                    n.to_owned()
                } else {
                    format!("{prefix}{n}")
                }
            };
            let Some(kind) = first.chars().next().map(|c| c.to_ascii_uppercase()) else {
                return Err(err(*line, "empty card in .subckt body"));
            };
            if kind == 'X' {
                if depth >= MAX_SUBCKT_DEPTH {
                    return Err(err(
                        *line,
                        "subcircuit nesting too deep (recursive definition?)",
                    ));
                }
                if toks.len() < 3 {
                    return Err(err(*line, "X<name> needs nodes and a subckt name"));
                }
                let Some(last_tok) = toks.last() else {
                    return Err(err(*line, "X<name> needs nodes and a subckt name"));
                };
                let sub_name = last_tok.to_ascii_lowercase();
                let Some(def) = subckts.get(&sub_name) else {
                    return Err(err(*line, format!("unknown subcircuit {sub_name:?}")));
                };
                let outer_nodes: Vec<String> = toks[1..toks.len() - 1]
                    .iter()
                    .map(|n| map_node(n))
                    .collect();
                if outer_nodes.len() != def.ports.len() {
                    return Err(err(
                        *line,
                        format!(
                            "subcircuit {sub_name:?} has {} ports, {} nodes given",
                            def.ports.len(),
                            outer_nodes.len()
                        ),
                    ));
                }
                let inner_prefix = format!("{prefix}{}.", first);
                let inner_map: HashMap<String, String> =
                    def.ports.iter().cloned().zip(outer_nodes).collect();
                expand_into(
                    out,
                    &def.body,
                    &inner_prefix,
                    &inner_map,
                    subckts,
                    depth + 1,
                )?;
                continue;
            }
            // Rewrite node fields by element type; keep values and model
            // references untouched.
            let node_count: usize = match kind {
                'R' | 'C' | 'L' | 'V' | 'I' | 'D' => 2,
                'G' => 4,
                'M' => 4,
                other => {
                    return Err(err(
                        *line,
                        format!("unknown element type {other:?} in subckt"),
                    ))
                }
            };
            if toks.len() < 1 + node_count {
                return Err(err(*line, "element card too short"));
            }
            let mut rebuilt: Vec<String> = Vec::with_capacity(toks.len());
            // ngspice-style flattened name: the type letter stays first so
            // the element dispatch still works ("R.X0.R1").
            if prefix.is_empty() {
                rebuilt.push(first.clone());
            } else {
                rebuilt.push(format!("{kind}.{prefix}{first}"));
            }
            for (k, tok) in toks[1..].iter().enumerate() {
                if k < node_count {
                    rebuilt.push(map_node(tok));
                } else {
                    rebuilt.push(tok.clone());
                }
            }
            // Re-wrap source shapes: the tokenizer stripped parentheses, so
            // a card like `V1 a 0 PWL 0 0 1n 1` must stay parseable — it
            // is, because the parser treats parentheses and spaces alike.
            out.push((*line, rebuilt.join(" ")));
        }
        Ok(())
    }

    let mut flat = Vec::new();
    expand_into(&mut flat, &top, "", &HashMap::new(), &subckts, 0)?;
    Ok(flat)
}

fn require(toks: &[String], n: usize, line: usize, usage: &str) -> Result<(), SpiceError> {
    if toks.len() < n {
        return Err(err(line, format!("expected {usage}")));
    }
    Ok(())
}

fn ic_of(tail: &[String], line: usize) -> Result<Option<f64>, SpiceError> {
    for t in tail {
        if let Some(v) = t
            .strip_prefix("IC=")
            .or_else(|| t.strip_prefix("ic="))
            .or_else(|| t.strip_prefix("Ic="))
        {
            return Ok(Some(parse_value(v, line)?));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ElementKind;
    use crate::tran::transient;

    const SSN_DECK: &str = "\
ssn driver bank, 2 drivers
* input ramp 0 -> 1.8 V in 0.5 ns after 50 ps
Vin in 0 PWL(0 0 50p 0 550p 1.8)
Lg ng 0 5n IC=0
Cg ng 0 1p IC=0
M0 out0 in ng 0 drv
M1 out1 in ng 0 drv
Cl0 out0 0 5p IC=1.8
Cl1 out1 0 5p IC=1.8
.model drv NMOS vth0=0.43 gamma=0.3 phi=0.8 alpha=1.24 b=6.1m kd=0.66 lambda=0.05
.ic V(ng)=0 V(in)=0 V(out0)=1.8 V(out1)=1.8
.tran 1p 1.3n UIC
.end
";

    #[test]
    fn parses_full_ssn_deck() {
        let deck = parse_deck(SSN_DECK).unwrap();
        assert_eq!(deck.title, "ssn driver bank, 2 drivers");
        assert_eq!(deck.circuit.element_count(), 7);
        let tran = deck.tran.unwrap();
        assert!(tran.uic);
        assert!((tran.tstop - 1.3e-9).abs() < 1e-21);
        // And it actually simulates: the ground node bounces.
        let res = transient(&deck.circuit, tran.to_options()).unwrap();
        let vn = res.voltage("ng").unwrap();
        assert!(vn.peak().value > 0.05, "vn peak {}", vn.peak().value);
        assert!(vn.peak().value < 1.0);
    }

    #[test]
    fn continuation_lines_and_comments() {
        let deck = parse_deck(
            "t\n\
             * a comment\n\
             R1 a 0\n\
             + 1k ; trailing comment\n\
             V1 a 0 DC 1\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.element_count(), 2);
        match deck.circuit.find_element("R1").unwrap().kind() {
            ElementKind::Resistor { ohms, .. } => assert_eq!(*ohms, 1e3),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn suffixed_values() {
        let deck = parse_deck("t\nC1 a 0 2.2p\nL1 a 0 5n\nR1 a 0 1MEG\n").unwrap();
        match deck.circuit.find_element("C1").unwrap().kind() {
            ElementKind::Capacitor { farads, .. } => {
                assert!((farads - 2.2e-12).abs() < 1e-24)
            }
            _ => panic!("wrong kind"),
        }
        match deck.circuit.find_element("R1").unwrap().kind() {
            ElementKind::Resistor { ohms, .. } => assert!((ohms - 1e6).abs() < 1e-3),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn source_shapes() {
        let deck = parse_deck(
            "t\n\
             V1 a 0 DC 1.8\n\
             V2 b 0 PULSE(0 1 1n 0.1n 0.1n 2n 5n)\n\
             V3 c 0 SIN(0.9 0.9 1G)\n\
             V4 d 0 2.5\n\
             I1 e 0 PWL(0 0 1n 1m)\n",
        )
        .unwrap();
        let kinds: Vec<&ElementKind> = deck.circuit.elements().iter().map(|e| e.kind()).collect();
        assert!(
            matches!(kinds[0], ElementKind::VSource { wave: SourceWave::Dc(v), .. } if *v == 1.8)
        );
        assert!(matches!(
            kinds[1],
            ElementKind::VSource {
                wave: SourceWave::Pulse { .. },
                ..
            }
        ));
        assert!(matches!(
            kinds[2],
            ElementKind::VSource {
                wave: SourceWave::Sine { .. },
                ..
            }
        ));
        assert!(
            matches!(kinds[3], ElementKind::VSource { wave: SourceWave::Dc(v), .. } if *v == 2.5)
        );
        assert!(matches!(
            kinds[4],
            ElementKind::ISource {
                wave: SourceWave::Pwl(_),
                ..
            }
        ));
    }

    #[test]
    fn level1_models_and_width_scaling() {
        let deck = parse_deck(
            "t\n\
             M1 d g 0 0 sq\n\
             M2 d g 0 0 ap W=4\n\
             .model sq NMOS kp=2m vth0=0.5\n\
             .model ap NMOS b=6.1m vth0=0.43 alpha=1.24\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.element_count(), 2);
        // W-scaled alpha model carries 4x the drive.
        let (m1, m2) = (
            deck.circuit.find_element("M1").unwrap(),
            deck.circuit.find_element("M2").unwrap(),
        );
        let (ElementKind::Mosfet { model: sq, .. }, ElementKind::Mosfet { model: ap, .. }) =
            (m1.kind(), m2.kind())
        else {
            panic!("wrong kinds");
        };
        assert!(sq.ids(1.5, 1.8, 0.0).id > 0.0);
        let base = AlphaPower::builder().build().ids(1.8, 1.8, 0.0).id;
        assert!((ap.ids(1.8, 1.8, 0.0).id - 4.0 * base).abs() < 1e-9);
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let cases = [
            ("t\nR1 a 0\n", 2, "expected"),
            ("t\nX1 a 0 1\n", 2, "unknown element"),
            ("t\nR1 a 0 zz\n", 2, "invalid numeric"),
            ("t\nM1 d g 0 0 nomodel\n", 2, "unknown model"),
            ("t\n.bogus\n", 2, "unknown directive"),
            ("t\n.tran 1n\n", 2, ".tran needs"),
            ("t\nV1 a 0 PULSE(0 1)\n", 2, "PULSE needs"),
            ("t\nV1 a 0 PWL(1n 1 0 0)\n", 2, "non-decreasing"),
            ("t\n.model m NMOS\n.model m2 FOO\n", 3, "unknown polarity"),
            ("t\n.ic V(a) 0\n", 2, ".ic expects"),
        ];
        for (deck, want_line, want_msg) in cases {
            match parse_deck(deck) {
                Err(SpiceError::Parse { line, message }) => {
                    assert_eq!(line, want_line, "{deck:?} -> {message}");
                    assert!(
                        message.contains(want_msg),
                        "{deck:?}: message {message:?} missing {want_msg:?}"
                    );
                }
                other => panic!("{deck:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn ic_directive_and_cap_ic() {
        // Bare node=value is accepted as shorthand for V(node)=value.
        let deck = parse_deck("t\n.ic c=0.1\n").unwrap();
        let c = deck.circuit.find_node("c").unwrap();
        assert_eq!(deck.circuit.initial_voltages()[&c], 0.1);

        let deck = parse_deck("t\nC1 a 0 1p IC=1.8\n.ic V(b)=0.9\n").unwrap();
        match deck.circuit.find_element("C1").unwrap().kind() {
            ElementKind::Capacitor { ic, .. } => assert_eq!(*ic, Some(1.8)),
            _ => panic!("wrong kind"),
        }
        let b = deck.circuit.find_node("b").unwrap();
        assert_eq!(deck.circuit.initial_voltages()[&b], 0.9);
    }

    #[test]
    fn diode_cards_parse_and_simulate() {
        let deck = parse_deck(
            "clamp\n\
             V1 in 0 DC 1.0\n\
             R1 in d 1k\n\
             D1 d 0 esd\n\
             .model esd D is=1e-14 n=1.0\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.element_count(), 3);
        let op =
            crate::dc::dc_operating_point(&deck.circuit, crate::dc::DcOptions::default()).unwrap();
        let vd = op.voltage("d").unwrap();
        assert!(vd > 0.4 && vd < 0.8, "diode drop {vd}");
        // Misuse errors.
        assert!(parse_deck("t\nD1 a 0 nomodel\n").is_err());
        // A diode model on an M card is rejected.
        let err = parse_deck("t\nM1 d g 0 0 e\n.model e D is=1e-14 n=1\n").unwrap_err();
        assert!(err.to_string().contains("diode model"), "{err}");
        // An NMOS model on a D card is rejected.
        let err = parse_deck("t\nD1 a 0 m\n.model m NMOS b=6m\n").unwrap_err();
        assert!(err.to_string().contains("not a diode"), "{err}");
    }

    #[test]
    fn subckt_driver_bank_expands_and_simulates() {
        // The pad-ring idiom: define one driver cell, instantiate it N
        // times; must match the flat deck's dynamics.
        let deck = parse_deck(
            "subckt bank\n\
             .subckt driver in ng out\n\
             M1 out in ng 0 drv\n\
             Cl out 0 5p IC=1.8\n\
             .ends\n\
             Vin in 0 PWL(0 0 50p 0 550p 1.8)\n\
             Lg ng 0 5n IC=0\n\
             Cg ng 0 1p IC=0\n\
             X0 in ng out0 driver\n\
             X1 in ng out1 driver\n\
             X2 in ng out2 driver\n\
             X3 in ng out3 driver\n\
             .model drv NMOS vth0=0.43 gamma=0.3 phi=0.8 alpha=1.24 b=6.1m kd=0.66 lambda=0.05\n\
             .ic V(ng)=0 V(in)=0 V(X0.out0)=1.8\n\
             .tran 1p 1.3n UIC\n",
        )
        .unwrap();
        // 1 source + L + C + 4 * (mosfet + load cap) = 11 elements.
        assert_eq!(deck.circuit.element_count(), 11);
        assert!(deck.circuit.find_element("M.X2.M1").is_some());
        // Ports mapped to outer nodes; internals got the instance prefix.
        assert!(deck.circuit.find_node("ng").is_some());
        let res = transient(&deck.circuit, deck.tran.unwrap().to_options()).unwrap();
        let vn = res.voltage("ng").unwrap();
        assert!(vn.peak().value > 0.2, "bounce {}", vn.peak().value);

        // Same circuit written flat gives the same bounce.
        let flat = parse_deck(
            "flat bank\n\
             Vin in 0 PWL(0 0 50p 0 550p 1.8)\n\
             Lg ng 0 5n IC=0\n\
             Cg ng 0 1p IC=0\n\
             M0 out0 in ng 0 drv\n\
             M1 out1 in ng 0 drv\n\
             M2 out2 in ng 0 drv\n\
             M3 out3 in ng 0 drv\n\
             Cl0 out0 0 5p IC=1.8\n\
             Cl1 out1 0 5p IC=1.8\n\
             Cl2 out2 0 5p IC=1.8\n\
             Cl3 out3 0 5p IC=1.8\n\
             .model drv NMOS vth0=0.43 gamma=0.3 phi=0.8 alpha=1.24 b=6.1m kd=0.66 lambda=0.05\n\
             .ic V(ng)=0 V(in)=0\n\
             .tran 1p 1.3n UIC\n",
        )
        .unwrap();
        let res_flat = transient(&flat.circuit, flat.tran.unwrap().to_options()).unwrap();
        let vn_flat = res_flat.voltage("ng").unwrap();
        assert!(
            (vn.peak().value - vn_flat.peak().value).abs() / vn_flat.peak().value < 0.01,
            "subckt {} vs flat {}",
            vn.peak().value,
            vn_flat.peak().value
        );
    }

    #[test]
    fn nested_subckts_expand() {
        let deck = parse_deck(
            "nested\n\
             .subckt rc a b\n\
             R1 a b 1k\n\
             C1 b 0 1p\n\
             .ends\n\
             .subckt rc2 a c\n\
             X1 a m rc\n\
             X2 m c rc\n\
             .ends\n\
             V1 in 0 DC 1\n\
             Xtop in out rc2\n",
        )
        .unwrap();
        // V + 2 * (R + C) = 5 elements; internal node got a double prefix.
        assert_eq!(deck.circuit.element_count(), 5);
        assert!(deck.circuit.find_element("R.Xtop.X1.R1").is_some());
        assert!(deck.circuit.find_node("Xtop.m").is_some());
        // DC: out follows in through the resistor chain (caps open).
        let op =
            crate::dc::dc_operating_point(&deck.circuit, crate::dc::DcOptions::default()).unwrap();
        assert!((op.voltage("out").unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn subckt_error_cases() {
        // Missing .ends
        assert!(parse_deck("t\n.subckt s a\nR1 a 0 1k\n").is_err());
        // .ends without .subckt
        assert!(parse_deck("t\n.ends\n").is_err());
        // Unknown subckt
        assert!(parse_deck("t\nX1 a s_nope\n").is_err());
        // Port arity mismatch
        assert!(parse_deck("t\n.subckt s a b\nR1 a b 1k\n.ends\nX1 n1 s\n").is_err());
        // Directive inside a body
        assert!(parse_deck("t\n.subckt s a\n.tran 1n 1u\n.ends\nX1 n1 s\n").is_err());
        // Recursive definition trips the depth limit.
        assert!(parse_deck("t\n.subckt s a\nX1 a s\n.ends\nXtop n1 s\n").is_err());
    }

    #[test]
    fn include_directive_inlines_files() {
        let dir = std::env::temp_dir().join("ssn_include_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("cells.inc"),
            ".subckt rc a b\nR1 a b 1k\nC1 b 0 1p\n.ends\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("top.sp"),
            "include test\n.include \"cells.inc\"\nV1 in 0 DC 1\nX1 in out rc\n",
        )
        .unwrap();
        let deck = parse_deck_file(dir.join("top.sp")).unwrap();
        assert_eq!(deck.circuit.element_count(), 3);
        assert!(deck.circuit.find_element("R.X1.R1").is_some());

        // Missing include file reports the offending path.
        std::fs::write(dir.join("bad.sp"), "t\n.include nope.inc\n").unwrap();
        let err = parse_deck_file(dir.join("bad.sp")).unwrap_err();
        assert!(err.to_string().contains("nope.inc"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn include_cycles_are_caught() {
        let dir = std::env::temp_dir().join("ssn_include_cycle");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.sp"), "t\n.include b.sp\n").unwrap();
        std::fs::write(dir.join("b.sp"), ".include a.sp\n").unwrap();
        let err = parse_deck_file(dir.join("a.sp")).unwrap_err();
        assert!(err.to_string().contains("too deep"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_stops_parsing() {
        let deck = parse_deck("t\nR1 a 0 1k\n.end\nR2 b 0 1k\n").unwrap();
        assert_eq!(deck.circuit.element_count(), 1);
    }

    #[test]
    fn first_line_element_is_not_swallowed_as_title() {
        let deck = parse_deck("R1 a 0 1k\n").unwrap();
        assert_eq!(deck.circuit.element_count(), 1);
        assert_eq!(deck.title, "");
    }
}
