//! AC small-signal (frequency-domain) analysis.
//!
//! Linearizes the circuit at its DC operating point, then solves the
//! complex MNA system `Y(jw) x = b` over a frequency grid. Used in the SSN
//! suite to expose the ground network's impedance resonance — the
//! frequency-domain face of the paper's damping classification.

use crate::dc::{dc_operating_point, DcOptions};
use crate::error::SpiceError;
use crate::netlist::{Circuit, ElementKind};
use crate::stamp::{mos_linearize, SystemLayout, GMIN_FLOOR};
use ssn_numeric::clu::{solve_complex, ComplexMatrix};
use ssn_numeric::complex::Complex;
use ssn_waveform::Waveform;

/// Options for [`ac_analysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct AcOptions {
    /// Frequencies to solve at (Hz, must be positive and increasing).
    pub frequencies: Vec<f64>,
    /// Name of the independent source acting as the AC stimulus; all other
    /// sources are set to zero in the small-signal circuit (voltage sources
    /// short, current sources open).
    pub stimulus: String,
    /// Stimulus magnitude (V or A).
    pub magnitude: f64,
    /// Newton options for the underlying DC operating point.
    pub dc: DcOptions,
}

impl AcOptions {
    /// A log-spaced sweep of `points_per_decade` points per decade over
    /// `[f_lo, f_hi]`, driven by unit stimulus `source`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not positive and ordered or
    /// `points_per_decade == 0`.
    pub fn log_sweep(source: &str, f_lo: f64, f_hi: f64, points_per_decade: usize) -> Self {
        assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
        assert!(points_per_decade > 0, "need at least one point per decade");
        let decades = (f_hi / f_lo).log10();
        let n = ((decades * points_per_decade as f64).ceil() as usize + 1).max(2);
        let frequencies = ssn_numeric::stats::logspace(f_lo, f_hi, n)
            .expect("bounds checked positive and n >= 2 above");
        Self {
            frequencies,
            stimulus: source.to_owned(),
            magnitude: 1.0,
            dc: DcOptions::default(),
        }
    }
}

/// The result of an AC sweep: one complex solution vector per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    circuit: Circuit,
    layout: SystemLayout,
    freqs: Vec<f64>,
    solutions: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The swept frequencies (Hz).
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// The node-voltage phasor at frequency index `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for an unknown node or an
    /// out-of-range index.
    pub fn phasor(&self, node: &str, idx: usize) -> Result<Complex, SpiceError> {
        let id = self
            .circuit
            .find_node(node)
            .ok_or_else(|| SpiceError::UnknownProbe { name: node.into() })?;
        let sol = self
            .solutions
            .get(idx)
            .ok_or_else(|| SpiceError::UnknownProbe {
                name: format!("frequency index {idx}"),
            })?;
        Ok(match self.layout.node_index(id) {
            Some(i) => sol[i],
            None => Complex::ZERO,
        })
    }

    /// Magnitude response `|V(node)|` over the sweep, as a waveform with
    /// frequency on the horizontal axis.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for an unknown node.
    pub fn magnitude(&self, node: &str) -> Result<Waveform, SpiceError> {
        let values: Result<Vec<f64>, SpiceError> = (0..self.freqs.len())
            .map(|i| self.phasor(node, i).map(Complex::abs))
            .collect();
        Ok(Waveform::new(self.freqs.clone(), values?)?)
    }

    /// Phase response (radians) over the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for an unknown node.
    pub fn phase(&self, node: &str) -> Result<Waveform, SpiceError> {
        let values: Result<Vec<f64>, SpiceError> = (0..self.freqs.len())
            .map(|i| self.phasor(node, i).map(Complex::arg))
            .collect();
        Ok(Waveform::new(self.freqs.clone(), values?)?)
    }

    /// The frequency (Hz) of the largest magnitude at `node` — the
    /// resonance locator used by the SSN impedance experiments.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownProbe`] for an unknown node.
    pub fn peak_frequency(&self, node: &str) -> Result<f64, SpiceError> {
        Ok(self.magnitude(node)?.peak().time)
    }
}

/// Runs an AC small-signal analysis.
///
/// # Errors
///
/// * [`SpiceError::UnknownProbe`] when the stimulus source does not exist,
/// * [`SpiceError::InvalidValue`] for an empty or non-increasing frequency
///   grid,
/// * DC operating-point and linear-solver failures.
pub fn ac_analysis(circuit: &Circuit, opts: &AcOptions) -> Result<AcResult, SpiceError> {
    if opts.frequencies.is_empty() || opts.frequencies.windows(2).any(|w| w[1] <= w[0]) {
        return Err(SpiceError::InvalidValue {
            context: "AC frequencies must be non-empty and strictly increasing".into(),
        });
    }
    if opts.frequencies[0] <= 0.0 {
        return Err(SpiceError::InvalidValue {
            context: "AC frequencies must be positive".into(),
        });
    }
    let stim_idx = circuit
        .elements()
        .iter()
        .position(|e| e.name() == opts.stimulus)
        .ok_or_else(|| SpiceError::UnknownProbe {
            name: opts.stimulus.clone(),
        })?;
    match circuit.elements()[stim_idx].kind() {
        ElementKind::VSource { .. } | ElementKind::ISource { .. } => {}
        _ => {
            return Err(SpiceError::InvalidValue {
                context: format!("AC stimulus {:?} must be a V or I source", opts.stimulus),
            })
        }
    }

    let layout = SystemLayout::new(circuit);
    let op = dc_operating_point(circuit, opts.dc)?;
    let x0 = op.x;
    let n = layout.dim();

    let mut solutions = Vec::with_capacity(opts.frequencies.len());
    let mut y = ComplexMatrix::zeros(n, n);
    let mut b = vec![Complex::ZERO; n];

    for &freq in &opts.frequencies {
        let w = 2.0 * std::f64::consts::PI * freq;
        y.fill_zero();
        b.iter_mut().for_each(|v| *v = Complex::ZERO);
        for i in 0..layout.n_nodes - 1 {
            y.add(i, i, Complex::real(GMIN_FLOOR));
        }

        for (idx, el) in circuit.elements().iter().enumerate() {
            match el.kind() {
                ElementKind::Resistor { a, b: nb, ohms } => {
                    stamp_admittance(&layout, &mut y, *a, *nb, Complex::real(1.0 / ohms));
                }
                ElementKind::Capacitor {
                    a, b: nb, farads, ..
                } => {
                    stamp_admittance(&layout, &mut y, *a, *nb, Complex::new(0.0, w * farads));
                }
                ElementKind::Inductor {
                    a, b: nb, henrys, ..
                } => {
                    let bi = layout.branch_index(idx).expect("inductor branch");
                    if let Some(i) = layout.node_index(*a) {
                        y.add(i, bi, Complex::ONE);
                        y.add(bi, i, Complex::ONE);
                    }
                    if let Some(j) = layout.node_index(*nb) {
                        y.add(j, bi, -Complex::ONE);
                        y.add(bi, j, -Complex::ONE);
                    }
                    y.add(bi, bi, Complex::new(0.0, -w * henrys));
                }
                ElementKind::VSource { pos, neg, .. } => {
                    let bi = layout.branch_index(idx).expect("vsource branch");
                    if let Some(i) = layout.node_index(*pos) {
                        y.add(i, bi, Complex::ONE);
                        y.add(bi, i, Complex::ONE);
                    }
                    if let Some(j) = layout.node_index(*neg) {
                        y.add(j, bi, -Complex::ONE);
                        y.add(bi, j, -Complex::ONE);
                    }
                    if idx == stim_idx {
                        b[bi] = Complex::real(opts.magnitude);
                    }
                }
                ElementKind::ISource { pos, neg, .. } => {
                    if idx == stim_idx {
                        if let Some(i) = layout.node_index(*pos) {
                            b[i] -= Complex::real(opts.magnitude);
                        }
                        if let Some(j) = layout.node_index(*neg) {
                            b[j] += Complex::real(opts.magnitude);
                        }
                    }
                }
                ElementKind::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gm,
                } => {
                    stamp_transconductance(&layout, &mut y, *out_p, *out_n, *ctrl_p, *ctrl_n, *gm);
                }
                ElementKind::Diode { a, k, model } => {
                    // Small-signal junction conductance at the operating
                    // point.
                    let va = layout.voltage(&x0, *a);
                    let vk = layout.voltage(&x0, *k);
                    let (_, g) = model.iv(va - vk);
                    stamp_admittance(&layout, &mut y, *a, *k, Complex::real(g));
                }
                ElementKind::Mosfet {
                    polarity,
                    d,
                    g,
                    s,
                    b: nb,
                    model,
                } => {
                    // Small-signal conductances at the DC operating point.
                    let vd = layout.voltage(&x0, *d);
                    let vg = layout.voltage(&x0, *g);
                    let vs = layout.voltage(&x0, *s);
                    let vb = layout.voltage(&x0, *nb);
                    let lin = mos_linearize(model.as_ref(), *polarity, vd, vg, vs, vb);
                    let stamps = [(*d, lin.g_d), (*g, lin.g_g), (*s, lin.g_s), (*nb, lin.g_b)];
                    if let Some(i) = layout.node_index(*d) {
                        for (node, gval) in stamps {
                            if let Some(j) = layout.node_index(node) {
                                y.add(i, j, Complex::real(gval));
                            }
                        }
                    }
                    if let Some(i) = layout.node_index(*s) {
                        for (node, gval) in stamps {
                            if let Some(j) = layout.node_index(node) {
                                y.add(i, j, Complex::real(-gval));
                            }
                        }
                    }
                }
            }
        }
        solutions.push(solve_complex(&y, &b)?);
    }

    Ok(AcResult {
        circuit: circuit.clone(),
        layout,
        freqs: opts.frequencies.clone(),
        solutions,
    })
}

fn stamp_admittance(
    layout: &SystemLayout,
    y: &mut ComplexMatrix,
    a: crate::netlist::NodeId,
    b: crate::netlist::NodeId,
    adm: Complex,
) {
    if let Some(i) = layout.node_index(a) {
        y.add(i, i, adm);
        if let Some(j) = layout.node_index(b) {
            y.add(i, j, -adm);
        }
    }
    if let Some(j) = layout.node_index(b) {
        y.add(j, j, adm);
        if let Some(i) = layout.node_index(a) {
            y.add(j, i, -adm);
        }
    }
}

fn stamp_transconductance(
    layout: &SystemLayout,
    y: &mut ComplexMatrix,
    out_p: crate::netlist::NodeId,
    out_n: crate::netlist::NodeId,
    ctrl_p: crate::netlist::NodeId,
    ctrl_n: crate::netlist::NodeId,
    gm: f64,
) {
    for (node, sign) in [(out_p, 1.0), (out_n, -1.0)] {
        if let Some(i) = layout.node_index(node) {
            if let Some(cp) = layout.node_index(ctrl_p) {
                y.add(i, cp, Complex::real(sign * gm));
            }
            if let Some(cn) = layout.node_index(ctrl_n) {
                y.add(i, cn, Complex::real(-sign * gm));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;
    use ssn_devices::{AlphaPower, MosModel, MosPolarity};
    use std::sync::Arc;

    #[test]
    fn rc_lowpass_corner() {
        let (r, c) = (1e3, 1e-9);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let mut circuit = Circuit::new();
        circuit
            .vsource("vin", "in", "0", SourceWave::Dc(0.0))
            .unwrap();
        circuit.resistor("r1", "in", "out", r).unwrap();
        circuit.capacitor("c1", "out", "0", c).unwrap();

        let mut opts = AcOptions::log_sweep("vin", fc / 100.0, fc * 100.0, 20);
        // Include the exact corner frequency.
        opts.frequencies.push(fc);
        opts.frequencies
            .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let res = ac_analysis(&circuit, &opts).unwrap();
        let mag = res.magnitude("out").unwrap();
        let idx = res
            .frequencies()
            .iter()
            .position(|&f| (f - fc).abs() < 1e-6)
            .unwrap();
        let at_corner = res.phasor("out", idx).unwrap();
        assert!((at_corner.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-9);
        assert!((at_corner.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-9);
        // -20 dB/decade far above the corner.
        let hi = mag.sample(fc * 100.0);
        let hi10 = mag.sample(fc * 10.0);
        assert!((hi10 / hi - 10.0).abs() < 0.5, "rolloff {hi10}/{hi}");
        // DC passthrough.
        assert!((mag.sample(fc / 100.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rlc_parallel_resonance_peak() {
        // Current-driven L || C || R tank: impedance peaks at f0.
        let (l, c, r) = (5e-9f64, 1e-12f64, 5e3f64);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let mut circuit = Circuit::new();
        circuit
            .isource("iin", "0", "tank", SourceWave::Dc(0.0))
            .unwrap();
        circuit.inductor("l1", "tank", "0", l).unwrap();
        circuit.capacitor("c1", "tank", "0", c).unwrap();
        circuit.resistor("r1", "tank", "0", r).unwrap();

        let opts = AcOptions::log_sweep("iin", f0 / 30.0, f0 * 30.0, 60);
        let res = ac_analysis(&circuit, &opts).unwrap();
        let peak_f = res.peak_frequency("tank").unwrap();
        assert!(
            (peak_f - f0).abs() / f0 < 0.05,
            "resonance at {peak_f:.3e}, expected {f0:.3e}"
        );
        // |Z| at resonance equals R (L and C cancel).
        let mag = res.magnitude("tank").unwrap();
        assert!((mag.peak().value - r).abs() / r < 0.02);
    }

    #[test]
    fn common_source_gain_matches_gm_rl() {
        let model = Arc::new(AlphaPower::builder().build());
        let rl = 500.0;
        let mut circuit = Circuit::new();
        circuit
            .vsource("vdd", "vdd", "0", SourceWave::Dc(1.8))
            .unwrap();
        circuit
            .vsource("vin", "g", "0", SourceWave::Dc(0.9))
            .unwrap();
        circuit.resistor("rl", "vdd", "out", rl).unwrap();
        circuit
            .mosfet("m1", MosPolarity::Nmos, "out", "g", "0", "0", model.clone())
            .unwrap();

        // Expected small-signal gain ~ gm * (RL || ro).
        let op = dc_operating_point(&circuit, DcOptions::default()).unwrap();
        let vout = op.voltage("out").unwrap();
        let e = model.ids(0.9, vout, 0.0);
        let ro = 1.0 / e.gds.max(1e-12);
        let expected = e.gm * (rl * ro) / (rl + ro);

        let opts = AcOptions::log_sweep("vin", 1e3, 1e6, 5);
        let res = ac_analysis(&circuit, &opts).unwrap();
        let gain = res.phasor("out", 0).unwrap();
        assert!(
            (gain.abs() - expected).abs() / expected < 0.01,
            "gain {} vs gm*RL {expected}",
            gain.abs()
        );
        // Inverting stage: ~180 degrees.
        assert!((gain.arg().abs() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn validates_inputs() {
        let mut circuit = Circuit::new();
        circuit
            .vsource("v1", "a", "0", SourceWave::Dc(0.0))
            .unwrap();
        circuit.resistor("r1", "a", "0", 1e3).unwrap();
        let bad_name = AcOptions {
            frequencies: vec![1e3],
            stimulus: "nope".into(),
            magnitude: 1.0,
            dc: DcOptions::default(),
        };
        assert!(ac_analysis(&circuit, &bad_name).is_err());
        let empty = AcOptions {
            frequencies: vec![],
            stimulus: "v1".into(),
            magnitude: 1.0,
            dc: DcOptions::default(),
        };
        assert!(ac_analysis(&circuit, &empty).is_err());
        let not_source = AcOptions {
            frequencies: vec![1e3],
            stimulus: "r1".into(),
            magnitude: 1.0,
            dc: DcOptions::default(),
        };
        assert!(ac_analysis(&circuit, &not_source).is_err());
        let negative = AcOptions {
            frequencies: vec![-1.0, 1e3],
            stimulus: "v1".into(),
            magnitude: 1.0,
            dc: DcOptions::default(),
        };
        assert!(ac_analysis(&circuit, &negative).is_err());
    }

    #[test]
    #[should_panic(expected = "f_lo < f_hi")]
    fn log_sweep_validates_bounds() {
        let _ = AcOptions::log_sweep("v1", 1e6, 1e3, 10);
    }
}
