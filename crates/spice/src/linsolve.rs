//! The per-analysis linear-solver tier: dense LU for small systems, the
//! CSR + GMRES ladder for large ones, and factor reuse for linear circuits.
//!
//! A [`SolverWorkspace`] is created once per analysis (one `transient` or
//! `dc_operating_point` call) and owns the system matrix, the right-hand
//! side, and the factorization caches, so the Newton loop allocates
//! nothing per iteration.
//!
//! Two independent optimizations live here, both provably bit-identical
//! to the naive factor-per-iteration path:
//!
//! * **Linear-circuit hoisting** (used by `newton_solve`): when the
//!   circuit has no diodes or MOSFETs, `A` and `z` do not depend on the
//!   iterate, so every Newton iteration of the original code assembled
//!   and factored the *same* matrix and produced the *same* `x_new`.
//!   Solving once and reusing `x_new` across the damping iterations
//!   reproduces those numbers exactly.
//! * **Cross-step factor caching**: within one transient, steps that
//!   share the companion-model key (`dt` bits + integration method)
//!   assemble bit-identical matrices, so the LU (or ILU) factors are
//!   bit-identical too and can be reused. The adaptive controller settles
//!   onto `dt_max` for long stretches, which is where the cache pays.
//!
//! Above [`SPARSE_DIM_THRESHOLD`] unknowns the workspace switches from
//! dense LU to CSR storage with the `gmres+ilu0 → gmres+jacobi →
//! dense-lu` ladder from [`ssn_numeric::gmres`], mirroring the
//! `newton → brent → bisect` root-finder ladder.

use crate::error::SpiceError;
use crate::netlist::Circuit;
use crate::stamp::{assemble, sparsity_pattern, AnalysisMode, SystemLayout};
use crate::tran::IntegrationMethod;
use ssn_numeric::gmres::{gmres, solve_sparse, GmresOptions, LinearSolveReport, Preconditioner};
use ssn_numeric::lu::LuFactor;
use ssn_numeric::matrix::DenseMatrix;
use ssn_numeric::sparse::{CsrMatrix, Ilu0};

/// Systems with at least this many unknowns use the sparse/GMRES tier;
/// smaller ones stay on dense LU, whose constant factors win there.
pub(crate) const SPARSE_DIM_THRESHOLD: usize = 64;

/// Bounded factor cache: big enough for the handful of distinct `dt`
/// values an adaptive transient revisits (plus the DC homotopy stages),
/// small enough that the linear scan is free.
const FACTOR_CACHE_CAP: usize = 8;

/// Cache key under which an assembled matrix is reproducible: everything
/// `A` depends on besides the circuit itself (for linear circuits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FactorKey {
    /// DC: `A` depends only on the homotopy gmin.
    Dc { gmin: u64 },
    /// Transient: `A` depends on the step size and companion method.
    Tran { dt: u64, method: IntegrationMethod },
}

fn key_of(mode: &AnalysisMode<'_>) -> FactorKey {
    match mode {
        AnalysisMode::Dc { gmin, .. } => FactorKey::Dc {
            gmin: gmin.to_bits(),
        },
        AnalysisMode::Tran { dt, method, .. } => FactorKey::Tran {
            dt: dt.to_bits(),
            method: *method,
        },
    }
}

/// System-matrix storage, chosen once per analysis by dimension.
enum Storage {
    Dense(DenseMatrix),
    Sparse(CsrMatrix),
}

/// Reusable solver state for one analysis of one circuit.
pub(crate) struct SolverWorkspace {
    storage: Storage,
    z: Vec<f64>,
    /// No diodes/MOSFETs: the assembled system is iterate-independent.
    linear: bool,
    /// Factor caching enabled (disable to benchmark the old path).
    reuse: bool,
    dense_cache: Vec<(FactorKey, LuFactor)>,
    ilu_cache: Vec<(FactorKey, Preconditioner)>,
    gmres_opts: GmresOptions,
    /// Convergence report of the most recent sparse solve.
    pub last_report: Option<LinearSolveReport>,
    // Telemetry accumulators, flushed on drop.
    dense_solves: u64,
    sparse_solves: u64,
    factor_hits: u64,
    factor_misses: u64,
    ladder_fallbacks: u64,
}

impl SolverWorkspace {
    /// Builds the workspace for `circuit`, picking dense or sparse storage
    /// by comparing the system dimension against `sparse_threshold`.
    pub(crate) fn new(
        circuit: &Circuit,
        layout: &SystemLayout,
        sparse_threshold: usize,
        reuse: bool,
    ) -> Result<Self, SpiceError> {
        let dim = layout.dim();
        let storage = if dim >= sparse_threshold.max(1) {
            let pattern = sparsity_pattern(circuit, layout);
            Storage::Sparse(CsrMatrix::from_pattern(dim, &pattern)?)
        } else {
            Storage::Dense(DenseMatrix::zeros(dim, dim))
        };
        Ok(Self {
            storage,
            z: vec![0.0; dim],
            linear: circuit.is_linear(),
            reuse,
            dense_cache: Vec::new(),
            ilu_cache: Vec::new(),
            gmres_opts: GmresOptions::default(),
            last_report: None,
            dense_solves: 0,
            sparse_solves: 0,
            factor_hits: 0,
            factor_misses: 0,
            ladder_fallbacks: 0,
        })
    }

    /// True when the sparse/GMRES tier is active.
    #[cfg(test)]
    pub(crate) fn is_sparse(&self) -> bool {
        matches!(self.storage, Storage::Sparse(_))
    }

    /// True when the circuit's MNA system is iterate-independent.
    pub(crate) fn is_linear_circuit(&self) -> bool {
        self.linear
    }

    /// Assembles the system at iterate `x` for `mode` and solves it.
    pub(crate) fn solve(
        &mut self,
        circuit: &Circuit,
        layout: &SystemLayout,
        x: &[f64],
        mode: &AnalysisMode<'_>,
    ) -> Result<Vec<f64>, SpiceError> {
        let cacheable = self.reuse && self.linear;
        match &mut self.storage {
            Storage::Dense(a) => {
                self.dense_solves += 1;
                assemble(circuit, layout, x, mode, a, &mut self.z);
                if cacheable {
                    let key = key_of(mode);
                    if let Some(pos) = self.dense_cache.iter().position(|(k, _)| *k == key) {
                        self.factor_hits += 1;
                        return Ok(self.dense_cache[pos].1.solve(&self.z)?);
                    }
                    let lu = LuFactor::new(a)?;
                    let sol = lu.solve(&self.z)?;
                    self.factor_misses += 1;
                    if self.dense_cache.len() >= FACTOR_CACHE_CAP {
                        self.dense_cache.remove(0);
                    }
                    self.dense_cache.push((key, lu));
                    Ok(sol)
                } else {
                    let lu = LuFactor::new(a)?;
                    Ok(lu.solve(&self.z)?)
                }
            }
            Storage::Sparse(csr) => {
                self.sparse_solves += 1;
                assemble(circuit, layout, x, mode, csr, &mut self.z);
                if cacheable {
                    let key = key_of(mode);
                    let cached = match self.ilu_cache.iter().position(|(k, _)| *k == key) {
                        Some(pos) => {
                            self.factor_hits += 1;
                            Some(pos)
                        }
                        None => match Ilu0::new(csr) {
                            Ok(ilu) => {
                                self.factor_misses += 1;
                                if self.ilu_cache.len() >= FACTOR_CACHE_CAP {
                                    self.ilu_cache.remove(0);
                                }
                                self.ilu_cache.push((key, Preconditioner::Ilu(ilu)));
                                Some(self.ilu_cache.len() - 1)
                            }
                            // ILU breakdown: skip straight to the ladder,
                            // which retries Jacobi and then densifies.
                            Err(_) => None,
                        },
                    };
                    if let Some(pos) = cached {
                        let (sol, report) =
                            gmres(&*csr, &self.z, &self.ilu_cache[pos].1, &self.gmres_opts)?;
                        if report.converged {
                            self.last_report = Some(report);
                            return Ok(sol);
                        }
                        // A stale preconditioner cannot make GMRES converge
                        // to a *wrong* answer, only slowly — but evict it
                        // and fall through to the full ladder anyway.
                        self.ilu_cache.retain(|(k, _)| *k != key);
                    }
                }
                let (sol, report) = solve_sparse(&*csr, &self.z, &self.gmres_opts)?;
                if !report.is_clean() {
                    self.ladder_fallbacks += 1;
                }
                self.last_report = Some(report);
                Ok(sol)
            }
        }
    }
}

impl Drop for SolverWorkspace {
    fn drop(&mut self) {
        for (name, value) in [
            ("spice.linsolve.dense_solves", self.dense_solves),
            ("spice.linsolve.sparse_solves", self.sparse_solves),
            ("spice.linsolve.factor_hits", self.factor_hits),
            ("spice.linsolve.factor_misses", self.factor_misses),
            ("spice.linsolve.ladder_fallbacks", self.ladder_fallbacks),
        ] {
            if value > 0 {
                ssn_telemetry::add(name, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;
    use crate::tran::{transient, TranOptions};

    /// A vsource-driven RC ladder with `n` sections (dim = n + 2).
    fn rc_ladder(n: usize) -> Circuit {
        let mut c = Circuit::new();
        c.vsource("vin", "n0", "0", SourceWave::ramp(0.0, 1.0, 1e-9, 1e-9))
            .unwrap();
        for i in 0..n {
            c.resistor(
                &format!("r{i}"),
                &format!("n{i}"),
                &format!("n{}", i + 1),
                100.0,
            )
            .unwrap();
            c.capacitor(&format!("c{i}"), &format!("n{}", i + 1), "0", 1e-12)
                .unwrap();
        }
        c
    }

    #[test]
    fn workspace_picks_tier_by_threshold() {
        let c = rc_ladder(10);
        let layout = SystemLayout::new(&c);
        let dense = SolverWorkspace::new(&c, &layout, usize::MAX, true).unwrap();
        assert!(!dense.is_sparse());
        let sparse = SolverWorkspace::new(&c, &layout, 1, true).unwrap();
        assert!(sparse.is_sparse());
        assert!(sparse.is_linear_circuit());
    }

    #[test]
    fn sparse_tier_transient_matches_dense_tier() {
        let c = rc_ladder(30);
        let mut opts = TranOptions::to(10e-9);
        opts.newton.sparse_dim_threshold = usize::MAX;
        let dense = transient(&c, opts.clone()).unwrap();
        opts.newton.sparse_dim_threshold = 1;
        let sparse = transient(&c, opts).unwrap();
        let wd = dense.voltage("n30").unwrap();
        let ws = sparse.voltage("n30").unwrap();
        let err = wd.max_abs_error(&ws).unwrap();
        assert!(err < 1e-6, "sparse and dense tiers disagree by {err}");
    }

    /// The satellite-2 contract: factor reuse must not change a single
    /// bit of the trajectory relative to the factor-per-iteration path.
    #[test]
    fn factor_reuse_is_bit_identical_on_linear_circuits() {
        let mut c = rc_ladder(8);
        // An inductor too, so branch equations hit the cache path.
        c.inductor("l0", "n8", "tail", 1e-9).unwrap();
        c.resistor("rt", "tail", "0", 50.0).unwrap();
        let mut opts = TranOptions::to(10e-9);
        opts.reuse_factor = true;
        let reused = transient(&c, opts.clone()).unwrap();
        opts.reuse_factor = false;
        let fresh = transient(&c, opts).unwrap();
        assert_eq!(reused.times, fresh.times, "timestep trajectories differ");
        assert_eq!(reused.states, fresh.states, "solution vectors differ");
        assert_eq!(reused.newton_iterations, fresh.newton_iterations);
        assert_eq!(reused.rejected_steps, fresh.rejected_steps);
    }
}
