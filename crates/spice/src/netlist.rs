//! Circuit (netlist) construction.

use crate::error::SpiceError;
use crate::source::SourceWave;
use ssn_devices::{MosModel, MosPolarity};
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// The ground node (named `"0"` or `"gnd"`).
pub const GROUND: NodeId = NodeId(0);

impl NodeId {
    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// One circuit element.
#[derive(Debug, Clone)]
pub enum ElementKind {
    /// Linear resistor between two nodes.
    Resistor {
        /// Positive terminal.
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Resistance in ohms (> 0).
        ohms: f64,
    },
    /// Linear capacitor between two nodes.
    Capacitor {
        /// Positive terminal.
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Capacitance in farads (> 0).
        farads: f64,
        /// Optional initial voltage `v(a) - v(b)` used when the transient
        /// starts from initial conditions.
        ic: Option<f64>,
    },
    /// Linear inductor between two nodes (branch-current unknown).
    Inductor {
        /// Positive terminal (current flows `a -> b` when positive).
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Inductance in henrys (> 0).
        henrys: f64,
        /// Optional initial branch current.
        ic: Option<f64>,
    },
    /// Independent voltage source (branch-current unknown).
    VSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// The source waveform.
        wave: SourceWave,
    },
    /// Independent current source (current flows from `pos` through the
    /// source to `neg`, i.e. it *injects* into `neg`'s node equation).
    ISource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// The source waveform.
        wave: SourceWave,
    },
    /// Voltage-controlled current source: `i(out_p -> out_n) = gm * (v(ctrl_p) - v(ctrl_n))`.
    Vccs {
        /// Output positive terminal.
        out_p: NodeId,
        /// Output negative terminal.
        out_n: NodeId,
        /// Control positive terminal.
        ctrl_p: NodeId,
        /// Control negative terminal.
        ctrl_n: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// A pn-junction diode (current flows anode -> cathode when forward
    /// biased).
    Diode {
        /// Anode.
        a: NodeId,
        /// Cathode.
        k: NodeId,
        /// The junction model.
        model: ssn_devices::Diode,
    },
    /// A MOSFET evaluated through a [`MosModel`].
    Mosfet {
        /// Channel polarity.
        polarity: MosPolarity,
        /// Drain node.
        d: NodeId,
        /// Gate node.
        g: NodeId,
        /// Source node.
        s: NodeId,
        /// Bulk node.
        b: NodeId,
        /// The compact model.
        model: Arc<dyn MosModel>,
    },
}

/// A named element instance.
#[derive(Debug, Clone)]
pub struct Element {
    pub(crate) name: String,
    pub(crate) kind: ElementKind,
}

impl Element {
    /// The element's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element's kind and connectivity.
    pub fn kind(&self) -> &ElementKind {
        &self.kind
    }
}

/// A circuit under construction.
///
/// Nodes are created implicitly the first time a name is referenced; the
/// names `"0"` and `"gnd"` (any case) are the ground node.
///
/// # Examples
///
/// ```
/// use ssn_spice::{Circuit, SourceWave};
///
/// # fn main() -> Result<(), ssn_spice::SpiceError> {
/// let mut c = Circuit::new();
/// c.vsource("vdd", "vdd", "0", SourceWave::Dc(1.8))?;
/// c.resistor("rload", "vdd", "out", 10e3)?;
/// c.capacitor("cl", "out", "gnd", 50e-15)?;
/// assert_eq!(c.node_count(), 3); // gnd, vdd, out
/// assert_eq!(c.element_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_map: HashMap<String, NodeId>,
    elements: Vec<Element>,
    element_names: HashMap<String, usize>,
    /// Initial node voltages for `use_ic` transients.
    node_ic: HashMap<NodeId, f64>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Self {
            node_names: vec!["0".to_owned()],
            node_map: HashMap::new(),
            elements: Vec::new(),
            element_names: HashMap::new(),
            node_ic: HashMap::new(),
        };
        c.node_map.insert("0".to_owned(), GROUND);
        c
    }

    /// Resolves (or creates) the node named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidNode`] for an empty name.
    pub fn node(&mut self, name: &str) -> Result<NodeId, SpiceError> {
        if name.is_empty() {
            return Err(SpiceError::InvalidNode { name: name.into() });
        }
        let key = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        if let Some(&id) = self.node_map.get(key) {
            return Ok(id);
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(key.to_owned());
        self.node_map.insert(key.to_owned(), id);
        Ok(id)
    }

    /// Looks up an existing node without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        let key = if name.eq_ignore_ascii_case("gnd") {
            "0"
        } else {
            name
        };
        self.node_map.get(key).copied()
    }

    /// The name of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total node count, including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// True when the circuit contains no element that needs Newton
    /// linearization around the iterate (no diodes or MOSFETs), so one
    /// linear solve per analysis point is exact.
    pub fn is_linear(&self) -> bool {
        !self.elements.iter().any(|e| {
            matches!(
                e.kind(),
                ElementKind::Diode { .. } | ElementKind::Mosfet { .. }
            )
        })
    }

    /// Finds an element by instance name. Exact match first, then (SPICE
    /// tradition) case-insensitive.
    pub fn find_element(&self, name: &str) -> Option<&Element> {
        if let Some(&i) = self.element_names.get(name) {
            return Some(&self.elements[i]);
        }
        self.elements
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// Sets the initial voltage of a node for `use_ic` transients.
    ///
    /// # Errors
    ///
    /// Propagates node-name validation errors.
    pub fn set_initial_voltage(&mut self, node: &str, volts: f64) -> Result<(), SpiceError> {
        let id = self.node(node)?;
        self.node_ic.insert(id, volts);
        Ok(())
    }

    /// The configured initial node voltages.
    pub fn initial_voltages(&self) -> &HashMap<NodeId, f64> {
        &self.node_ic
    }

    fn add(&mut self, name: &str, kind: ElementKind) -> Result<(), SpiceError> {
        if name.is_empty() {
            return Err(SpiceError::InvalidElement {
                context: "element name must not be empty".into(),
            });
        }
        if self.element_names.contains_key(name) {
            return Err(SpiceError::InvalidElement {
                context: format!("duplicate element name {name:?}"),
            });
        }
        self.element_names
            .insert(name.to_owned(), self.elements.len());
        self.elements.push(Element {
            name: name.to_owned(),
            kind,
        });
        Ok(())
    }

    fn positive(value: f64, what: &str, name: &str) -> Result<(), SpiceError> {
        if !(value.is_finite() && value > 0.0) {
            return Err(SpiceError::InvalidValue {
                context: format!("{what} of {name:?} must be positive and finite, got {value}"),
            });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Invalid names, duplicate element names, or a non-positive value.
    pub fn resistor(&mut self, name: &str, a: &str, b: &str, ohms: f64) -> Result<(), SpiceError> {
        Self::positive(ohms, "resistance", name)?;
        let (a, b) = (self.node(a)?, self.node(b)?);
        self.add(name, ElementKind::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Invalid names, duplicate element names, or a non-positive value.
    pub fn capacitor(
        &mut self,
        name: &str,
        a: &str,
        b: &str,
        farads: f64,
    ) -> Result<(), SpiceError> {
        Self::positive(farads, "capacitance", name)?;
        let (a, b) = (self.node(a)?, self.node(b)?);
        self.add(
            name,
            ElementKind::Capacitor {
                a,
                b,
                farads,
                ic: None,
            },
        )
    }

    /// Adds a capacitor with an explicit initial voltage (used by `use_ic`
    /// transients).
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::capacitor`].
    pub fn capacitor_with_ic(
        &mut self,
        name: &str,
        a: &str,
        b: &str,
        farads: f64,
        ic: f64,
    ) -> Result<(), SpiceError> {
        Self::positive(farads, "capacitance", name)?;
        let (a, b) = (self.node(a)?, self.node(b)?);
        self.add(
            name,
            ElementKind::Capacitor {
                a,
                b,
                farads,
                ic: Some(ic),
            },
        )
    }

    /// Adds an inductor (initial current 0 unless set by
    /// [`Circuit::inductor_with_ic`]).
    ///
    /// # Errors
    ///
    /// Invalid names, duplicate element names, or a non-positive value.
    pub fn inductor(
        &mut self,
        name: &str,
        a: &str,
        b: &str,
        henrys: f64,
    ) -> Result<(), SpiceError> {
        Self::positive(henrys, "inductance", name)?;
        let (a, b) = (self.node(a)?, self.node(b)?);
        self.add(
            name,
            ElementKind::Inductor {
                a,
                b,
                henrys,
                ic: None,
            },
        )
    }

    /// Adds an inductor with an explicit initial current.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::inductor`].
    pub fn inductor_with_ic(
        &mut self,
        name: &str,
        a: &str,
        b: &str,
        henrys: f64,
        ic: f64,
    ) -> Result<(), SpiceError> {
        Self::positive(henrys, "inductance", name)?;
        let (a, b) = (self.node(a)?, self.node(b)?);
        self.add(
            name,
            ElementKind::Inductor {
                a,
                b,
                henrys,
                ic: Some(ic),
            },
        )
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// Invalid names or duplicate element names.
    pub fn vsource(
        &mut self,
        name: &str,
        pos: &str,
        neg: &str,
        wave: SourceWave,
    ) -> Result<(), SpiceError> {
        let (pos, neg) = (self.node(pos)?, self.node(neg)?);
        self.add(name, ElementKind::VSource { pos, neg, wave })
    }

    /// Adds an independent current source (`pos -> neg` through the source).
    ///
    /// # Errors
    ///
    /// Invalid names or duplicate element names.
    pub fn isource(
        &mut self,
        name: &str,
        pos: &str,
        neg: &str,
        wave: SourceWave,
    ) -> Result<(), SpiceError> {
        let (pos, neg) = (self.node(pos)?, self.node(neg)?);
        self.add(name, ElementKind::ISource { pos, neg, wave })
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Errors
    ///
    /// Invalid names or duplicate element names.
    pub fn vccs(
        &mut self,
        name: &str,
        out_p: &str,
        out_n: &str,
        ctrl_p: &str,
        ctrl_n: &str,
        gm: f64,
    ) -> Result<(), SpiceError> {
        if !gm.is_finite() {
            return Err(SpiceError::InvalidValue {
                context: format!("gm of {name:?} must be finite"),
            });
        }
        let out_p = self.node(out_p)?;
        let out_n = self.node(out_n)?;
        let ctrl_p = self.node(ctrl_p)?;
        let ctrl_n = self.node(ctrl_n)?;
        self.add(
            name,
            ElementKind::Vccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                gm,
            },
        )
    }

    /// Adds a pn-junction diode (anode, cathode).
    ///
    /// # Errors
    ///
    /// Invalid names or duplicate element names.
    pub fn diode(
        &mut self,
        name: &str,
        anode: &str,
        cathode: &str,
        model: ssn_devices::Diode,
    ) -> Result<(), SpiceError> {
        let a = self.node(anode)?;
        let k = self.node(cathode)?;
        self.add(name, ElementKind::Diode { a, k, model })
    }

    /// Adds a MOSFET with terminal order drain, gate, source, bulk.
    ///
    /// # Errors
    ///
    /// Invalid names or duplicate element names.
    // Four terminals plus polarity and model are inherent to the device.
    #[allow(clippy::too_many_arguments)]
    pub fn mosfet(
        &mut self,
        name: &str,
        polarity: MosPolarity,
        d: &str,
        g: &str,
        s: &str,
        b: &str,
        model: Arc<dyn MosModel>,
    ) -> Result<(), SpiceError> {
        let d = self.node(d)?;
        let g = self.node(g)?;
        let s = self.node(s)?;
        let b = self.node(b)?;
        self.add(
            name,
            ElementKind::Mosfet {
                polarity,
                d,
                g,
                s,
                b,
                model,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssn_devices::AlphaPower;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0").unwrap(), GROUND);
        assert_eq!(c.node("gnd").unwrap(), GROUND);
        assert_eq!(c.node("GND").unwrap(), GROUND);
        assert!(GROUND.is_ground());
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn nodes_are_interned() {
        let mut c = Circuit::new();
        let a = c.node("a").unwrap();
        let a2 = c.node("a").unwrap();
        assert_eq!(a, a2);
        assert!(!a.is_ground());
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("zzz"), None);
    }

    #[test]
    fn element_name_uniqueness() {
        let mut c = Circuit::new();
        c.resistor("r1", "a", "0", 1.0).unwrap();
        let err = c.resistor("r1", "b", "0", 1.0).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidElement { .. }));
        assert!(c.find_element("r1").is_some());
        assert!(c.find_element("r2").is_none());
    }

    #[test]
    fn value_validation() {
        let mut c = Circuit::new();
        assert!(c.resistor("r", "a", "0", 0.0).is_err());
        assert!(c.capacitor("c", "a", "0", -1e-12).is_err());
        assert!(c.inductor("l", "a", "0", f64::NAN).is_err());
        assert!(c.vccs("g", "a", "0", "b", "0", f64::INFINITY).is_err());
        assert!(c.node("").is_err());
    }

    #[test]
    fn initial_conditions_recorded() {
        let mut c = Circuit::new();
        c.set_initial_voltage("out", 1.8).unwrap();
        c.capacitor_with_ic("cl", "out", "0", 1e-12, 1.8).unwrap();
        c.inductor_with_ic("lg", "vg", "0", 5e-9, 1e-3).unwrap();
        let out = c.find_node("out").unwrap();
        assert_eq!(c.initial_voltages()[&out], 1.8);
        match c.find_element("cl").unwrap().kind() {
            ElementKind::Capacitor { ic, .. } => assert_eq!(*ic, Some(1.8)),
            _ => panic!("wrong kind"),
        }
        match c.find_element("lg").unwrap().kind() {
            ElementKind::Inductor { ic, .. } => assert_eq!(*ic, Some(1e-3)),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn mosfet_addition() {
        let mut c = Circuit::new();
        let m = std::sync::Arc::new(AlphaPower::builder().build());
        c.mosfet("m1", MosPolarity::Nmos, "d", "g", "s", "0", m)
            .unwrap();
        assert_eq!(c.element_count(), 1);
        assert_eq!(c.node_count(), 4); // gnd, d, g, s
        assert_eq!(c.elements()[0].name(), "m1");
    }
}
