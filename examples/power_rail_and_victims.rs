//! Rail duality, victim coupling, and staggered switching.
//!
//! The paper analyzes the ground rail and notes the power rail is
//! symmetric; its intro motivates SSN through glitches coupled onto quiet
//! outputs. This example simulates all three effects on the same bank.
//!
//! Run with `cargo run --release --example power_rail_and_victims`.

use ssn_lab::core::bridge::{measure, DriverBankConfig, Stagger};
use ssn_lab::core::design;
use ssn_lab::core::scenario::{Rail, SsnScenario};
use ssn_lab::devices::process::Process;
use ssn_lab::units::{Seconds, Volts};
use ssn_lab::waveform::AsciiPlot;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let process = Process::p018();
    let cfg = DriverBankConfig::from_process(&process, 8);

    // 1. Ground bounce vs. power droop (rail duality).
    let ground = measure(&cfg)?;
    let power = measure(&cfg.clone().with_rail(Rail::Power))?;
    println!("rail duality (N = 8, PGA package):");
    println!("  ground bounce peak: {}", ground.vn_max);
    println!("  supply droop peak:  {}", power.vn_max);
    let plot = AsciiPlot::new(64, 12)
        .with_trace("ground bounce", &ground.ground_bounce)
        .with_trace("supply droop", &power.ground_bounce)
        .with_labels("time (s)", "rail disturbance (V)");
    println!("{plot}");

    // 2. Victim glitch: a quiet LOW output sharing the bouncing ground.
    let with_victim = measure(&cfg.clone().with_victim())?;
    let glitch = with_victim.victim_glitch.as_ref().expect("victim enabled");
    println!(
        "victim glitch: a logic-LOW output glitches to {} while its\n\
         neighbours switch ({}% of the bounce itself) — the noise-margin\n\
         erosion the paper's introduction warns about.",
        Volts::new(glitch.peak().value),
        (glitch.peak().value / with_victim.ground_bounce.peak().value * 100.0).round()
    );

    // 3. Staggered switching, planned analytically and verified in the
    //    simulator.
    let scenario = SsnScenario::builder(&process).drivers(8).build()?;
    let budget = Volts::new(0.35);
    let plan = design::stagger_plan(&scenario, budget)?;
    println!("\nstagger plan for a {budget} budget: {plan}");
    let staggered = measure(&cfg.clone().with_stagger(Stagger {
        groups: plan.groups,
        group_delay: plan.group_delay.max(Seconds::from_nanos(1.0)),
    }))?;
    println!(
        "simultaneous switch: {}  |  staggered per plan: {}  (budget {budget})",
        ground.vn_max, staggered.vn_max
    );
    if staggered.vn_max <= Volts::new(budget.value() * 1.1) {
        println!("the plan holds in the full nonlinear simulation (within model margin).");
    }
    Ok(())
}
