//! Simulating a realistic pad-ring deck: `.include`d cell library,
//! `.subckt` driver slices, and ESD clamp diodes — all from plain SPICE
//! text in `decks/`.
//!
//! Run with `cargo run --example pad_ring_deck` (from the repo root, so
//! the relative deck path resolves).

use ssn_lab::spice::parser::parse_deck_file;
use ssn_lab::spice::transient;
use ssn_lab::waveform::AsciiPlot;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let deck = parse_deck_file("decks/pad_ring.sp")?;
    println!(
        "{}: {} elements, {} nodes after subckt expansion",
        deck.title,
        deck.circuit.element_count(),
        deck.circuit.node_count()
    );

    let tran = deck.tran.expect("deck has .tran");
    let result = transient(&deck.circuit, tran.to_options())?;
    let vn = result.voltage("ng")?;
    let out = result.voltage("out0")?;
    println!(
        "clamped ground bounce: {:.1} mV peak; slice output settles at {:.3} V",
        vn.peak().value * 1e3,
        result.final_voltage("out0")?
    );
    let plot = AsciiPlot::new(64, 12)
        .with_trace("Vn (clamped)", &vn)
        .with_trace("out0", &out)
        .with_labels("time (s)", "V");
    println!("{plot}");
    println!(
        "compare with `ssn estimate --process p018 --drivers 8`: the\n\
         unclamped Table-1 estimate is the conservative bound the clamp\n\
         then clips (see EXPERIMENTS.md, EXT8)."
    );
    Ok(())
}
