//! Quickstart: estimate the ground bounce of a pad ring and check the
//! estimate against the transient simulator.
//!
//! Run with `cargo run --example quickstart`.

use ssn_lab::core::bridge::{measure, DriverBankConfig};
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{lcmodel, lmodel};
use ssn_lab::devices::process::Process;
use ssn_lab::units::Seconds;
use ssn_lab::waveform::AsciiPlot;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Pick a process; the scenario builder fits the paper's ASDM to the
    //    process's golden output driver automatically.
    let process = Process::p018();
    let scenario = SsnScenario::builder(&process)
        .drivers(8)
        .rise_time(Seconds::from_nanos(0.5))
        .build()?;

    println!("scenario: {scenario}");
    println!(
        "fitted ASDM: {} (V0 vs device Vth {} — note V0 > Vth, paper Section 2)",
        scenario.asdm(),
        process.vth0()
    );

    // 2. Closed-form estimates.
    let l_only = lmodel::vn_max(&scenario);
    let (lc, case) = lcmodel::vn_max(&scenario);
    println!("\nL-only model (Eqn. 7):   Vn_max = {l_only}");
    println!("LC model (Table 1):      Vn_max = {lc}   [{case}]");
    println!(
        "damping: {} ; critical capacitance C_m = {}",
        lcmodel::classify(&scenario),
        lcmodel::critical_capacitance(&scenario),
    );

    // 3. Validate against the nonlinear golden-device simulation (the
    //    paper's HSPICE role).
    let cfg = DriverBankConfig::from_scenario(&scenario, Arc::new(process.output_driver()));
    let sim = measure(&cfg)?;
    let rel = (lc.value() - sim.vn_max.value()).abs() / sim.vn_max.value() * 100.0;
    println!("\nsimulated:               Vn_max = {} ", sim.vn_max);
    println!("LC model vs simulation:  {rel:.2}% relative error");

    // 4. Plot model vs simulation.
    let model_wave = lcmodel::vn_waveform(&scenario, 200)?;
    let plot = AsciiPlot::new(64, 14)
        .with_trace("model Vn(t)", &model_wave)
        .with_trace("simulated Vn(t)", &sim.ground_bounce)
        .with_labels("time (s)", "ground bounce (V)");
    println!("\n{plot}");
    Ok(())
}
