//! Driving the simulator from a SPICE-style netlist deck.
//!
//! Everything in the suite is also reachable without the Rust builder API:
//! write the SSN circuit as a classic deck, parse, simulate, probe.
//!
//! Run with `cargo run --example spice_deck`.

use ssn_lab::spice::parser::parse_deck;
use ssn_lab::spice::transient;
use ssn_lab::waveform::AsciiPlot;
use std::error::Error;

const DECK: &str = "\
ssn driver bank: 4 drivers, PGA ground path
* golden 0.18 um output NFET as an alpha-power .model card
.model drv NMOS vth0=0.43 gamma=0.3 phi=0.8 alpha=1.24 b=6.1m kd=0.66 lambda=0.05

* input: 0 -> 1.8 V ramp, 0.5 ns, after 50 ps of quiet
Vin in 0 PWL(0 0 50p 0 550p 1.8)

* package ground path (PGA): 5 nH bond + 1 pF pad
Lg ng 0 5n IC=0
Cg ng 0 1p IC=0

* the bank: drains precharged high through 5 pF loads
M0 out0 in ng 0 drv
M1 out1 in ng 0 drv
M2 out2 in ng 0 drv
M3 out3 in ng 0 drv
Cl0 out0 0 5p IC=1.8
Cl1 out1 0 5p IC=1.8
Cl2 out2 0 5p IC=1.8
Cl3 out3 0 5p IC=1.8

.ic V(ng)=0 V(in)=0 V(out0)=1.8 V(out1)=1.8 V(out2)=1.8 V(out3)=1.8
.tran 1p 1.3n UIC
.end
";

fn main() -> Result<(), Box<dyn Error>> {
    let deck = parse_deck(DECK)?;
    println!(
        "parsed {:?}: {} elements, {} nodes",
        deck.title,
        deck.circuit.element_count(),
        deck.circuit.node_count()
    );
    let tran = deck.tran.expect("deck has a .tran card");
    let result = transient(&deck.circuit, tran.to_options())?;

    let vn = result.voltage("ng")?;
    let vin = result.voltage("in")?;
    let il = result.branch_current("lg")?;
    println!(
        "ground bounce peak: {:.1} mV at {:.0} ps; inductor current peak {:.1} mA",
        vn.peak().value * 1e3,
        vn.peak().time * 1e12,
        il.peak().value * 1e3
    );
    let plot = AsciiPlot::new(64, 12)
        .with_trace("VIN", &vin)
        .with_trace("Vn (ground)", &vn)
        .with_labels("time (s)", "V");
    println!("{plot}");

    // The same deck with W=2 drivers (double-width bank) via one edit:
    let wide = DECK.replace("ng 0 drv", "ng 0 drv W=2");
    let deck2 = parse_deck(&wide)?;
    let r2 = transient(&deck2.circuit, deck2.tran.expect("tran").to_options())?;
    println!(
        "with W=2 drivers the bounce grows: {:.1} mV -> {:.1} mV",
        vn.peak().value * 1e3,
        r2.voltage("ng")?.peak().value * 1e3
    );
    Ok(())
}
