//! Damping-region exploration across package configurations.
//!
//! Reproduces the qualitative message of paper Section 4: whether the
//! parasitic capacitance matters depends on where the design sits relative
//! to the critical capacitance `C_m = (N K sigma)^2 L / 4`, and doubling
//! ground pads (halving L, doubling C) pushes the system toward the
//! under-damped region where the L-only formulas break down.
//!
//! Run with `cargo run --example package_explorer`.

use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{lcmodel, lmodel, Damping};
use ssn_lab::devices::process::{PackageParasitics, Process};
use ssn_lab::units::Seconds;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let process = Process::p018();
    let base = SsnScenario::builder(&process)
        .drivers(8)
        .rise_time(Seconds::from_nanos(0.5))
        .build()?;

    println!("Damping map: rows = driver count N, columns = ground pads");
    println!("(o = over-damped, c = critical, u = under-damped; paper Eqn. 27)\n");
    print!("{:>4} |", "N");
    for pads in 1..=6 {
        print!(" {pads:>5}");
    }
    println!("\n-----+{}", "-".repeat(36));
    for n in [1usize, 2, 3, 4, 6, 8, 12, 16, 24] {
        print!("{n:>4} |");
        for pads in 1..=6usize {
            let pkg = PackageParasitics::pga().with_ground_pads(pads);
            let s = base
                .with_drivers(n)?
                .with_package(pkg.inductance, pkg.capacitance)?;
            let mark = match lcmodel::classify(&s) {
                Damping::Overdamped { .. } => 'o',
                Damping::CriticallyDamped { .. } => 'c',
                Damping::Underdamped { .. } => 'u',
            };
            print!(" {mark:>5}");
        }
        println!();
    }

    println!("\nWhere the L-only model is adequate (paper Fig. 4's message):");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>10}",
        "N", "L-only", "LC (Table 1)", "C_m", "region"
    );
    for n in [1usize, 2, 3, 4, 8, 16] {
        let s = base.with_drivers(n)?;
        let l_only = lmodel::vn_max(&s);
        let (lc, _) = lcmodel::vn_max(&s);
        let cm = lcmodel::critical_capacitance(&s);
        let region = lcmodel::classify(&s).to_string();
        println!(
            "{n:>4} {:>14} {:>14} {:>14} {:>10}",
            l_only.to_string(),
            lc.to_string(),
            cm.to_string(),
            region
        );
    }
    println!(
        "\nNote how the two models agree once C < C_m (over-damped, large N)\n\
         and split in the under-damped, small-N corner — the paper's core\n\
         quantitative finding."
    );
    Ok(())
}
