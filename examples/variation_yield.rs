//! Monte Carlo yield analysis of an SSN budget under process and package
//! variation.
//!
//! Run with `cargo run --release --example variation_yield`.

use ssn_lab::core::montecarlo::{run_monte_carlo, VariationSpec};
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{design, lcmodel};
use ssn_lab::devices::process::Process;
use ssn_lab::units::{Seconds, Volts};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let process = Process::p018();
    let scenario = SsnScenario::builder(&process)
        .drivers(8)
        .rise_time(Seconds::from_nanos(0.5))
        .build()?;
    let nominal = lcmodel::vn_max(&scenario).0;
    println!("nominal Vn_max: {nominal}");

    let spec = VariationSpec::typical();
    let mc = run_monte_carlo(&scenario, &spec, 5000, 0xD1CE)?;
    println!(
        "5000-sample Monte Carlo: mean {} sd {} | q50 {} q95 {} q99 {}",
        mc.mean(),
        mc.std_dev(),
        mc.quantile(0.50),
        mc.quantile(0.95),
        mc.quantile(0.99),
    );

    println!("\nyield vs. noise budget:");
    println!("{:>10} {:>8}", "budget", "yield");
    for frac in [0.9, 1.0, 1.05, 1.1, 1.2, 1.3] {
        let budget = Volts::new(nominal.value() * frac);
        println!(
            "{:>10} {:>7.1}%",
            budget.to_string(),
            mc.yield_within(budget) * 100.0
        );
    }

    // How a designer closes the loop: pick a budget, hold the q99 corner.
    let budget = Volts::new(0.6);
    let corner = mc.quantile(0.99);
    println!("\nfor a hard {budget} budget: the 99th-percentile corner is {corner}, so");
    if corner <= budget {
        println!("the design passes with margin {}", budget - corner);
    } else {
        let n_ok = design::max_simultaneous_drivers(
            &scenario,
            Volts::new(budget.value() / (corner.value() / nominal.value())),
        )?;
        println!(
            "derate the nominal target by the corner ratio: limit simultaneous\n\
             switching to {n_ok} drivers (from 8) to pass at the q99 corner."
        );
    }
    Ok(())
}
