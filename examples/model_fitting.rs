//! Application-specific device modeling (ASDM) fitting walkthrough.
//!
//! Reproduces the methodology of paper Section 2 / Fig. 1: sample the
//! golden short-channel device over the SSN operating region, fit the
//! three-parameter linear ASDM, and inspect where it is (and is not)
//! accurate.
//!
//! Run with `cargo run --example model_fitting`.

use ssn_lab::devices::fit::{
    asdm_fit_report, fit_alpha_power, fit_asdm, sample_ssn_region, SsnRegionSpec,
};
use ssn_lab::devices::process::Process;
use ssn_lab::devices::MosModel;
use ssn_lab::units::Volts;
use ssn_lab::waveform::{AsciiPlot, Waveform};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    for process in Process::all() {
        let driver = process.output_driver();
        let spec = SsnRegionSpec::for_process(&process);
        let samples = sample_ssn_region(&driver, &spec);
        let asdm = fit_asdm(&samples)?;
        let report = asdm_fit_report(&asdm, &samples)?;

        println!("== process {} (Vdd = {}) ==", process.name(), process.vdd());
        println!(
            "  golden device: alpha-power, Vth0 = {}, alpha = {:.2}",
            process.vth0(),
            driver.alpha()
        );
        println!("  fitted {asdm}");
        println!(
            "  fit quality: rms = {:.3} mA, worst rel = {:.1}% over {} samples",
            report.rms_error * 1e3,
            report.max_rel_error * 100.0,
            report.n_samples
        );
        println!(
            "  note: V0 = {} > Vth0 = {} and sigma > 1, as the paper reports\n",
            asdm.v0(),
            process.vth0()
        );
    }

    // Fig. 1 style: I-V curves of the golden 0.18 um device with the ASDM
    // overlay, at several source voltages.
    let process = Process::p018();
    let driver = process.output_driver();
    let samples = sample_ssn_region(&driver, &SsnRegionSpec::for_process(&process));
    let asdm = fit_asdm(&samples)?;
    let vdd = process.vdd().value();

    let mut plot = AsciiPlot::new(64, 16).with_labels("V_G (V)", "I_D (A)");
    for (i, vs) in [0.0, 0.4, 0.8].into_iter().enumerate() {
        let golden = Waveform::from_fn(0.0, vdd, 100, |vg| driver.ids(vg - vs, vdd - vs, -vs).id)?;
        let linear = Waveform::from_fn(0.0, vdd, 100, |vg| {
            asdm.drain_current(Volts::new(vg), Volts::new(vs)).value()
        })?;
        plot = plot
            .with_trace(format!("golden Vs={vs}"), &golden)
            .with_trace(format!("ASDM   Vs={vs}"), &linear);
        let _ = i;
    }
    println!("{plot}");

    // Contrast: what a general-purpose alpha-power fit recovers from the
    // same grounded-source data.
    let ap = fit_alpha_power(&samples, 0.4)?;
    println!(
        "general-purpose alpha-power refit: Vth = {:.3} V, alpha = {:.3}, B = {:.3} mA/V^a",
        ap.vth0(),
        ap.alpha(),
        ap.drive() * 1e3
    );
    println!(
        "the ASDM instead spends its three parameters on ONE region — which is\n\
         why its SSN formulas need no further approximation (paper Section 2)."
    );
    Ok(())
}
