//! SSN-aware pad-ring design: size a driver bank against a noise budget.
//!
//! Exercises the design-space utilities of paper Section 3: the Z-figure,
//! driver-count budgets, slew control, and switching-skew scheduling.
//!
//! Run with `cargo run --example pad_ring_design`.

use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{design, lcmodel};
use ssn_lab::devices::process::{PackageParasitics, Process};
use ssn_lab::units::{Seconds, Volts};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let process = Process::p018();
    // A 32-bit output bus that would like to switch all at once.
    let bus = SsnScenario::builder(&process)
        .drivers(32)
        .rise_time(Seconds::from_nanos(0.5))
        .build()?;
    let budget = Volts::new(0.45); // 25% of Vdd

    let (unmitigated, case) = lcmodel::vn_max(&bus);
    println!("32-bit bus, all switching:  Vn_max = {unmitigated} [{case}]");
    println!("noise budget:               {budget}\n");

    // Option A: limit how many drivers switch together.
    let n_ok = design::max_simultaneous_drivers(&bus, budget)?;
    println!("A. simultaneous switching limit: {n_ok} drivers");

    // Option B: slow the output edges.
    let tr = design::required_rise_time(&bus, budget)?;
    println!("B. slew control: rise time >= {tr} keeps all 32 within budget");

    // Option C: stagger the bus into groups.
    let plan = design::stagger_plan(&bus, budget)?;
    println!("C. skew schedule: {plan}");

    // Option D: spend package resources — more ground pads.
    println!("\nD. ground-pad scaling (L/n, C*n):");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>24}",
        "pads", "L", "C", "Vn_max", "damping"
    );
    for pads in [1usize, 2, 4, 8] {
        let pkg = PackageParasitics::pga().with_ground_pads(pads);
        let s = bus.with_package(pkg.inductance, pkg.capacitance)?;
        let (v, _) = lcmodel::vn_max(&s);
        println!(
            "{:>6} {:>12} {:>12} {:>14} {:>24}",
            pads,
            pkg.inductance.to_string(),
            pkg.capacitance.to_string(),
            v.to_string(),
            lcmodel::classify(&s).to_string()
        );
    }

    // The Z-figure makes the equivalences explicit.
    println!(
        "\nZ = N*L*s = {:.1} (halve any factor and Vn_max drops identically)",
        bus.z_figure()
    );
    Ok(())
}
