#![warn(missing_docs)]

//! # ssn-lab
//!
//! A reproduction of *Ding & Mazumder, "Accurate Estimating Simultaneous
//! Switching Noises by Using Application Specific Device Modeling"
//! (DATE 2002)* as a production-quality Rust workspace.
//!
//! This meta-crate re-exports the whole suite:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`units`] | `ssn-units` | typed physical quantities |
//! | [`numeric`] | `ssn-numeric` | LU, root finding, least squares, ODE |
//! | [`devices`] | `ssn-devices` | MOSFET models, ASDM, fitting, processes |
//! | [`waveform`] | `ssn-waveform` | time series, peaks, metrics, plotting |
//! | [`spice`] | `ssn-spice` | the MNA transient simulator |
//! | [`core`] | `ssn-core` | the paper: SSN closed forms + baselines |
//! | [`server`] | `ssn-server` | SSN-as-a-service: the hardened HTTP front end |
//!
//! ## Quickstart
//!
//! ```
//! use ssn_lab::core::scenario::SsnScenario;
//! use ssn_lab::core::lcmodel;
//! use ssn_lab::devices::process::Process;
//! use ssn_lab::units::Seconds;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = SsnScenario::builder(&Process::p018())
//!     .drivers(8)
//!     .rise_time(Seconds::from_nanos(0.5))
//!     .build()?;
//! let (vmax, case) = lcmodel::vn_max(&scenario);
//! println!("ground bounce: {vmax} ({case})");
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the `ssn-bench`
//! crate for the binaries that regenerate every figure and table of the
//! paper.

pub use ssn_core as core;
pub use ssn_devices as devices;
pub use ssn_numeric as numeric;
pub use ssn_server as server;
pub use ssn_spice as spice;
pub use ssn_units as units;
pub use ssn_waveform as waveform;

/// The most commonly used items in one import.
///
/// ```
/// use ssn_lab::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = SsnScenario::builder(&Process::p018()).drivers(8).build()?;
/// let (vmax, _case) = lcmodel::vn_max(&scenario);
/// assert!(vmax > Volts::ZERO);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use ssn_core::bridge::{measure, DriverBankConfig};
    pub use ssn_core::scenario::{Rail, SsnScenario};
    pub use ssn_core::{design, lcmodel, lmodel, Damping, MaxSsnCase, SsnError};
    pub use ssn_devices::process::{PackageParasitics, Process};
    pub use ssn_devices::{AlphaPower, Asdm, Diode, MosModel, MosPolarity};
    pub use ssn_spice::{
        ac_analysis, dc_operating_point, transient, AcOptions, Circuit, DcOptions, SourceWave,
        TranOptions,
    };
    pub use ssn_units::{Amps, Farads, Henrys, Hertz, Ohms, Seconds, Siemens, SlewRate, Volts};
    pub use ssn_waveform::{AsciiPlot, CsvTable, Waveform};
}
