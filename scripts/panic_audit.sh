#!/usr/bin/env bash
# Panic-site audit: counts unwrap()/expect()/panic!-family call sites in
# NON-TEST library code and fails when any file exceeds its checked-in
# baseline (scripts/panic_baseline.txt). New panic sites in production code
# must either be converted to typed errors or deliberately admitted by
# regenerating the baseline:
#
#   ./scripts/panic_audit.sh            # audit against the baseline
#   ./scripts/panic_audit.sh --update   # rewrite the baseline
#
# Test modules are excluded by stripping each file from its first
# `#[cfg(test)]` line to EOF (the repo convention keeps test modules last).
set -euo pipefail
# A failing find/awk inside $(...) must stop the audit, not yield an empty
# count that reads as "no panic sites".
shopt -s inherit_errexit
cd "$(dirname "$0")/.."

BASELINE="scripts/panic_baseline.txt"
PATTERN='\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\('

count_file() {
    # Print the number of panic-pattern lines in the non-test part of $1.
    awk '/^#\[cfg\(test\)\]/{exit} {print}' "$1" | grep -cE "$PATTERN" || true
}

audit() {
    while IFS= read -r f; do
        n=$(count_file "$f")
        if [ "$n" -gt 0 ]; then
            printf '%s %s\n' "$f" "$n"
        fi
    done < <(find crates src -name '*.rs' -not -path '*/tests/*' | sort)
}

if [ "${1:-}" = "--update" ]; then
    audit > "$BASELINE"
    echo "panic_audit: baseline rewritten ($(wc -l < "$BASELINE") files with panic sites)"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "panic_audit: missing $BASELINE (run with --update to create it)" >&2
    exit 1
fi

status=0
current=$(audit)
while IFS=' ' read -r f n; do
    [ -z "$f" ] && continue
    base=$(grep -F "$f " "$BASELINE" | awk '{print $2}' || true)
    base=${base:-0}
    if [ "$n" -gt "$base" ]; then
        echo "panic_audit: $f has $n non-test panic sites (baseline $base)" >&2
        status=1
    fi
done <<< "$current"

if [ "$status" -ne 0 ]; then
    echo "panic_audit: FAILED — convert new unwrap/expect/panic sites to typed errors," >&2
    echo "             or run ./scripts/panic_audit.sh --update to admit them." >&2
    exit 1
fi
echo "panic_audit: ok (no file exceeds its baseline)"
