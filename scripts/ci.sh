#!/usr/bin/env bash
# Tier-1 verification gate for the SSN reproduction suite (see ROADMAP.md),
# plus formatting. Run from the repository root:
#
#   ./scripts/ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== fault injection =="
cargo test -q --test fault_injection

echo "== panic audit =="
./scripts/panic_audit.sh

echo "== formatting =="
cargo fmt --check

echo "ci: all gates passed"
