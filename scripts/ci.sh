#!/usr/bin/env bash
# Tier-1 verification gate for the SSN reproduction suite (see ROADMAP.md),
# plus formatting. Run from the repository root:
#
#   ./scripts/ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
# Command substitutions and subshells must inherit errexit, or a failing
# $(...) step silently yields an empty string instead of stopping the gate.
shopt -s inherit_errexit
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== fault injection =="
cargo test -q --test fault_injection

echo "== telemetry smoke =="
# A real --telemetry=json run, then the in-repo validator: every line must
# parse and the stream must cover meta + spans + counters. The root package
# does not depend on the CLI, so build its binaries explicitly.
cargo build --release -p ssn-cli
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT
tmp_json="$tmp_dir/telemetry.jsonl"
./target/release/ssn montecarlo --process p018 --drivers 8 --samples 600 \
    --threads 2 --seed 1 --telemetry=json:"$tmp_json" > /dev/null
./target/release/telemetry-lint "$tmp_json"

echo "== differential oracle gate =="
# Seeded 500-scenario corpus, fixed thread count: fails (exit 10) on any
# closed-form/MNA disagreement beyond the tolerance budgets, and the
# per-case summary must match the golden CSV bit-for-bit (accuracy drift
# inside budget is drift too).
tmp_csv="$tmp_dir/oracle_summary.csv"
tmp_repro="$tmp_dir/repro"
./target/release/ssn validate --corpus 500 --seed 1 --threads 2 \
    --csv "$tmp_csv" --repro-dir "$tmp_repro" > /dev/null
diff -u results/diff1_oracle_summary.csv "$tmp_csv" \
    || { echo "ci: differential summary drifted from results/diff1_oracle_summary.csv" >&2; exit 1; }

echo "== durability: kill -> resume smoke =="
# Crash the oracle run after two committed chunks (the release binary honors
# SSN_CRASH_AFTER_COMMITS precisely so CI can exercise a real mid-run kill),
# resume from the journal, and require the resumed summary to be
# bit-identical to an uninterrupted run of the same corpus.
golden_csv="$tmp_dir/durable_golden.csv"
./target/release/ssn validate --corpus 120 --seed 1 --threads 2 \
    --csv "$golden_csv" --repro-dir "$tmp_repro" > /dev/null
ckpt="$tmp_dir/validate.ckpt"
resumed_csv="$tmp_dir/durable_resumed.csv"
rc=0
SSN_CRASH_AFTER_COMMITS=2 ./target/release/ssn validate --corpus 120 --seed 1 \
    --threads 2 --checkpoint "$ckpt" --repro-dir "$tmp_repro" > /dev/null || rc=$?
[ "$rc" -eq 12 ] \
    || { echo "ci: injected crash should exit 12 (interrupted), got $rc" >&2; exit 1; }
[ -f "$ckpt" ] \
    || { echo "ci: the crashed run left no checkpoint journal at $ckpt" >&2; exit 1; }
resumed_out="$tmp_dir/durable_resumed.out"
./target/release/ssn validate --corpus 120 --seed 1 --threads 2 \
    --checkpoint "$ckpt" --resume --csv "$resumed_csv" --repro-dir "$tmp_repro" \
    > "$resumed_out"
grep -q "resume: 2 chunk(s) restored" "$resumed_out" \
    || { echo "ci: resumed run did not report the 2 restored chunks" >&2; exit 1; }
diff -u "$golden_csv" "$resumed_csv" \
    || { echo "ci: kill -> resume summary drifted from the uninterrupted run" >&2; exit 1; }

echo "== batched SoA Monte Carlo gates =="
# The scalar-vs-batched differential suite, a bench smoke (mc_soa asserts
# bit-identity internally on both models at 1/2/4/8 threads), and a real
# mid-run kill of the batched MC path resumed on the *scalar* path: the
# cross-path resume must report the restored chunks and reproduce the
# uninterrupted run's statistics exactly.
cargo test -q --test soa_equivalence
./target/release/mc_soa 4096 > /dev/null
mc_golden="$tmp_dir/mc_golden.out"
./target/release/ssn montecarlo --process p018 --drivers 8 --samples 1536 \
    --threads 2 --seed 1 > "$mc_golden"
mc_ckpt="$tmp_dir/mc.ckpt"
rc=0
SSN_CRASH_AFTER_COMMITS=2 ./target/release/ssn montecarlo --process p018 \
    --drivers 8 --samples 1536 --threads 2 --seed 1 \
    --checkpoint "$mc_ckpt" > /dev/null || rc=$?
[ "$rc" -eq 12 ] \
    || { echo "ci: injected MC crash should exit 12 (interrupted), got $rc" >&2; exit 1; }
[ -f "$mc_ckpt" ] \
    || { echo "ci: the crashed MC run left no checkpoint journal at $mc_ckpt" >&2; exit 1; }
mc_resumed="$tmp_dir/mc_resumed.out"
./target/release/ssn montecarlo --process p018 --drivers 8 --samples 1536 \
    --threads 2 --seed 1 --checkpoint "$mc_ckpt" --resume --path scalar \
    > "$mc_resumed"
grep -q "resume: 2 chunk(s) restored" "$mc_resumed" \
    || { echo "ci: resumed MC run did not report the 2 restored chunks" >&2; exit 1; }
diff -u <(grep -E "samples:|q[0-9]" "$mc_golden") \
        <(grep -E "samples:|q[0-9]" "$mc_resumed") \
    || { echo "ci: cross-path MC resume drifted from the uninterrupted run" >&2; exit 1; }

echo "== server gate: fault smoke, graceful drain, kill -9 -> resume =="
# The HTTP service's robustness contract, end to end over real sockets:
#  1. under injected network faults (torn bodies, disconnects, handler
#     panics) the server keeps serving and then drains cleanly (exit 0);
#  2. a durable job killed with SIGKILL mid-run leaves a journal; a
#     restarted server on the same spool resumes it and the resulting body
#     hash is identical to an uninterrupted run on a pristine spool.
cargo test -q --test server_robustness
cargo build --release -p ssn-bench --bin serve_load

serve_pid=""
trap '[ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null; rm -rf "$tmp_dir"' EXIT
start_server() {
    # $1 = log file; the rest goes to `ssn serve`. Sets serve_pid / port.
    local log=$1; shift
    ./target/release/ssn serve "$@" > "$log" 2>&1 &
    serve_pid=$!
    local i
    for i in $(seq 100); do
        if grep -q "listening on" "$log" 2>/dev/null; then
            port=$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$log")
            return 0
        fi
        sleep 0.1
    done
    echo "ci: ssn serve did not come up" >&2; cat "$log" >&2; return 1
}
drain_server() {
    # Ask for a graceful drain until the process exits; with faults armed
    # an individual drain request can be eaten by an injected fault, so
    # repeat against fresh connections (fault decisions are per-connection).
    local i rc=0
    for i in $(seq 40); do
        curl -s -m 2 -X POST "http://127.0.0.1:$port/v1/admin/drain" > /dev/null 2>&1 || true
        kill -0 "$serve_pid" 2>/dev/null || break
        sleep 0.3
    done
    wait "$serve_pid" || rc=$?
    serve_pid=""
    return "$rc"
}

# --- 1. fault-injection smoke + graceful drain ---
SSN_NET_FAULTS="seed=7,torn=0.1,disconnect=0.1,panic=0.05" \
    start_server "$tmp_dir/serve_faults.log" --addr 127.0.0.1:0 \
    --spool "$tmp_dir/spool_faults"
./target/release/serve_load --addr "127.0.0.1:$port" --requests 200 --concurrency 4 \
    > "$tmp_dir/load.out" \
    || { echo "ci: serve_load smoke failed under faults" >&2; cat "$tmp_dir/load.out" >&2; exit 1; }
grep -q "health: ok" "$tmp_dir/load.out" \
    || { echo "ci: server unhealthy after fault smoke" >&2; exit 1; }
panics=$(curl -s -m 5 "http://127.0.0.1:$port/metrics" | grep -o '"panics_caught":[0-9]*' || true)
{ [ -n "$panics" ] && [ "$panics" != '"panics_caught":0' ]; } \
    || { echo "ci: fault plan injected no handler panics ($panics)" >&2; exit 1; }
drain_server \
    || { echo "ci: faulted server did not drain cleanly (exit $?)" >&2; exit 1; }
grep -q "drained" "$tmp_dir/serve_faults.log" \
    || { echo "ci: no drain line in the serve log" >&2; cat "$tmp_dir/serve_faults.log" >&2; exit 1; }

# --- 2. kill -9 mid-job -> restart -> byte-identical resume ---
# The job must comfortably outlive the kill window (a completed job
# deletes its journal and leaves only the cached result), so size it to
# several seconds of work and kill as soon as chunks start committing.
job_samples=400000
job_query="/v1/montecarlo?drivers=8&samples=$job_samples&seed=7"
# Golden: the same job on an untouched server and spool, uninterrupted.
start_server "$tmp_dir/serve_gold.log" --addr 127.0.0.1:0 --spool "$tmp_dir/spool_gold"
gold_line=$(./target/release/serve_load --addr "127.0.0.1:$port" --job --samples "$job_samples")
drain_server || { echo "ci: golden server did not drain cleanly" >&2; exit 1; }
# Crash run: submit, wait for the journal to appear (first committed
# chunk), let a few more commits land, then SIGKILL mid-job.
start_server "$tmp_dir/serve_crash.log" --addr 127.0.0.1:0 --spool "$tmp_dir/spool_crash"
curl -s -m 5 "http://127.0.0.1:$port$job_query" | grep -Eq '"queued"|"running"' \
    || { echo "ci: job submission was not accepted" >&2; exit 1; }
for i in $(seq 100); do
    ls "$tmp_dir"/spool_crash/job-*.ckpt > /dev/null 2>&1 && break
    sleep 0.1
done
sleep 0.5
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
ls "$tmp_dir"/spool_crash/job-*.ckpt > /dev/null 2>&1 \
    || { echo "ci: SIGKILL left no checkpoint journal in the spool (job already done?)" >&2; exit 1; }
# Restart on the same spool; resubmitting the identical request resumes.
start_server "$tmp_dir/serve_resume.log" --addr 127.0.0.1:0 --spool "$tmp_dir/spool_crash"
resumed_line=$(./target/release/serve_load --addr "127.0.0.1:$port" --job --samples "$job_samples")
resumed=$(curl -s -m 5 "http://127.0.0.1:$port/metrics" | grep -o '"chunks_resumed":[0-9]*' || true)
{ [ -n "$resumed" ] && [ "$resumed" != '"chunks_resumed":0' ]; } \
    || { echo "ci: restarted server recomputed instead of resuming ($resumed)" >&2; exit 1; }
drain_server || { echo "ci: resumed server did not drain cleanly" >&2; exit 1; }
[ -n "$gold_line" ] && [ "$gold_line" = "$resumed_line" ] \
    || { echo "ci: resumed job bytes differ from the uninterrupted run:" >&2; \
         echo "  golden:  $gold_line" >&2; echo "  resumed: $resumed_line" >&2; exit 1; }

echo "== large-circuit solver gates =="
# The sparse/GMRES tier (DESIGN.md §13): the sparse-vs-dense differential
# and GMRES property suite, a bench smoke (mna_scale asserts tier
# agreement and factor-reuse bit-identity internally; the small edge cap
# keeps it cheap — no timing thresholds, timings vary by host), and the
# grid gate itself: synthesized power-grid meshes through the sparse
# tier, ending on the 1024-node case, exit 10 on any violation.
cargo test -q --test solver_scale
./target/release/mna_scale 12 > /dev/null
./target/release/ssn validate --grids 2 --seed 1 > "$tmp_dir/grids.out" \
    || { echo "ci: grid gate failed" >&2; cat "$tmp_dir/grids.out" >&2; exit 1; }
grep -q "dim 1032" "$tmp_dir/grids.out" \
    || { echo "ci: grid gate did not reach the 1032-unknown mesh" >&2; exit 1; }
grep -q "all grids within invariants" "$tmp_dir/grids.out" \
    || { echo "ci: grid gate reported violations" >&2; cat "$tmp_dir/grids.out" >&2; exit 1; }

echo "== optimizer gates: differential suite, bench smoke, kill -> resume =="
# The inverse-design tier (DESIGN.md §14): the enumeration-differential
# suite (optimizer front == brute force, bit for bit, on a seeded corpus),
# an opt_scale smoke (asserts front identity and real pruning internally),
# and a mid-search kill: SSN_CRASH_AFTER_COMMITS crashes the CLI between
# per-level journal commits, the restart resumes the journal family, and
# the resumed CSV front must be byte-identical to an uninterrupted run
# (--format csv is data-only precisely so this diff can be exact).
cargo test -q --test optimize_differential
./target/release/opt_scale 12 8 > /dev/null
opt_args=(--process p018 --max-drivers 12 --l-points 8 --c-points 2
    --tr-points 2 --threads 2)
opt_golden="$tmp_dir/opt_golden.csv"
./target/release/ssn optimize "${opt_args[@]}" --format csv > "$opt_golden"
opt_ckpt="$tmp_dir/optimize.ckpt"
rc=0
SSN_CRASH_AFTER_COMMITS=2 ./target/release/ssn optimize "${opt_args[@]}" \
    --checkpoint "$opt_ckpt" > /dev/null || rc=$?
[ "$rc" -eq 12 ] \
    || { echo "ci: injected optimize crash should exit 12 (interrupted), got $rc" >&2; exit 1; }
ls "$opt_ckpt".lv* > /dev/null 2>&1 \
    || { echo "ci: the crashed search left no per-level journal at $opt_ckpt.lv*" >&2; exit 1; }
opt_resumed_out="$tmp_dir/opt_resumed.out"
./target/release/ssn optimize "${opt_args[@]}" --checkpoint "$opt_ckpt" --resume \
    > "$opt_resumed_out"
grep -q "restored from checkpoint" "$opt_resumed_out" \
    || { echo "ci: resumed search did not report restored chunks" >&2; exit 1; }
# A second resume replays the now-complete journal family end to end; its
# CSV must reproduce the uninterrupted front byte for byte.
opt_resumed_csv="$tmp_dir/opt_resumed.csv"
./target/release/ssn optimize "${opt_args[@]}" --checkpoint "$opt_ckpt" --resume \
    --format csv > "$opt_resumed_csv"
diff -u "$opt_golden" "$opt_resumed_csv" \
    || { echo "ci: kill -> resume optimize front drifted from the uninterrupted run" >&2; exit 1; }
rc=0
./target/release/ssn optimize "${opt_args[@]}" --max-noise-frac 0.000001 \
    > /dev/null || rc=$?
[ "$rc" -eq 16 ] \
    || { echo "ci: an impossible noise cap should exit 16 (no feasible point), got $rc" >&2; exit 1; }

echo "== storage fault gates: sweep, ENOSPC degrade, crash-under-EIO resume =="
# The storage fault contract (DESIGN.md section 15), end to end on the release
# binary. First the crash-consistency sweep: a hard fault at every I/O
# operation index followed by a restart must yield a bit-identical resume or a
# typed clean-slate rerun, never a panic or silently-corrupt output.
cargo test -q --test storage_faults
# ENOSPC on every durable write: the run must shed the journal, finish with
# exit 0, report the degrade in the footer, and still produce statistics
# byte-identical to the fault-free golden run.
sf_ckpt="$tmp_dir/sf.ckpt"
sf_degraded="$tmp_dir/sf_degraded.out"
SSN_DISK_FAULTS="seed=1,enospc=1" ./target/release/ssn montecarlo \
    --process p018 --drivers 8 --samples 1536 --threads 2 --seed 1 \
    --checkpoint "$sf_ckpt" > "$sf_degraded" \
    || { echo "ci: full-disk MC run should degrade and exit 0" >&2; exit 1; }
grep -q "degraded: checkpoint-disabled" "$sf_degraded" \
    || { echo "ci: full-disk MC run did not report the checkpoint degrade" >&2; exit 1; }
[ ! -f "$sf_ckpt" ] \
    || { echo "ci: full-disk MC run left a journal despite ENOSPC on every write" >&2; exit 1; }
diff -u <(grep -E "samples:|q[0-9]" "$mc_golden") \
        <(grep -E "samples:|q[0-9]" "$sf_degraded") \
    || { echo "ci: ENOSPC-degraded MC statistics drifted from the uninterrupted run" >&2; exit 1; }
# Combined drill: a mid-run kill while transient EIO is also firing. The
# retry policy must absorb the EIO so both commits land, the injected crash
# must still exit 12, and a fault-off resume must restore exactly those two
# chunks and reproduce the golden statistics byte for byte.
rc=0
SSN_CRASH_AFTER_COMMITS=2 SSN_DISK_FAULTS="seed=2,eio=0.1" \
    ./target/release/ssn montecarlo --process p018 --drivers 8 --samples 1536 \
    --threads 2 --seed 1 --checkpoint "$sf_ckpt" > /dev/null || rc=$?
[ "$rc" -eq 12 ] \
    || { echo "ci: crash-under-EIO MC run should exit 12 (interrupted), got $rc" >&2; exit 1; }
[ -f "$sf_ckpt" ] \
    || { echo "ci: the crash-under-EIO run left no checkpoint journal at $sf_ckpt" >&2; exit 1; }
sf_resumed="$tmp_dir/sf_resumed.out"
./target/release/ssn montecarlo --process p018 --drivers 8 --samples 1536 \
    --threads 2 --seed 1 --checkpoint "$sf_ckpt" --resume > "$sf_resumed"
grep -q "resume: 2 chunk(s) restored" "$sf_resumed" \
    || { echo "ci: resume after crash-under-EIO did not report the 2 restored chunks" >&2; exit 1; }
diff -u <(grep -E "samples:|q[0-9]" "$mc_golden") \
        <(grep -E "samples:|q[0-9]" "$sf_resumed") \
    || { echo "ci: resume after crash-under-EIO drifted from the uninterrupted run" >&2; exit 1; }

echo "== panic audit =="
./scripts/panic_audit.sh

echo "== formatting =="
cargo fmt --check

echo "ci: all gates passed"
