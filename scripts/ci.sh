#!/usr/bin/env bash
# Tier-1 verification gate for the SSN reproduction suite (see ROADMAP.md),
# plus formatting. Run from the repository root:
#
#   ./scripts/ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
# Command substitutions and subshells must inherit errexit, or a failing
# $(...) step silently yields an empty string instead of stopping the gate.
shopt -s inherit_errexit
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== fault injection =="
cargo test -q --test fault_injection

echo "== telemetry smoke =="
# A real --telemetry=json run, then the in-repo validator: every line must
# parse and the stream must cover meta + spans + counters. The root package
# does not depend on the CLI, so build its binaries explicitly.
cargo build --release -p ssn-cli
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT
tmp_json="$tmp_dir/telemetry.jsonl"
./target/release/ssn montecarlo --process p018 --drivers 8 --samples 600 \
    --threads 2 --seed 1 --telemetry=json:"$tmp_json" > /dev/null
./target/release/telemetry-lint "$tmp_json"

echo "== differential oracle gate =="
# Seeded 500-scenario corpus, fixed thread count: fails (exit 10) on any
# closed-form/MNA disagreement beyond the tolerance budgets, and the
# per-case summary must match the golden CSV bit-for-bit (accuracy drift
# inside budget is drift too).
tmp_csv="$tmp_dir/oracle_summary.csv"
tmp_repro="$tmp_dir/repro"
./target/release/ssn validate --corpus 500 --seed 1 --threads 2 \
    --csv "$tmp_csv" --repro-dir "$tmp_repro" > /dev/null
diff -u results/diff1_oracle_summary.csv "$tmp_csv" \
    || { echo "ci: differential summary drifted from results/diff1_oracle_summary.csv" >&2; exit 1; }

echo "== durability: kill -> resume smoke =="
# Crash the oracle run after two committed chunks (the release binary honors
# SSN_CRASH_AFTER_COMMITS precisely so CI can exercise a real mid-run kill),
# resume from the journal, and require the resumed summary to be
# bit-identical to an uninterrupted run of the same corpus.
golden_csv="$tmp_dir/durable_golden.csv"
./target/release/ssn validate --corpus 120 --seed 1 --threads 2 \
    --csv "$golden_csv" --repro-dir "$tmp_repro" > /dev/null
ckpt="$tmp_dir/validate.ckpt"
resumed_csv="$tmp_dir/durable_resumed.csv"
rc=0
SSN_CRASH_AFTER_COMMITS=2 ./target/release/ssn validate --corpus 120 --seed 1 \
    --threads 2 --checkpoint "$ckpt" --repro-dir "$tmp_repro" > /dev/null || rc=$?
[ "$rc" -eq 12 ] \
    || { echo "ci: injected crash should exit 12 (interrupted), got $rc" >&2; exit 1; }
[ -f "$ckpt" ] \
    || { echo "ci: the crashed run left no checkpoint journal at $ckpt" >&2; exit 1; }
resumed_out="$tmp_dir/durable_resumed.out"
./target/release/ssn validate --corpus 120 --seed 1 --threads 2 \
    --checkpoint "$ckpt" --resume --csv "$resumed_csv" --repro-dir "$tmp_repro" \
    > "$resumed_out"
grep -q "resume: 2 chunk(s) restored" "$resumed_out" \
    || { echo "ci: resumed run did not report the 2 restored chunks" >&2; exit 1; }
diff -u "$golden_csv" "$resumed_csv" \
    || { echo "ci: kill -> resume summary drifted from the uninterrupted run" >&2; exit 1; }

echo "== batched SoA Monte Carlo gates =="
# The scalar-vs-batched differential suite, a bench smoke (mc_soa asserts
# bit-identity internally on both models at 1/2/4/8 threads), and a real
# mid-run kill of the batched MC path resumed on the *scalar* path: the
# cross-path resume must report the restored chunks and reproduce the
# uninterrupted run's statistics exactly.
cargo test -q --test soa_equivalence
./target/release/mc_soa 4096 > /dev/null
mc_golden="$tmp_dir/mc_golden.out"
./target/release/ssn montecarlo --process p018 --drivers 8 --samples 1536 \
    --threads 2 --seed 1 > "$mc_golden"
mc_ckpt="$tmp_dir/mc.ckpt"
rc=0
SSN_CRASH_AFTER_COMMITS=2 ./target/release/ssn montecarlo --process p018 \
    --drivers 8 --samples 1536 --threads 2 --seed 1 \
    --checkpoint "$mc_ckpt" > /dev/null || rc=$?
[ "$rc" -eq 12 ] \
    || { echo "ci: injected MC crash should exit 12 (interrupted), got $rc" >&2; exit 1; }
[ -f "$mc_ckpt" ] \
    || { echo "ci: the crashed MC run left no checkpoint journal at $mc_ckpt" >&2; exit 1; }
mc_resumed="$tmp_dir/mc_resumed.out"
./target/release/ssn montecarlo --process p018 --drivers 8 --samples 1536 \
    --threads 2 --seed 1 --checkpoint "$mc_ckpt" --resume --path scalar \
    > "$mc_resumed"
grep -q "resume: 2 chunk(s) restored" "$mc_resumed" \
    || { echo "ci: resumed MC run did not report the 2 restored chunks" >&2; exit 1; }
diff -u <(grep -E "samples:|q[0-9]" "$mc_golden") \
        <(grep -E "samples:|q[0-9]" "$mc_resumed") \
    || { echo "ci: cross-path MC resume drifted from the uninterrupted run" >&2; exit 1; }

echo "== panic audit =="
./scripts/panic_audit.sh

echo "== formatting =="
cargo fmt --check

echo "ci: all gates passed"
