#!/usr/bin/env bash
# Tier-1 verification gate for the SSN reproduction suite (see ROADMAP.md),
# plus formatting. Run from the repository root:
#
#   ./scripts/ci.sh
#
# Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== fault injection =="
cargo test -q --test fault_injection

echo "== telemetry smoke =="
# A real --telemetry=json run, then the in-repo validator: every line must
# parse and the stream must cover meta + spans + counters. The root package
# does not depend on the CLI, so build its binaries explicitly.
cargo build --release -p ssn-cli
tmp_json="$(mktemp)"
trap 'rm -f "$tmp_json"' EXIT
./target/release/ssn montecarlo --process p018 --drivers 8 --samples 600 \
    --threads 2 --seed 1 --telemetry=json:"$tmp_json" > /dev/null
./target/release/telemetry-lint "$tmp_json"

echo "== differential oracle gate =="
# Seeded 500-scenario corpus, fixed thread count: fails (exit 10) on any
# closed-form/MNA disagreement beyond the tolerance budgets, and the
# per-case summary must match the golden CSV bit-for-bit (accuracy drift
# inside budget is drift too).
tmp_csv="$(mktemp)"
tmp_repro="$(mktemp -d)"
trap 'rm -f "$tmp_json" "$tmp_csv"; rm -rf "$tmp_repro"' EXIT
./target/release/ssn validate --corpus 500 --seed 1 --threads 2 \
    --csv "$tmp_csv" --repro-dir "$tmp_repro" > /dev/null
diff -u results/diff1_oracle_summary.csv "$tmp_csv" \
    || { echo "ci: differential summary drifted from results/diff1_oracle_summary.csv" >&2; exit 1; }

echo "== panic audit =="
./scripts/panic_audit.sh

echo "== formatting =="
cargo fmt --check

echo "ci: all gates passed"
