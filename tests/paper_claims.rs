//! One test per headline claim of the paper, as enumerated in
//! EXPERIMENTS.md. These are the "shape" assertions the reproduction is
//! accountable to; the figure binaries print the full tables.

use ssn_lab::core::baselines::{senthinathan_prince, vemuru, BaselineInputs};
use ssn_lab::core::bridge::{measure, DriverBankConfig};
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{lcmodel, lmodel};
use ssn_lab::devices::fit::{fit_asdm, sample_ssn_region, SsnRegionSpec};
use ssn_lab::devices::process::Process;
use ssn_lab::units::{Farads, Seconds, Volts};
use std::sync::Arc;

/// Section 2: "for any given value of Vs, Id is approximately a linear
/// function of Vg" — the ASDM tracks the golden device to a few percent at
/// the currents that matter.
#[test]
fn claim_iv_linearity_in_the_ssn_region() {
    let process = Process::p018();
    let samples = sample_ssn_region(
        &process.output_driver(),
        &SsnRegionSpec::for_process(&process),
    );
    let asdm = fit_asdm(&samples).expect("fit succeeds");
    let imax = samples.iter().map(|s| s.id).fold(0.0f64, f64::max);
    let worst = samples
        .iter()
        .filter(|s| s.id > imax / 3.0)
        .map(|s| {
            let p = asdm
                .drain_current(Volts::new(s.vg), Volts::new(s.vs))
                .value();
            (p - s.id).abs() / s.id
        })
        .fold(0.0f64, f64::max);
    assert!(worst < 0.08, "linear-law error {worst}");
}

/// Section 2: "V0 ... does not have to be the transistor threshold
/// voltage" and "sigma ... is always greater than 1 in real processes".
#[test]
fn claim_v0_is_not_vth_and_sigma_exceeds_one() {
    for process in Process::all() {
        let samples = sample_ssn_region(
            &process.output_driver(),
            &SsnRegionSpec::for_process(&process),
        );
        let asdm = fit_asdm(&samples).expect("fit succeeds");
        assert!(
            asdm.v0().value() > process.vth0().value() + 0.05,
            "{}: V0 {} should clearly exceed Vth {}",
            process.name(),
            asdm.v0(),
            process.vth0()
        );
        assert!(
            asdm.sigma() > 1.0,
            "{}: sigma {}",
            process.name(),
            asdm.sigma()
        );
    }
}

/// Section 3 / Fig. 2: "both the SSN voltage formula and the current
/// formula match the simulation results very well".
#[test]
fn claim_fig2_waveforms_match() {
    let process = Process::p018();
    let scenario = SsnScenario::builder(&process)
        .drivers(8)
        .capacitance(Farads::ZERO)
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid");
    let sim = measure(&DriverBankConfig::from_scenario(
        &scenario,
        Arc::new(process.output_driver()),
    ))
    .expect("simulates");
    // Voltage peak within 10%.
    let v_err = (lmodel::vn_max(&scenario).value() - sim.vn_max.value()).abs() / sim.vn_max.value();
    assert!(v_err < 0.10, "Vn_max error {v_err}");
    // End-of-ramp current within 10%.
    let tr = scenario.rise_time();
    let i_model = lmodel::inductor_current_at(&scenario, tr).value();
    let i_sim = sim.inductor_current.sample(tr.value());
    assert!(
        (i_model - i_sim).abs() / i_sim < 0.10,
        "current error: {i_model} vs {i_sim}"
    );
}

/// Fig. 3: "the new model is shown to be the most accurate" (on the main
/// process, against the paper's two comparators).
#[test]
fn claim_fig3_ranking() {
    let process = Process::p018();
    let base = SsnScenario::builder(&process)
        .capacitance(Farads::ZERO)
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid");
    let (mut e_this, mut e_vem, mut e_sp) = (0.0f64, 0.0f64, 0.0f64);
    for n in [4usize, 8, 12] {
        let s = base.with_drivers(n).expect("valid");
        let sim = measure(&DriverBankConfig::from_scenario(
            &s,
            Arc::new(process.output_driver()),
        ))
        .expect("simulates")
        .vn_max
        .value();
        let inputs = BaselineInputs::from_process(&process, n, s.inductance(), s.rise_time());
        e_this += (lmodel::vn_max(&s).value() - sim).abs() / sim;
        e_vem += (vemuru(&inputs).value() - sim).abs() / sim;
        e_sp += (senthinathan_prince(&inputs).value() - sim).abs() / sim;
    }
    assert!(e_this < e_vem, "this {e_this} vs vemuru {e_vem}");
    assert!(e_this < e_sp, "this {e_this} vs senthinathan-prince {e_sp}");
}

/// Section 4 / Fig. 4: "the simple model ... is more or less adequate in
/// the over-damped region. However, the proposed new formulation with
/// parasitic capacitance included has to be used in the under-damped
/// regions."
#[test]
fn claim_fig4_regional_errors() {
    let process = Process::p018();
    let base = SsnScenario::builder(&process)
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid");
    // Deep under-damped point (N = 1).
    let under = base.with_drivers(1).expect("valid");
    assert!(matches!(
        lcmodel::classify(&under),
        lcmodel::Damping::Underdamped { .. }
    ));
    let sim_u = measure(&DriverBankConfig::from_scenario(
        &under,
        Arc::new(process.output_driver()),
    ))
    .expect("simulates")
    .vn_max
    .value();
    let e_lonly_u = (lmodel::vn_max(&under).value() - sim_u).abs() / sim_u;
    let e_lc_u = (lcmodel::vn_max(&under).0.value() - sim_u).abs() / sim_u;
    assert!(e_lonly_u > 0.2, "L-only should be poor here: {e_lonly_u}");
    assert!(e_lc_u < 0.12, "LC model should hold up: {e_lc_u}");

    // Over-damped point (N = 12).
    let over = base.with_drivers(12).expect("valid");
    assert!(matches!(
        lcmodel::classify(&over),
        lcmodel::Damping::Overdamped { .. }
    ));
    let sim_o = measure(&DriverBankConfig::from_scenario(
        &over,
        Arc::new(process.output_driver()),
    ))
    .expect("simulates")
    .vn_max
    .value();
    let e_lonly_o = (lmodel::vn_max(&over).value() - sim_o).abs() / sim_o;
    assert!(
        e_lonly_o < 0.08,
        "L-only is adequate over-damped: {e_lonly_o}"
    );
}

/// Section 4: "the system is very likely in the under-damped region when
/// [N] is small and in the over-damped region when [N] gets large", and
/// doubling the ground pads moves the boundary upward.
#[test]
fn claim_damping_region_shifts_with_n_and_pads() {
    let process = Process::p018();
    let base = SsnScenario::builder(&process)
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid");
    let boundary_n = |l: f64, c: f64| -> usize {
        (1..=32)
            .find(|&n| {
                let s = base
                    .with_drivers(n)
                    .and_then(|s| {
                        s.with_package(
                            ssn_lab::units::Henrys::new(l),
                            ssn_lab::units::Farads::new(c),
                        )
                    })
                    .expect("valid");
                !matches!(lcmodel::classify(&s), lcmodel::Damping::Underdamped { .. })
            })
            .expect("becomes over-damped eventually")
    };
    let single = boundary_n(5e-9, 1e-12);
    let doubled = boundary_n(2.5e-9, 2e-12);
    assert!(single >= 2, "small banks ring: boundary at {single}");
    assert!(
        doubled > single,
        "doubling pads must widen the under-damped region: {doubled} vs {single}"
    );
}

/// Fig. 1 caption detail: the model is fitted at `V_D = V_dd`, and the
/// paper's assumption "the output nodes stay high during the input rising
/// period" holds in simulation.
#[test]
fn claim_outputs_stay_high_during_ramp() {
    let process = Process::p018();
    let sim = measure(&DriverBankConfig::from_process(&process, 8)).expect("simulates");
    let tr = 0.5e-9;
    let out_end = sim.output.sample(tr);
    assert!(
        out_end > process.vdd().value() * 0.8,
        "output fell to {out_end} during the ramp"
    );
}

/// Temperature extension: SSN worsens cold (stronger drive), relaxes hot.
#[test]
fn claim_ssn_grows_at_cold_corner() {
    use ssn_lab::units::Kelvin;
    let process = Process::p018();
    let spec = SsnRegionSpec::for_process(&process);
    let vn_at = |t: Kelvin| -> f64 {
        let device = process.output_driver_at(t);
        let asdm = fit_asdm(&sample_ssn_region(&device, &spec)).expect("fit succeeds");
        let s = SsnScenario::from_asdm(asdm, process.vdd())
            .drivers(8)
            .inductance(process.package().inductance)
            .capacitance(process.package().capacitance)
            .rise_time(Seconds::from_nanos(0.5))
            .build()
            .expect("valid");
        lcmodel::vn_max(&s).0.value()
    };
    let cold = vn_at(Kelvin::new(233.0));
    let nom = vn_at(Kelvin::new(300.0));
    let hot = vn_at(Kelvin::new(398.0));
    assert!(cold > nom, "cold {cold} vs nominal {nom}");
    assert!(hot < nom, "hot {hot} vs nominal {nom}");
}

/// The deck writer/parser round trip preserves the SSN experiment
/// end-to-end (structure and dynamics).
#[test]
fn claim_deck_roundtrip_preserves_the_experiment() {
    use ssn_lab::spice::parser::parse_deck;
    use ssn_lab::spice::writer::write_deck;
    use ssn_lab::spice::{transient, TranOptions};

    let process = Process::p018();
    let cfg = DriverBankConfig::from_process(&process, 4);
    let circuit = cfg.build_circuit().expect("builds");
    let text = write_deck(&circuit, "roundtrip", None).expect("writes");
    let deck = parse_deck(&text).expect("parses");
    let opts = || TranOptions::to(1.2e-9).with_ic();
    let a = transient(&circuit, opts()).expect("simulates");
    let b = transient(&deck.circuit, opts()).expect("simulates");
    let va = a.voltage("ng").expect("probe");
    let vb = b.voltage("ng").expect("probe");
    assert!(va.max_abs_error(&vb).expect("windows overlap") < 2e-3);
}
