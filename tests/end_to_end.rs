//! End-to-end integration tests: process library -> ASDM fit -> closed-form
//! SSN -> transient-simulation validation, spanning every crate.

use ssn_lab::core::baselines::{senthinathan_prince, song, vemuru, BaselineInputs};
use ssn_lab::core::bridge::{measure, DriverBankConfig};
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{design, lcmodel, lmodel};
use ssn_lab::devices::process::Process;
use ssn_lab::units::{Farads, Seconds, Volts};
use std::sync::Arc;

fn p018_scenario(n: usize) -> SsnScenario {
    SsnScenario::builder(&Process::p018())
        .drivers(n)
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid scenario")
}

/// The paper's headline claim, end to end: the LC closed form tracks the
/// nonlinear simulation across damping regions, and always better than (or
/// comparable to) the L-only form — dramatically so when under-damped.
#[test]
fn lc_model_tracks_simulation_across_regions() {
    let process = Process::p018();
    let mut lc_errors = Vec::new();
    for n in [1usize, 3, 6, 12] {
        let s = p018_scenario(n);
        let sim = measure(&DriverBankConfig::from_scenario(
            &s,
            Arc::new(process.output_driver()),
        ))
        .expect("simulation converges")
        .vn_max
        .value();
        let lc = lcmodel::vn_max(&s).0.value();
        let l_only = lmodel::vn_max(&s).value();
        let e_lc = (lc - sim).abs() / sim;
        let e_l = (l_only - sim).abs() / sim;
        lc_errors.push(e_lc);
        assert!(e_lc < 0.12, "N = {n}: LC error {e_lc}");
        // Where the L-only model is materially wrong (deep under-damped
        // region), the LC model must be the better estimate. Near the case
        // boundary both are within a few percent and may tie.
        if matches!(lcmodel::classify(&s), lcmodel::Damping::Underdamped { .. }) && e_l > 0.05 {
            assert!(
                e_lc < e_l,
                "N = {n} (under-damped): LC ({e_lc:.3}) must beat L-only ({e_l:.3})"
            );
        }
    }
    // Average accuracy in the single-digit percent range.
    let mean = lc_errors.iter().sum::<f64>() / lc_errors.len() as f64;
    assert!(mean < 0.08, "mean LC error {mean}");
}

/// Fig. 3's ranking on the paper's main process: the ASDM formula beats
/// the prior closed forms on mean error.
#[test]
fn asdm_formula_beats_prior_models_on_p018() {
    let process = Process::p018();
    let base = SsnScenario::builder(&process)
        .capacitance(Farads::ZERO)
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid scenario");
    let (mut e_this, mut e_vem, mut e_song, mut e_sp) = (0.0, 0.0, 0.0, 0.0);
    let ns = [2usize, 6, 10, 14];
    for &n in &ns {
        let s = base.with_drivers(n).expect("valid");
        let sim = measure(&DriverBankConfig::from_scenario(
            &s,
            Arc::new(process.output_driver()),
        ))
        .expect("simulation converges")
        .vn_max
        .value();
        let inputs = BaselineInputs::from_process(&process, n, s.inductance(), s.rise_time());
        e_this += (lmodel::vn_max(&s).value() - sim).abs() / sim;
        e_vem += (vemuru(&inputs).value() - sim).abs() / sim;
        e_song += (song(&inputs).value() - sim).abs() / sim;
        e_sp += (senthinathan_prince(&inputs).value() - sim).abs() / sim;
    }
    assert!(
        e_this < e_vem && e_this < e_song && e_this < e_sp,
        "this work {e_this:.3} vs vemuru {e_vem:.3}, song {e_song:.3}, sp {e_sp:.3}"
    );
}

/// The under-damped overshoot is real: the simulated bounce exceeds the
/// asymptote `V_inf` for a small bank, and the case-3a formula captures it.
#[test]
fn underdamped_overshoot_is_simulated_and_predicted() {
    let process = Process::p018();
    let s = p018_scenario(1);
    let sim = measure(&DriverBankConfig::from_scenario(
        &s,
        Arc::new(process.output_driver()),
    ))
    .expect("simulation converges");
    let (v, case) = lcmodel::vn_max(&s);
    assert_eq!(case, lcmodel::MaxSsnCase::UnderdampedFastInput);
    assert!(v.value() > s.v_inf().value(), "formula shows overshoot");
    assert!(
        sim.vn_max.value() > s.v_inf().value() * 0.95,
        "simulation rings: {} vs V_inf {}",
        sim.vn_max,
        s.v_inf()
    );
}

/// Doubling ground pads halves L and doubles C (paper Section 4's package
/// argument): noise falls, but the damping region shifts toward ringing.
#[test]
fn pad_doubling_trades_noise_for_ringing() {
    let s1 = p018_scenario(6);
    let s2 = s1
        .with_package(s1.inductance() / 2.0, s1.capacitance() * 2.0)
        .expect("valid package");
    let (v1, _) = lcmodel::vn_max(&s1);
    let (v2, _) = lcmodel::vn_max(&s2);
    assert!(v2 < v1, "more pads must reduce noise: {v1} -> {v2}");
    assert!(matches!(
        lcmodel::classify(&s1),
        lcmodel::Damping::Overdamped { .. }
    ));
    assert!(matches!(
        lcmodel::classify(&s2),
        lcmodel::Damping::Underdamped { .. }
    ));
}

/// The design helpers produce budgets the full model actually honours,
/// checked against the simulator.
#[test]
fn design_budget_is_honoured_by_simulation() {
    let process = Process::p018();
    let template = p018_scenario(32);
    let budget = Volts::new(0.5);
    let n = design::max_simultaneous_drivers(&template, budget).expect("solvable");
    assert!(n >= 1);
    let s = template.with_drivers(n).expect("valid");
    let sim = measure(&DriverBankConfig::from_scenario(
        &s,
        Arc::new(process.output_driver()),
    ))
    .expect("simulation converges");
    // Allow the documented model error margin on top of the budget.
    assert!(
        sim.vn_max.value() < budget.value() * 1.10,
        "simulated {} exceeds budget {budget} by more than the model margin",
        sim.vn_max
    );
}

/// All three library processes support the full pipeline.
#[test]
fn all_processes_fit_and_estimate() {
    for process in Process::all() {
        let s = SsnScenario::builder(&process)
            .drivers(8)
            .rise_time(Seconds::from_nanos(0.5))
            .build()
            .expect("fit succeeds");
        assert!(s.asdm().sigma() >= 1.0);
        assert!(s.asdm().v0() > process.vth0());
        let (v, _) = lcmodel::vn_max(&s);
        assert!(
            v.value() > 0.05 && v.value() < process.vdd().value(),
            "{}: vn_max = {v}",
            process.name()
        );
    }
}
