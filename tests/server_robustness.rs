//! Robustness contract of the HTTP service (`ssn-server`), exercised over
//! real loopback sockets:
//!
//! * **Fuzz**: no malformed request may panic the server or hang a
//!   connection — every case ends in a typed 4xx or a clean close, and
//!   the server stays healthy with zero caught panics.
//! * **Cache**: a content-addressed hit returns byte-identical bodies to
//!   the miss that filled it, across spellings of the same request.
//! * **Overload**: a full job queue sheds with `503` + `Retry-After`
//!   instead of queueing unboundedly.
//! * **Drain**: `POST /v1/admin/drain` stops admission, the drain
//!   completes cleanly, and the listener actually goes away.
//! * **Injected network faults**: torn bodies, mid-response disconnects,
//!   and handler panics leave the server serving.
//!
//! The network-fault switchboard is process-global, so every test here
//! serializes on one mutex — a fault plan armed by one test must never
//! leak into another's server.

use ssn_lab::numeric::check::{forall, Gen};
use ssn_lab::server::netfaults::{self, NetFaultPlan};
use ssn_lab::server::{client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

static SERIALIZE: Mutex<()> = Mutex::new(());

const TIMEOUT: Duration = Duration::from_secs(10);

fn start(cfg: ServerConfig) -> Server {
    Server::start(cfg).expect("server starts")
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        io_timeout: Duration::from_millis(500),
        request_deadline: Duration::from_secs(5),
        drain_deadline: Duration::from_secs(20),
        ..ServerConfig::default()
    }
}

fn metric(addr: SocketAddr, key: &str) -> u64 {
    let body = client::get(addr, "/metrics", TIMEOUT)
        .expect("metrics reachable")
        .text();
    let pat = format!("\"{key}\":");
    let rest = &body[body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}")) + pat.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric metric")
}

/// Sends raw bytes as one connection and returns whatever came back
/// (empty = the server dropped the connection without a response).
fn raw_roundtrip(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.set_write_timeout(Some(TIMEOUT)).unwrap();
    // The peer may have already rejected and closed; a write error then
    // is equivalent to the response being cut off.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

/// One deterministically generated malformed request.
fn malformed_request(g: &mut Gen) -> Vec<u8> {
    match g.usize_in(0, 9) {
        // Pure line noise, possibly with no newline at all.
        0 => (0..g.usize_in(0, 200))
            .map(|_| (g.usize_in(0, 255)) as u8)
            .collect(),
        // Valid request line, garbage header lines.
        1 => {
            let mut v = b"GET /healthz HTTP/1.1\r\n".to_vec();
            for _ in 0..g.usize_in(1, 4) {
                v.extend_from_slice(b"not a header line\r\n");
            }
            v.extend_from_slice(b"\r\n");
            v
        }
        // Request line past the hard cap.
        2 => {
            let mut v = b"GET /".to_vec();
            v.extend(std::iter::repeat_n(b'a', 9000 + g.usize_in(0, 2000)));
            v.extend_from_slice(b" HTTP/1.1\r\n\r\n");
            v
        }
        // More headers than allowed.
        3 => {
            let mut v = b"GET /healthz HTTP/1.1\r\n".to_vec();
            for i in 0..40 {
                v.extend_from_slice(format!("x-h{i}: {i}\r\n").as_bytes());
            }
            v.extend_from_slice(b"\r\n");
            v
        }
        // Unparseable or absurd content-length.
        4 => {
            let cl = ["banana", "-1", "99999999999999999999", "1e9"][g.usize_in(0, 3)];
            format!("POST /v1/estimate HTTP/1.1\r\ncontent-length: {cl}\r\n\r\n").into_bytes()
        }
        // Torn body: promises more bytes than it sends.
        5 => {
            let n = g.usize_in(10, 64);
            let sent = g.usize_in(0, 9);
            let mut v =
                format!("POST /v1/estimate HTTP/1.1\r\ncontent-length: {n}\r\n\r\n").into_bytes();
            v.extend(std::iter::repeat_n(b'x', sent));
            v
        }
        // Bad percent-escapes and broken pairs in the query.
        6 => {
            let q = ["drivers=%zz", "a%2=1", "=1&=2", "a=1&a=2", "%"][g.usize_in(0, 4)];
            format!("GET /v1/estimate?{q} HTTP/1.1\r\n\r\n").into_bytes()
        }
        // Wrong protocol version / missing parts of the request line.
        7 => {
            let line = ["GET /x HTTP/2.0", "GET /x", "GET", ""][g.usize_in(0, 3)];
            format!("{line}\r\n\r\n").into_bytes()
        }
        // Non-UTF-8 body under a correct content-length.
        8 => {
            let mut v = b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 4\r\n\r\n".to_vec();
            v.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
            v
        }
        // Chunked transfer-encoding (unsupported by design).
        _ => b"POST /v1/estimate HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
    }
}

#[test]
fn fuzz_malformed_http_never_panics_the_server() {
    let _guard = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    let server = start(quick_config());
    let addr = server.addr();

    forall(
        "malformed HTTP gets a typed 4xx or a clean close",
        96,
        |g| {
            let bytes = malformed_request(g);
            let reply = raw_roundtrip(addr, &bytes);
            if reply.is_empty() {
                // Dropped without a response: allowed for unrecoverable
                // transport-level garbage, never a hang (read timed out above
                // would still land here, bounded by the io timeout).
                return Ok(());
            }
            let head = String::from_utf8_lossy(&reply);
            let status: u16 = head
                .strip_prefix("HTTP/1.1 ")
                .and_then(|r| r.get(..3))
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("unparseable response head: {head:.60}"))?;
            if (400..600).contains(&status) {
                Ok(())
            } else {
                Err(format!("malformed input answered {status}: {head:.120}"))
            }
        },
    );

    // The bar: still healthy, and not one handler panic along the way.
    let health = client::get(addr, "/healthz", TIMEOUT).expect("health");
    assert_eq!(health.status, 200, "{}", health.text());
    assert_eq!(metric(addr, "panics_caught"), 0);
    assert!(server.drain().clean);
}

#[test]
fn cache_hit_bytes_equal_miss_bytes_over_the_network() {
    let _guard = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    let server = start(quick_config());
    let addr = server.addr();

    let target = "/v1/montecarlo?drivers=6&samples=512&seed=9";
    let miss = client::get(addr, target, TIMEOUT).expect("miss");
    assert_eq!(miss.status, 200, "{}", miss.text());
    assert_eq!(miss.header("x-ssn-cache"), Some("miss"));
    let hit = client::get(addr, target, TIMEOUT).expect("hit");
    assert_eq!(hit.status, 200);
    assert_eq!(hit.header("x-ssn-cache"), Some("hit"));
    assert_eq!(miss.body, hit.body, "cache must return identical bytes");
    assert_eq!(miss.header("x-ssn-digest"), hit.header("x-ssn-digest"));

    // A different spelling of the same resolved parameters (explicit
    // defaults, POST body instead of query) lands on the same digest.
    let spelled = client::post(
        addr,
        "/v1/montecarlo",
        "process=p018&drivers=6&samples=512&seed=9",
        TIMEOUT,
    )
    .expect("post spelling");
    assert_eq!(spelled.status, 200, "{}", spelled.text());
    assert_eq!(spelled.header("x-ssn-cache"), Some("hit"));
    assert_eq!(spelled.body, miss.body);
    assert!(server.drain().clean);
}

#[test]
fn overloaded_job_queue_sheds_with_retry_after() {
    let _guard = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    let server = start(ServerConfig {
        queue_capacity: 1,
        job_workers: 1,
        // Everything beyond a trivial request becomes a durable job.
        sync_max_items: 1,
        ..quick_config()
    });
    let addr = server.addr();

    let mut accepted = 0u32;
    let mut shed = 0u32;
    for seed in 0..6u32 {
        let target = format!("/v1/montecarlo?drivers=8&samples=2000000&seed={seed}");
        let resp = client::get(addr, &target, TIMEOUT).expect("submit");
        match resp.status {
            202 => accepted += 1,
            503 => {
                assert_eq!(resp.header("retry-after"), Some("1"), "{}", resp.text());
                assert!(resp.text().contains("overloaded"), "{}", resp.text());
                shed += 1;
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
    }
    assert!(accepted >= 1, "at least one job admitted");
    assert!(shed >= 1, "a bounded queue must shed past capacity");
    assert!(metric(addr, "shed_jobs") >= u64::from(shed));
    // Drain cancels the in-flight job at a chunk boundary; it stays
    // resumable, so the drain itself is still clean.
    assert!(server.drain().clean);
}

#[test]
fn drain_endpoint_stops_admission_and_closes_the_listener() {
    let _guard = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    let server = start(quick_config());
    let addr = server.addr();

    let ok = client::get(addr, "/v1/estimate?drivers=4", TIMEOUT).expect("pre-drain");
    assert_eq!(ok.status, 200, "{}", ok.text());

    let drain = client::post(addr, "/v1/admin/drain", "", TIMEOUT).expect("drain request");
    assert_eq!(drain.status, 200);
    assert!(drain.text().contains("draining"), "{}", drain.text());

    let report = server.wait_until_drained();
    assert!(report.clean, "{report:?}");
    // The listener is gone: a fresh connection must fail outright.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).is_err(),
        "listener still accepting after drain"
    );
}

#[test]
fn injected_network_faults_leave_the_server_serving() {
    let _guard = SERIALIZE.lock().unwrap_or_else(|e| e.into_inner());
    let plan = NetFaultPlan::parse("seed=3,torn=0.2,disconnect=0.2,panic=0.2").expect("plan");
    netfaults::arm(plan);
    let server = start(quick_config());
    let addr = server.addr();

    let mut answered = 0u32;
    let mut cut = 0u32;
    for i in 0..60u32 {
        let target = format!("/v1/estimate?drivers={}", 2 + i % 6);
        match client::request(addr, "POST", &target, Some(b"x=y"), TIMEOUT) {
            Ok(_) => answered += 1,
            // Injected disconnects and torn reads surface as transport
            // errors at the client; that's the point of the drill.
            Err(_) => cut += 1,
        }
    }
    netfaults::disarm();

    assert!(answered > 0, "some requests must still be answered");
    assert!(cut > 0, "the plan injects disconnects deterministically");
    let health = client::get(addr, "/healthz", TIMEOUT).expect("health after faults");
    assert_eq!(health.status, 200);
    assert!(
        metric(addr, "panics_caught") > 0,
        "the seeded plan injects handler panics"
    );
    assert!(server.drain().clean);
}
