//! Failure-injection tests: the suite must fail loudly and informatively,
//! never silently produce garbage.

use ssn_lab::spice::{
    dc_operating_point, transient, Circuit, DcOptions, SourceWave, SpiceError, TranOptions,
};

/// A current source into a capacitor-only node has no DC solution path
/// except gmin; the op must still converge (to a huge but finite voltage)
/// rather than hang or panic.
#[test]
fn dc_gmin_rescues_pathological_topologies() {
    let mut c = Circuit::new();
    c.isource("i1", "0", "island", SourceWave::Dc(1e-6))
        .expect("valid");
    c.capacitor("c1", "island", "0", 1e-12).expect("valid");
    let op = dc_operating_point(&c, DcOptions::default()).expect("gmin path exists");
    let v = op.voltage("island").expect("probe");
    // 1 uA through the 1e-12 S gmin floor: ~1e6 V. Finite and explainable.
    assert!(v.is_finite());
    assert!(v > 1e5);
}

/// Probing names that do not exist must return `UnknownProbe`, not panic.
#[test]
fn unknown_probes_error_cleanly() {
    let mut c = Circuit::new();
    c.vsource("v1", "a", "0", SourceWave::Dc(1.0))
        .expect("valid");
    c.resistor("r1", "a", "0", 1e3).expect("valid");
    let res = transient(&c, TranOptions::to(1e-9).with_ic()).expect("simulates");
    for bad in ["ghost", "A_typo", ""] {
        assert!(matches!(
            res.voltage(bad),
            Err(SpiceError::UnknownProbe { .. })
        ));
    }
}

/// Contradictory voltage sources (two different DC values forced on one
/// node pair) make the MNA matrix singular; the error must say so.
#[test]
fn contradictory_sources_report_singularity() {
    let mut c = Circuit::new();
    c.vsource("v1", "a", "0", SourceWave::Dc(1.0))
        .expect("valid");
    c.vsource("v2", "a", "0", SourceWave::Dc(2.0))
        .expect("valid");
    c.resistor("r1", "a", "0", 1e3).expect("valid");
    let result = dc_operating_point(&c, DcOptions::default());
    assert!(
        matches!(
            result,
            Err(SpiceError::Numeric(_)) | Err(SpiceError::NewtonDiverged { .. })
        ),
        "expected a loud failure, got {result:?}"
    );
}

/// An over-tight iteration budget must surface as `NewtonDiverged` with
/// the time attached, not as a wrong answer.
#[test]
fn starved_newton_budget_reports_divergence() {
    use ssn_lab::devices::{AlphaPower, MosPolarity};
    use std::sync::Arc;

    let mut c = Circuit::new();
    let m = Arc::new(AlphaPower::builder().build());
    c.vsource("vdd", "vdd", "0", SourceWave::Dc(1.8))
        .expect("valid");
    c.vsource("vin", "g", "0", SourceWave::ramp(0.0, 1.8, 0.0, 1e-10))
        .expect("valid");
    c.mosfet("m1", MosPolarity::Nmos, "out", "g", "0", "0", m)
        .expect("valid");
    c.resistor("rl", "vdd", "out", 10e3).expect("valid");
    c.capacitor("cl", "out", "0", 1e-13).expect("valid");
    let opts = TranOptions {
        newton: DcOptions {
            max_newton: 1, // starve it
            ..DcOptions::default()
        },
        ..TranOptions::to(1e-9)
    };
    let result = transient(&c, opts);
    assert!(
        matches!(
            result,
            Err(SpiceError::NewtonDiverged { .. }) | Err(SpiceError::TimestepUnderflow { .. })
        ),
        "expected divergence, got {result:?}"
    );
}

/// Deck parse errors carry line numbers all the way up through the public
/// API.
#[test]
fn parse_errors_are_located() {
    use ssn_lab::spice::parser::parse_deck;
    let deck = "title line\nR1 a 0 1k\nC1 b 0 oops\n";
    match parse_deck(deck) {
        Err(SpiceError::Parse { line, message }) => {
            assert_eq!(line, 3);
            assert!(message.contains("oops"));
        }
        other => panic!("expected a located parse error, got {other:?}"),
    }
}

/// Scenario validation rejects each physically meaningless input with a
/// message naming the offending quantity.
#[test]
fn scenario_errors_name_the_offender() {
    use ssn_lab::core::scenario::SsnScenario;
    use ssn_lab::devices::Asdm;
    use ssn_lab::units::{Henrys, Seconds, Siemens, Volts};

    let asdm = Asdm::new(Siemens::from_millis(5.0), 1.2, Volts::new(0.6));
    type BuildAttempt = Box<dyn Fn() -> Result<SsnScenario, ssn_lab::core::SsnError>>;
    let cases: Vec<(BuildAttempt, &str)> = vec![
        (
            Box::new(move || {
                SsnScenario::from_asdm(asdm, Volts::new(1.8))
                    .drivers(0)
                    .build()
            }),
            "driver",
        ),
        (
            Box::new(move || {
                SsnScenario::from_asdm(asdm, Volts::new(1.8))
                    .inductance(Henrys::ZERO)
                    .build()
            }),
            "inductance",
        ),
        (
            Box::new(move || {
                SsnScenario::from_asdm(asdm, Volts::new(1.8))
                    .rise_time(Seconds::new(-1.0))
                    .build()
            }),
            "rise time",
        ),
        (
            Box::new(move || SsnScenario::from_asdm(asdm, Volts::new(0.5)).build()),
            "V0",
        ),
    ];
    for (build, needle) in cases {
        let err = build().expect_err("must be rejected");
        let text = err.to_string();
        assert!(text.contains(needle), "{text:?} should mention {needle:?}");
    }
}

/// Monte Carlo clamping keeps every sample physical even under absurd
/// variation.
#[test]
fn monte_carlo_survives_extreme_variation() {
    use ssn_lab::core::montecarlo::{run_monte_carlo, VariationSpec};
    use ssn_lab::core::scenario::SsnScenario;
    use ssn_lab::devices::Asdm;
    use ssn_lab::units::{Henrys, Seconds, Siemens, Volts};

    let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
    let s = SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .drivers(8)
        .inductance(Henrys::from_nanos(5.0))
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid");
    let crazy = VariationSpec {
        k_frac: 1.0,
        sigma_abs: 1.0,
        v0_abs: 1.0,
        l_frac: 1.0,
        c_frac: 1.0,
    };
    let r = run_monte_carlo(&s, &crazy, 500, 99).expect("clamped sampling succeeds");
    assert_eq!(r.len(), 500);
    assert!(r.samples().iter().all(|v| v.is_finite() && *v >= 0.0));
}
