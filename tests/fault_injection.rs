//! Fault-injection matrix for the estimation pipeline's degradation
//! contract: every injected fault class must surface as a typed error or an
//! explicit partial result — never a process abort — and determinism must
//! hold both fault-on (same plan, same results) and fault-off (injection
//! disarmed is bit-identical to injection absent).
//!
//! Faults are injected through `ssn_core::faults` (compiled in behind the
//! `fault-injection` feature, which the workspace test build enables via
//! the `ssn-lab` meta-crate). Hooks are disarmed no-ops unless a
//! [`FaultPlan`] is armed, so every other test in this binary — and every
//! other test binary — sees the clean pipeline.

use ssn_lab::core::design;
use ssn_lab::core::faults::{with_faults, FaultPlan};
use ssn_lab::core::lcmodel;
use ssn_lab::core::montecarlo::{run_monte_carlo_with, VariationSpec, MC_CHUNK};
use ssn_lab::core::parallel::ExecPolicy;
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::SsnError;
use ssn_lab::devices::Asdm;
use ssn_lab::numeric::solve::rung;
use ssn_lab::units::{Farads, Henrys, Seconds, Siemens, Volts};

fn scenario(n: usize) -> SsnScenario {
    let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
    SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .drivers(n)
        .inductance(Henrys::from_nanos(5.0))
        .capacitance(Farads::from_picos(1.0))
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid scenario")
}

const SAMPLES: usize = 4 * MC_CHUNK; // four chunks

fn mc(
    plan: Option<FaultPlan>,
    policy: &ExecPolicy,
) -> Result<
    (
        ssn_lab::core::montecarlo::McResult,
        ssn_lab::core::parallel::ExecStats,
    ),
    SsnError,
> {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    match plan {
        Some(p) => with_faults(p, || run_monte_carlo_with(&s, &spec, SAMPLES, 42, policy)),
        None => run_monte_carlo_with(&s, &spec, SAMPLES, 42, policy),
    }
}

/// Fault class 1: NaN model outputs. Poisoned chunks are dropped and
/// counted; the surviving samples are still finite and ordered.
#[test]
fn nan_model_outputs_degrade_to_a_partial_result() {
    let plan = FaultPlan {
        seed: 3,
        nan_probability: 0.002,
        ..FaultPlan::default()
    };
    let (result, stats) = mc(Some(plan), &ExecPolicy::serial()).expect("partial result");
    assert!(
        stats.failed_chunks > 0 && stats.failed_chunks < 4,
        "want a strict subset of chunks poisoned, got {} of 4",
        stats.failed_chunks
    );
    assert_eq!(result.len(), SAMPLES - stats.failed_chunks * MC_CHUNK);
    assert!(result.samples().iter().all(|v| v.is_finite() && *v >= 0.0));
    // The telemetry line names the loss.
    assert!(stats.to_string().contains("failed chunk"));
}

/// Fault class 2: worker panics. Caught per chunk, never fatal; the run
/// reports which fraction of the work survived.
#[test]
fn worker_panics_are_isolated_per_chunk() {
    let plan = FaultPlan {
        seed: 9,
        panic_probability: 0.4,
        ..FaultPlan::default()
    };
    for threads in [1usize, 4] {
        let (result, stats) = mc(Some(plan), &ExecPolicy::with_threads(threads))
            .expect("surviving chunks form a partial result");
        assert!(
            stats.failed_chunks > 0 && stats.failed_chunks < 4,
            "threads {threads}: want a strict subset lost, got {} of 4",
            stats.failed_chunks
        );
        assert_eq!(result.len(), SAMPLES - stats.failed_chunks * MC_CHUNK);
    }
}

/// Fault class 2b: a transient panic is rescued by the retry budget — no
/// chunks lost, the retry is visible in telemetry.
#[test]
fn retry_budget_rescues_transient_worker_panics() {
    let plan = FaultPlan {
        seed: 9,
        panic_probability: 0.4,
        panic_once: true,
        ..FaultPlan::default()
    };
    let policy = ExecPolicy::serial().with_chunk_retries(1);
    let (result, stats) = mc(Some(plan), &policy).expect("retries rescue every chunk");
    assert_eq!(stats.failed_chunks, 0);
    assert!(stats.retried_chunks > 0, "retries must be recorded");
    assert_eq!(result.len(), SAMPLES);
}

/// Losing *every* chunk is a typed error naming the first cause, not an
/// empty success.
#[test]
fn losing_every_chunk_is_a_typed_error() {
    let plan = FaultPlan {
        seed: 1,
        panic_probability: 1.0,
        ..FaultPlan::default()
    };
    let err = mc(Some(plan), &ExecPolicy::serial()).expect_err("no chunks survive");
    match err {
        SsnError::AllChunksFailed {
            failed,
            total,
            first_cause,
        } => {
            assert_eq!((failed, total), (4, 4));
            assert!(first_cause.contains("injected fault"), "{first_cause}");
        }
        other => panic!("expected AllChunksFailed, got {other}"),
    }
}

/// Fault class 3: forced solver-rung failures. Disabling the primary rung
/// degrades `required_rise_time` to bisection — same root, and the
/// degradation is visible in the SolveReport rather than silent.
#[test]
fn solver_ladder_falls_back_when_a_rung_is_disabled() {
    let s = scenario(8);
    let budget = Volts::new(0.4);
    let (tr_clean, clean) = design::required_rise_time_with_report(&s, budget).expect("clean");
    assert_eq!(clean.method, "brent");
    assert!(clean.is_clean());

    let plan = FaultPlan {
        seed: 5,
        disable_solver_rungs: rung::BRENT,
        ..FaultPlan::default()
    };
    let (tr_fallback, report) =
        with_faults(plan, || design::required_rise_time_with_report(&s, budget))
            .expect("bisect rung still succeeds");
    assert_eq!(report.method, "bisect");
    // A disabled rung is skipped, not counted as tried.
    assert_eq!(report.rungs_tried, 1);
    let rel = (tr_fallback.value() - tr_clean.value()).abs() / tr_clean.value();
    assert!(rel < 1e-6, "fallback root drifted: {rel:.3e}");

    // Disabling the whole ladder is a typed error, not a hang or a panic.
    let plan = FaultPlan {
        seed: 5,
        disable_solver_rungs: rung::NEWTON | rung::BRENT | rung::BISECT,
        ..FaultPlan::default()
    };
    let err = with_faults(plan, || design::required_rise_time_with_report(&s, budget))
        .expect_err("every rung disabled");
    assert!(matches!(err, SsnError::Fit(_)), "got {err}");
}

/// Panic isolation also covers the design-grid sweep: surviving points keep
/// their `(N, L)` attribution and row-major order.
#[test]
fn grid_sweep_survives_chunk_panics_with_partial_points() {
    let s = scenario(8);
    let ns: Vec<usize> = (1..=10).collect();
    let ls: Vec<Henrys> = (1..=13).map(|l| Henrys::from_nanos(l as f64)).collect();
    let total_points = ns.len() * ls.len(); // 130 points -> 3 chunks of 64

    let plan = FaultPlan {
        seed: 11,
        panic_probability: 0.5,
        ..FaultPlan::default()
    };
    let (points, stats) = with_faults(plan, || {
        design::sweep_design_grid(&s, &ns, &ls, &ExecPolicy::serial())
    })
    .expect("surviving chunks form a partial sweep");
    assert!(
        stats.failed_chunks > 0,
        "the plan must cost at least one chunk"
    );
    assert!(points.len() < total_points);
    assert!(!points.is_empty());
    // Every surviving point is attributable and matches a clean evaluation.
    for p in &points {
        assert!(ns.contains(&p.n_drivers));
        assert!(ls.contains(&p.inductance));
        let direct = s
            .with_drivers(p.n_drivers)
            .unwrap()
            .with_package(p.inductance, s.capacitance())
            .unwrap();
        assert_eq!(p.vn_lc, lcmodel::vn_max(&direct).0);
    }
}

/// Determinism holds fault-ON: the same plan produces bit-identical
/// surviving samples and the same loss pattern at every thread count.
#[test]
fn injected_faults_are_deterministic() {
    let plan = FaultPlan {
        seed: 9,
        panic_probability: 0.4,
        ..FaultPlan::default()
    };
    let (base, base_stats) = mc(Some(plan), &ExecPolicy::serial()).expect("partial");
    for threads in [2usize, 8] {
        let (again, stats) = mc(Some(plan), &ExecPolicy::with_threads(threads)).expect("partial");
        assert_eq!(stats.failed_chunks, base_stats.failed_chunks);
        let a: Vec<u64> = base.samples().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = again.samples().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "fault pattern changed at {threads} threads");
    }
}

/// Determinism holds fault-OFF: running inside a disarmed harness (or with
/// no harness at all) is bit-identical — the hooks are true no-ops.
#[test]
fn disarmed_injection_is_bit_identical_to_no_injection() {
    let (clean, clean_stats) = mc(None, &ExecPolicy::serial()).expect("clean");
    assert_eq!(clean_stats.failed_chunks, 0);
    let (armed_zero, stats) = mc(Some(FaultPlan::default()), &ExecPolicy::serial())
        .expect("an all-zero plan injects nothing");
    assert_eq!(stats.failed_chunks, 0);
    let a: Vec<u64> = clean.samples().iter().map(|v| v.to_bits()).collect();
    let b: Vec<u64> = armed_zero.samples().iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b);
}
