//! Golden-deck regression tests over the checked-in `decks/` fixtures.

use ssn_lab::spice::parser::parse_deck_file;
use ssn_lab::spice::transient;

#[test]
fn pad_ring_deck_parses_and_matches_api_built_bank() {
    let deck = parse_deck_file("decks/pad_ring.sp").expect("fixture parses");
    assert_eq!(
        deck.title,
        "eight-slice pad ring with ESD clamps (SSN demo)"
    );
    // 1 source + L + C + 2 diodes + 8 * (fet + load) = 21 elements.
    assert_eq!(deck.circuit.element_count(), 21);
    assert!(deck.circuit.find_element("M.X5.M1").is_some());
    assert!(deck.circuit.find_element("Dup").is_some());

    let tran = deck.tran.expect(".tran present");
    let result = transient(&deck.circuit, tran.to_options()).expect("simulates");
    let vn = result.voltage("ng").expect("probe");

    // The deck's bank matches the API-built clamped bank from the core
    // bridge (same process, same clamp).
    use ssn_lab::core::bridge::{measure, DriverBankConfig};
    use ssn_lab::devices::process::Process;
    use ssn_lab::devices::Diode;
    let api = measure(
        &DriverBankConfig::from_process(&Process::p018(), 8).with_esd_clamp(Diode::new(1e-11, 1.0)),
    )
    .expect("simulates");
    let deck_peak = vn.peak().value;
    let api_peak = api.ground_bounce.peak().value;
    assert!(
        (deck_peak - api_peak).abs() / api_peak < 0.02,
        "deck {deck_peak} vs api {api_peak}"
    );
    // And the clamp holds the bounce near one forward drop.
    assert!(deck_peak < 0.65, "clamped bounce {deck_peak}");
}

#[test]
fn cell_library_is_reusable_standalone() {
    // A different top using the same .include library.
    let dir = std::env::temp_dir().join("ssn_deck_regression");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let lib = std::fs::canonicalize("decks/cells.inc").expect("fixture exists");
    let top = format!(
        "two-slice mini ring\n.include \"{}\"\nVin in 0 PWL(0 0 50p 0 550p 1.8)\n\
         Lg ng 0 5n IC=0\nX0 in ng out0 slice\nX1 in ng out1 slice\n\
         .ic V(ng)=0 V(in)=0\n.tran 1p 1.3n UIC\n",
        lib.display()
    );
    let path = dir.join("mini.sp");
    std::fs::write(&path, top).expect("write");
    let deck = parse_deck_file(&path).expect("parses");
    assert_eq!(deck.circuit.element_count(), 6);
    let result =
        transient(&deck.circuit, deck.tran.expect("tran").to_options()).expect("simulates");
    let peak = result.voltage("ng").expect("probe").peak().value;
    assert!(peak > 0.1 && peak < 0.5, "two-slice bounce {peak}");
    std::fs::remove_dir_all(&dir).ok();
}
