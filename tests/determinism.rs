//! Determinism contract of the parallel scenario engine: for a fixed seed,
//! the thread count must never change any result — not the samples, not the
//! derived statistics, not the histogram, not a design-grid sweep.
//!
//! The engine guarantees this by construction (fixed-size chunks with
//! per-chunk RNG streams, assembled in chunk order); these tests pin the
//! contract end to end through the public APIs.

use ssn_lab::core::design::sweep_design_grid;
use ssn_lab::core::montecarlo::{run_monte_carlo_with, VariationSpec, MC_CHUNK};
use ssn_lab::core::parallel::ExecPolicy;
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::telemetry;
use ssn_lab::devices::Asdm;
use ssn_lab::units::{Farads, Henrys, Seconds, Siemens, Volts};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Telemetry recording is process-global: while one test holds a
/// [`telemetry::Session`], spans from a concurrently running test would
/// leak into its report. Every test in this file takes this lock so the
/// session-holding tests observe only their own work.
static TELEMETRY_TESTS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TELEMETRY_TESTS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn scenario(n: usize) -> SsnScenario {
    let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
    SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .drivers(n)
        .inductance(Henrys::from_nanos(5.0))
        .capacitance(Farads::from_picos(1.0))
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid scenario")
}

#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    let _guard = lock();
    let s = scenario(8);
    let spec = VariationSpec::typical();
    // A sample count that is not a chunk multiple, spanning several chunks.
    let n_samples = 2 * MC_CHUNK + 137;
    let seed = 0xD1CE;

    let (reference, serial_stats) =
        run_monte_carlo_with(&s, &spec, n_samples, seed, &ExecPolicy::serial())
            .expect("serial run");
    assert_eq!(serial_stats.threads, 1);
    assert_eq!(serial_stats.items, n_samples);

    for threads in [1usize, 2, 8] {
        let (mc, stats) = run_monte_carlo_with(
            &s,
            &spec,
            n_samples,
            seed,
            &ExecPolicy::with_threads(threads),
        )
        .expect("parallel run");
        assert_eq!(stats.items, n_samples);

        // Bit-identical: raw sample streams first, then every statistic a
        // consumer can observe.
        assert_eq!(
            mc.samples(),
            reference.samples(),
            "samples differ at {threads} threads"
        );
        assert_eq!(
            mc.mean(),
            reference.mean(),
            "mean differs at {threads} threads"
        );
        assert_eq!(
            mc.std_dev(),
            reference.std_dev(),
            "std dev differs at {threads} threads"
        );
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99] {
            assert_eq!(
                mc.quantile(q),
                reference.quantile(q),
                "q{q} differs at {threads} threads"
            );
        }
        let (h, href) = (mc.histogram(32), reference.histogram(32));
        assert_eq!(h.lo, href.lo, "histogram lo differs at {threads} threads");
        assert_eq!(h.hi, href.hi, "histogram hi differs at {threads} threads");
        assert_eq!(
            h.counts, href.counts,
            "histogram counts differ at {threads} threads"
        );
    }
}

#[test]
fn monte_carlo_auto_policy_matches_serial() {
    let _guard = lock();
    let s = scenario(4);
    let spec = VariationSpec::typical();
    let (serial, _) =
        run_monte_carlo_with(&s, &spec, 500, 7, &ExecPolicy::serial()).expect("serial");
    let (auto, _) = run_monte_carlo_with(&s, &spec, 500, 7, &ExecPolicy::auto()).expect("auto");
    assert_eq!(serial.samples(), auto.samples());
}

#[test]
fn different_seeds_differ() {
    let _guard = lock();
    // Guards against a degenerate "deterministic because constant" engine.
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let (a, _) = run_monte_carlo_with(&s, &spec, 300, 1, &ExecPolicy::auto()).expect("run");
    let (b, _) = run_monte_carlo_with(&s, &spec, 300, 2, &ExecPolicy::auto()).expect("run");
    assert_ne!(a.samples(), b.samples());
}

#[test]
fn design_grid_is_identical_across_thread_counts() {
    let _guard = lock();
    let template = scenario(8);
    let drivers: Vec<usize> = (1..=24).collect();
    let inductances: Vec<Henrys> = (1..=8).map(|l| Henrys::from_nanos(l as f64)).collect();

    let (reference, stats) =
        sweep_design_grid(&template, &drivers, &inductances, &ExecPolicy::serial())
            .expect("serial sweep");
    assert_eq!(stats.items, drivers.len() * inductances.len());

    for threads in [2usize, 8] {
        let (points, _) = sweep_design_grid(
            &template,
            &drivers,
            &inductances,
            &ExecPolicy::with_threads(threads),
        )
        .expect("parallel sweep");
        assert_eq!(points, reference, "grid differs at {threads} threads");
    }
}

#[test]
fn telemetry_is_present_and_sane() {
    let _guard = lock();
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let (_, stats) =
        run_monte_carlo_with(&s, &spec, 1000, 1, &ExecPolicy::with_threads(2)).expect("run");
    assert_eq!(stats.items, 1000);
    assert!(stats.threads >= 1);
    assert!(stats.items_per_sec() > 0.0);
    assert!(stats.utilization() >= 0.0);
    let line = stats.to_string();
    assert!(line.contains("1000 evaluations"), "telemetry line: {line}");
    assert!(line.contains("eval/s"), "telemetry line: {line}");
}

#[test]
fn telemetry_on_and_off_are_bit_identical_at_every_thread_count() {
    let _guard = lock();
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let n_samples = MC_CHUNK + 61;
    let seed = 0xBEEF;
    let drivers: Vec<usize> = (1..=12).collect();
    let inductances: Vec<Henrys> = (1..=6).map(|l| Henrys::from_nanos(l as f64)).collect();

    for threads in [1usize, 2, 4, 8] {
        let policy = ExecPolicy::with_threads(threads);
        // Telemetry off (no session): the baseline.
        let (mc_off, _) =
            run_monte_carlo_with(&s, &spec, n_samples, seed, &policy).expect("mc off");
        let (grid_off, _) =
            sweep_design_grid(&s, &drivers, &inductances, &policy).expect("grid off");

        // Telemetry on: identical numbers, plus a non-empty report.
        let session = telemetry::Session::start();
        let (mc_on, grid_on) = {
            let _root = telemetry::span("test.determinism");
            let (mc_on, _) =
                run_monte_carlo_with(&s, &spec, n_samples, seed, &policy).expect("mc on");
            let (grid_on, _) =
                sweep_design_grid(&s, &drivers, &inductances, &policy).expect("grid on");
            (mc_on, grid_on)
        };
        let report = session.finish();

        assert_eq!(
            mc_on.samples(),
            mc_off.samples(),
            "telemetry changed Monte Carlo samples at {threads} threads"
        );
        assert_eq!(
            grid_on, grid_off,
            "telemetry changed the design grid at {threads} threads"
        );
        assert!(
            !report.is_empty(),
            "no telemetry recorded at {threads} threads"
        );
        assert!(
            report.spans.iter().any(|sp| sp.path.ends_with("mc.run")),
            "missing mc.run span at {threads} threads: {report:?}"
        );
        assert!(
            report.spans.iter().any(|sp| sp.path.ends_with("grid.run")),
            "missing grid.run span at {threads} threads: {report:?}"
        );
        assert_eq!(
            report.counter("mc.samples"),
            Some(n_samples as u64),
            "mc.samples counter wrong at {threads} threads"
        );
        assert_eq!(
            report.counter("grid.points"),
            Some((drivers.len() * inductances.len()) as u64),
            "grid.points counter wrong at {threads} threads"
        );
    }
}

/// Zeroes every timing value so two JSON streams of the same run can be
/// compared exactly: the digit runs after `"total_ns":` / `"self_ns":`,
/// and the `"value":` of counters whose name carries the `_ns` suffix
/// (the convention for nanosecond-valued counters).
fn strip_timings(stream: &str) -> String {
    let mut out = String::with_capacity(stream.len());
    for line in stream.lines() {
        let mut rest = line;
        while let Some(pos) = rest.find("_ns\":") {
            let (head, tail) = rest.split_at(pos + "_ns\":".len());
            out.push_str(head);
            out.push('0');
            rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
        }
        if line.contains("\"type\":\"counter\"") && line.contains("_ns\",") {
            if let Some(pos) = rest.find("\"value\":") {
                let (head, tail) = rest.split_at(pos + "\"value\":".len());
                out.push_str(head);
                out.push('0');
                rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
            }
        }
        out.push_str(rest);
        out.push('\n');
    }
    out
}

#[test]
fn telemetry_json_stream_is_stable_modulo_timing() {
    let _guard = lock();
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let policy = ExecPolicy::with_threads(2);

    let streams: Vec<String> = (0..2)
        .map(|_| {
            let session = telemetry::Session::start();
            {
                let _root = telemetry::span("test.json_stability");
                let _ = run_monte_carlo_with(&s, &spec, 400, 3, &policy).expect("run");
            }
            session.finish().to_json_lines()
        })
        .collect();

    assert_eq!(
        strip_timings(&streams[0]),
        strip_timings(&streams[1]),
        "same run, different structure:\n--- a ---\n{}\n--- b ---\n{}",
        streams[0],
        streams[1]
    );
    // And the sanitised stream still validates against the schema.
    telemetry::json::validate_lines(&strip_timings(&streams[0])).expect("valid after stripping");
}
