//! The large-circuit solver tier, pinned from the outside: sparse CSR +
//! GMRES must be a drop-in replacement for dense LU on every linear
//! network the suite can synthesize, and the GMRES ladder itself must
//! honour its convergence and restart contracts.
//!
//! Three layers:
//!
//! 1. **Randomized netlist differential** — seeded random RC(L) networks
//!    solved through both tiers (`sparse_dim_threshold` forced to 1 and
//!    to `usize::MAX`); DC operating points must agree to a tight
//!    absolute/relative budget, far below any physical tolerance.
//! 2. **GMRES properties** — full-restart GMRES converges within `n`
//!    iterations (the Krylov dimension argument), short restarts still
//!    converge (just with restarts > 0), and the ladder report is honest
//!    about which rung produced the answer.
//! 3. **Grid-scale gate** — the synthesized power-grid sweep from
//!    `ssn_core::grids` (the `ssn validate --grids` gate) runs clean, with
//!    the sparse-vs-dense trajectory differential on the small meshes.

use ssn_lab::core::grids::{run_grid_sweep, GridSweepOptions};
use ssn_lab::numeric::gmres::{gmres, solve_sparse, GmresOptions, Preconditioner};
use ssn_lab::numeric::rng::Rng;
use ssn_lab::numeric::sparse::CsrMatrix;
use ssn_lab::spice::{dc_operating_point, transient, Circuit, DcOptions, SourceWave, TranOptions};

/// Builds a random connected linear network with `n` internal nodes:
/// a resistor spanning tree rooted at the driven node, random cross
/// resistors, capacitors to ground, a few inductor branches, and a couple
/// of current sources. Every element keeps a DC path to ground.
fn random_linear_network(n: usize, rng: &mut Rng) -> Circuit {
    let mut c = Circuit::new();
    c.vsource("vin", "n0", "0", SourceWave::Dc(rng.uniform_in(0.5, 2.0)))
        .expect("source");
    // Spanning tree: node i hangs off a random earlier node.
    for i in 1..n {
        let parent = (rng.uniform_in(0.0, i as f64) as usize).min(i - 1);
        c.resistor(
            &format!("rt{i}"),
            &format!("n{parent}"),
            &format!("n{i}"),
            rng.uniform_in(10.0, 1000.0),
        )
        .expect("tree resistor");
    }
    // Random cross links (may duplicate tree edges; that's fine).
    for k in 0..n {
        let a = (rng.uniform_in(0.0, n as f64) as usize).min(n - 1);
        let b = (rng.uniform_in(0.0, n as f64) as usize).min(n - 1);
        if a != b {
            c.resistor(
                &format!("rx{k}"),
                &format!("n{a}"),
                &format!("n{b}"),
                rng.uniform_in(10.0, 1000.0),
            )
            .expect("cross resistor");
        }
    }
    // Capacitors to ground on every third node, inductor stubs on a few.
    for i in (0..n).step_by(3) {
        c.capacitor(
            &format!("c{i}"),
            &format!("n{i}"),
            "0",
            rng.uniform_in(1e-13, 1e-11),
        )
        .expect("cap");
    }
    for i in (1..n).step_by(7) {
        c.inductor(
            &format!("l{i}"),
            &format!("n{i}"),
            &format!("nl{i}"),
            rng.uniform_in(1e-10, 1e-8),
        )
        .expect("inductor");
        c.resistor(
            &format!("rl{i}"),
            &format!("nl{i}"),
            "0",
            rng.uniform_in(20.0, 200.0),
        )
        .expect("inductor load");
    }
    // A couple of current sinks.
    for k in 0..2 {
        let a = (rng.uniform_in(0.0, n as f64) as usize).min(n - 1);
        c.isource(
            &format!("i{k}"),
            &format!("n{a}"),
            "0",
            SourceWave::Dc(rng.uniform_in(1e-5, 1e-3)),
        )
        .expect("isource");
    }
    c
}

#[test]
fn sparse_and_dense_dc_agree_on_random_networks() {
    for (trial, &n) in [20usize, 45, 80, 140].iter().enumerate() {
        let mut rng = Rng::from_seed_and_stream(42, trial as u64);
        let circuit = random_linear_network(n, &mut rng);

        let mut dense_opts = DcOptions::default();
        dense_opts.sparse_dim_threshold = usize::MAX;
        let dense = dc_operating_point(&circuit, dense_opts).expect("dense DC");

        let mut sparse_opts = DcOptions::default();
        sparse_opts.sparse_dim_threshold = 1;
        let sparse = dc_operating_point(&circuit, sparse_opts).expect("sparse DC");

        for i in 0..n {
            let node = format!("n{i}");
            let vd = dense.voltage(&node).expect("dense probe");
            let vs = sparse.voltage(&node).expect("sparse probe");
            let err = (vd - vs).abs() / vd.abs().max(1e-3);
            assert!(
                err < 1e-8,
                "trial {trial} node {node}: dense {vd:e} vs sparse {vs:e} (rel {err:e})"
            );
        }
    }
}

#[test]
fn sparse_and_dense_transients_agree_on_a_random_network() {
    let mut rng = Rng::from_seed_and_stream(7, 0);
    let circuit = random_linear_network(60, &mut rng);
    let mut opts = TranOptions::to(5e-9);
    opts.newton.sparse_dim_threshold = usize::MAX;
    let dense = transient(&circuit, opts.clone()).expect("dense transient");
    opts.newton.sparse_dim_threshold = 1;
    let sparse = transient(&circuit, opts).expect("sparse transient");
    for node in ["n10", "n30", "n59"] {
        let wd = dense.voltage(node).expect("probe");
        let ws = sparse.voltage(node).expect("probe");
        let scale = wd.values().iter().fold(1e-6f64, |m, v| m.max(v.abs()));
        for k in 0..=50 {
            let t = 5e-9 * f64::from(k) / 50.0;
            let err = (wd.sample(t) - ws.sample(t)).abs() / scale;
            assert!(err < 1e-4, "{node} at {t:e}s: tiers differ by {err:e}");
        }
    }
}

/// A 2-D Poisson-like SPD test matrix on a `side x side` grid.
fn poisson2d(side: usize) -> CsrMatrix {
    let n = side * side;
    let idx = |r: usize, c: usize| r * side + c;
    let mut pattern = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let i = idx(r, c);
            pattern.push((i, i));
            if r + 1 < side {
                pattern.push((i, idx(r + 1, c)));
                pattern.push((idx(r + 1, c), i));
            }
            if c + 1 < side {
                pattern.push((i, idx(r, c + 1)));
                pattern.push((idx(r, c + 1), i));
            }
        }
    }
    let mut a = CsrMatrix::from_pattern(n, &pattern).expect("pattern");
    a.fill_zero();
    for r in 0..side {
        for c in 0..side {
            let i = idx(r, c);
            a.add(i, i, 4.0);
            if r + 1 < side {
                a.add(i, idx(r + 1, c), -1.0);
                a.add(idx(r + 1, c), i, -1.0);
            }
            if c + 1 < side {
                a.add(i, idx(r, c + 1), -1.0);
                a.add(idx(r, c + 1), i, -1.0);
            }
        }
    }
    a
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::from_seed_and_stream(seed, 1);
    (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect()
}

/// The Krylov-dimension property: with a full restart window, GMRES on an
/// `n`-dimensional system converges in at most `n` iterations (and in
/// practice far fewer on a preconditioned Poisson matrix).
#[test]
fn full_gmres_converges_within_the_krylov_dimension() {
    for side in [5usize, 8, 12] {
        let a = poisson2d(side);
        let n = side * side;
        let b = rhs(n, side as u64);
        let opts = GmresOptions {
            restart: n,
            max_iters: n,
            ..GmresOptions::default()
        };
        let jacobi = Preconditioner::jacobi(&a).expect("nonzero diagonal");
        let (x, report) = gmres(&a, &b, &jacobi, &opts).expect("gmres runs");
        assert!(report.converged, "side {side}: not converged in n iters");
        assert!(report.iterations <= n);
        assert_eq!(report.restarts, 0, "full window must never restart");
        assert!(a.residual_inf(&x, &b).expect("shapes match") <= 1e-10);
    }
}

/// Short restart windows trade iterations for memory but must still get
/// there; the report must show the restarts it paid.
#[test]
fn restarted_gmres_still_converges_and_reports_restarts() {
    let side = 10;
    let a = poisson2d(side);
    let b = rhs(side * side, 3);
    let full = GmresOptions {
        restart: side * side,
        max_iters: 10_000,
        rel_tol: 1e-10,
        ..GmresOptions::default()
    };
    let jacobi = Preconditioner::jacobi(&a).expect("nonzero diagonal");
    let (_, full_report) = gmres(&a, &b, &jacobi, &full).expect("full gmres");
    let short = GmresOptions { restart: 8, ..full };
    let (x, short_report) = gmres(&a, &b, &jacobi, &short).expect("short gmres");
    assert!(short_report.converged);
    assert!(short_report.restarts > 0, "a window of 8 must restart");
    assert!(
        short_report.iterations >= full_report.iterations,
        "restarting cannot beat the full Krylov space"
    );
    assert!(a.residual_inf(&x, &b).expect("shapes match") <= 1e-8);
}

/// The ladder's honesty: an easy system reports the first rung, an
/// impossible budget falls through to dense LU and says so.
#[test]
fn ladder_reports_the_rung_that_solved() {
    let a = poisson2d(8);
    let b = rhs(64, 9);
    let (x, report) = solve_sparse(&a, &b, &GmresOptions::default()).expect("ladder");
    assert!(report.converged && report.is_clean());
    assert_eq!(report.method, "gmres+ilu0");
    assert!(a.residual_inf(&x, &b).expect("shapes match") <= 1e-9);

    let starved = GmresOptions {
        restart: 1,
        max_iters: 1,
        rel_tol: 1e-300,
        ..GmresOptions::default()
    };
    let (x, report) = solve_sparse(&a, &b, &starved).expect("ladder");
    assert!(report.converged, "the dense rung always lands");
    assert_eq!(report.method, "dense-lu");
    assert_eq!(report.rungs_tried, 3);
    assert!(!report.is_clean());
    assert!(a.residual_inf(&x, &b).expect("shapes match") <= 1e-9);
}

/// The `ssn validate --grids` gate end to end: randomized meshes plus the
/// 1024-node headline grid, all clean.
#[test]
fn grid_sweep_gate_runs_clean() {
    let report = run_grid_sweep(&GridSweepOptions { cases: 2, seed: 11 }).expect("sweep");
    assert_eq!(report.violations, 0, "\n{}", report.summary());
    let big = report.cases.last().expect("at least one case");
    assert!(big.dim >= 1000, "headline case must be past 1000 unknowns");
}
