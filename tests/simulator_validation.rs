//! Cross-validation of the `ssn-spice` transient engine against analytic
//! solutions and the independent reference integrators of `ssn-numeric`.

use ssn_lab::numeric::ode::{rkf45, Rkf45Options};
use ssn_lab::spice::{transient, Circuit, IntegrationMethod, SourceWave, TranOptions};

fn tight(t_stop: f64) -> TranOptions {
    TranOptions {
        lte_rel: 0.001,
        lte_abs: 1e-5,
        ..TranOptions::to(t_stop).with_ic()
    }
}

/// Series RLC driven by a ramp — the *linearized* SSN circuit — simulated
/// by the MNA engine and integrated independently by RKF45. This is the
/// strongest simulator check: same equations, two unrelated solvers.
#[test]
fn mna_engine_matches_reference_integrator_on_linearized_ssn_circuit() {
    // Ramp current source N*K*s*t injected into node vn; vn has C to
    // ground and L to ground (branch current), plus a conductance
    // sigma*N*K feeding back — modelled here by an explicit resistor.
    let (l, c, g) = (5e-9, 1e-12, 8.0 * 7.1e-3 * 1.16); // ~N=8 fit values
    let slope = 8.0 * 7.1e-3 * 3.6e9; // N K s (A/s)
    let t_stop = 0.4e-9;

    let mut circuit = Circuit::new();
    circuit
        .isource(
            "idrv",
            "0",
            "vn",
            SourceWave::Pwl(vec![(0.0, 0.0), (t_stop, slope * t_stop)]),
        )
        .expect("valid");
    circuit.resistor("gfb", "vn", "0", 1.0 / g).expect("valid");
    circuit
        .capacitor_with_ic("cg", "vn", "0", c, 0.0)
        .expect("valid");
    circuit
        .inductor_with_ic("lg", "vn", "0", l, 0.0)
        .expect("valid");

    let res = transient(&circuit, tight(t_stop)).expect("converges");
    let vn = res.voltage("vn").expect("probe");

    // Reference: C v' = i(t) - g v - iL ; L iL' = v.
    let traj = rkf45(
        |t, y, dy| {
            let i = slope * t;
            dy[0] = (i - g * y[0] - y[1]) / c;
            dy[1] = y[0] / l;
        },
        0.0,
        t_stop,
        &[0.0, 0.0],
        Rkf45Options {
            h_max: t_stop / 2000.0,
            ..Rkf45Options::default()
        },
    )
    .expect("integrates");

    let scale = vn.peak().value.abs().max(1e-3);
    for &frac in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let t = t_stop * frac;
        let a = vn.sample(t);
        let b = traj.sample(0, t).expect("in range");
        assert!(
            (a - b).abs() / scale < 0.01,
            "t = {t:.3e}: mna {a:.5} vs rkf45 {b:.5}"
        );
    }
}

/// RC charging curve against the textbook exponential at tight tolerance.
#[test]
fn rc_charging_matches_exponential() {
    let mut c = Circuit::new();
    c.vsource("v1", "in", "0", SourceWave::Dc(1.0))
        .expect("valid");
    c.resistor("r1", "in", "out", 2e3).expect("valid");
    c.capacitor_with_ic("c1", "out", "0", 0.5e-9, 0.0)
        .expect("valid");
    let res = transient(&c, tight(6e-6)).expect("converges");
    let out = res.voltage("out").expect("probe");
    let tau = 1e-6f64;
    for &t in &[0.3e-6f64, 1e-6, 2.5e-6, 5e-6] {
        let exact = 1.0 - (-t / tau).exp();
        assert!(
            (out.sample(t) - exact).abs() < 2e-3,
            "t = {t:.1e}: {} vs {exact}",
            out.sample(t)
        );
    }
}

/// Charge conservation: the charge delivered through the source equals the
/// charge stored on the capacitor (integral of branch current).
#[test]
fn charge_conservation_through_source() {
    let mut c = Circuit::new();
    c.vsource("v1", "in", "0", SourceWave::Dc(1.0))
        .expect("valid");
    c.resistor("r1", "in", "out", 1e3).expect("valid");
    c.capacitor_with_ic("c1", "out", "0", 1e-9, 0.0)
        .expect("valid");
    let res = transient(&c, tight(10e-6)).expect("converges");
    let i = res.branch_current("v1").expect("probe");
    // Trapezoidal integral of the (negative) source branch current.
    let times = i.times();
    let vals = i.values();
    let mut q = 0.0;
    for k in 1..times.len() {
        q += 0.5 * (vals[k] + vals[k - 1]) * (times[k] - times[k - 1]);
    }
    // The source supplies the capacitor's final charge C*V = 1 nC (the
    // branch current is negative by the associated reference direction).
    assert!((-q - 1e-9).abs() < 2e-11, "delivered charge {} vs 1 nC", -q);
}

/// Energy audit on an undriven LC tank: the total energy decays only
/// through the (tiny) gmin floor, so over a few cycles it must be nearly
/// conserved with the trapezoidal method.
#[test]
fn lc_tank_conserves_energy_with_trapezoidal() {
    let (l, c) = (1e-6, 1e-9);
    let mut circuit = Circuit::new();
    circuit
        .capacitor_with_ic("c1", "top", "0", c, 1.0)
        .expect("valid");
    circuit
        .inductor_with_ic("l1", "top", "0", l, 0.0)
        .expect("valid");
    let period = 2.0 * std::f64::consts::PI * (l * c).sqrt();
    let opts = TranOptions {
        lte_rel: 0.0005,
        lte_abs: 1e-6,
        ..TranOptions::to(3.0 * period)
            .with_ic()
            .with_method(IntegrationMethod::Trapezoidal)
    };
    let res = transient(&circuit, opts).expect("converges");
    let v = res.voltage("top").expect("probe");
    let i = res.branch_current("l1").expect("probe");
    let e0 = 0.5 * c; // 0.5 C V^2 at V = 1
    let t_end = 3.0 * period * 0.999;
    let e_end = 0.5 * c * v.sample(t_end).powi(2) + 0.5 * l * i.sample(t_end).powi(2);
    assert!(
        (e_end - e0).abs() / e0 < 0.02,
        "energy drifted from {e0:.3e} to {e_end:.3e}"
    );
    // And the oscillation frequency is 1/(2 pi sqrt(LC)).
    let crossings = v.crossings(0.0);
    assert!(crossings.len() >= 4, "{crossings:?}");
    let half_period = crossings[1] - crossings[0];
    assert!(
        (half_period - period / 2.0).abs() / (period / 2.0) < 0.01,
        "half period {half_period:.3e} vs {:.3e}",
        period / 2.0
    );
}

/// The DC operating point agrees with the long-time transient limit for a
/// nonlinear (MOSFET) circuit.
#[test]
fn dc_op_matches_transient_settling() {
    use ssn_lab::devices::{AlphaPower, MosPolarity};
    use ssn_lab::spice::{dc_operating_point, DcOptions};
    use std::sync::Arc;

    let model = Arc::new(AlphaPower::builder().build());
    let mut c = Circuit::new();
    c.vsource("vdd", "vdd", "0", SourceWave::Dc(1.8))
        .expect("valid");
    c.vsource("vin", "g", "0", SourceWave::Dc(0.9))
        .expect("valid");
    c.resistor("rl", "vdd", "out", 2e3).expect("valid");
    c.mosfet("m1", MosPolarity::Nmos, "out", "g", "0", "0", model)
        .expect("valid");
    c.capacitor("cl", "out", "0", 1e-12).expect("valid");

    let op = dc_operating_point(&c, DcOptions::default()).expect("op converges");
    let tran = transient(&c, TranOptions::to(50e-9)).expect("converges");
    let settled = tran.final_voltage("out").expect("probe");
    assert!(
        (op.voltage("out").expect("probe") - settled).abs() < 1e-3,
        "dc {} vs settled {settled}",
        op.voltage("out").expect("probe")
    );
}

/// Observed convergence order of the two companion-model integrators on
/// an analytically solvable series-RLC step (R = 20 Ohm, L = 1 uH,
/// C = 1 nF: alpha = 1e7 rad/s, omega_d = 3e7 rad/s, under-damped).
///
/// The adaptive controller is pinned to a fixed step (`dt_init = dt_max`,
/// LTE tolerances opened wide) so halving `h` isolates the integrator's
/// truncation error: backward Euler must be first order (error ratio ~2
/// per halving) and trapezoidal at least second order (~4). This is what
/// lets a differential-oracle disagreement be attributed to the *model*
/// rather than the integrator: the integrator's error scales as measured
/// here, orders of magnitude inside the oracle budgets at the oracle's
/// operating step sizes.
#[test]
fn integrator_convergence_order_on_analytic_rlc_step() {
    let (r, l, c, v) = (20.0_f64, 1e-6_f64, 1e-9_f64, 1.0_f64);
    let alpha = r / (2.0 * l); // 1e7
    let omega0_sq = 1.0 / (l * c); // 1e15
    let omega_d = (omega0_sq - alpha * alpha).sqrt(); // 3e7
    let analytic = |t: f64| {
        v * (1.0
            - (-alpha * t).exp() * ((omega_d * t).cos() + (alpha / omega_d) * (omega_d * t).sin()))
    };

    let build = || {
        let mut circuit = Circuit::new();
        circuit
            .vsource("vs", "in", "0", SourceWave::Dc(v))
            .expect("valid");
        circuit.resistor("r1", "in", "mid", r).expect("valid");
        circuit
            .inductor_with_ic("l1", "mid", "out", l, 0.0)
            .expect("valid");
        circuit
            .capacitor_with_ic("c1", "out", "0", c, 0.0)
            .expect("valid");
        circuit
    };

    let t_stop = 2e-7; // two damping time constants, ~1 ring period
    let run = |method: IntegrationMethod, h: f64| -> f64 {
        let opts = TranOptions {
            dt_init: h,
            dt_max: h,
            // Open the LTE budget so the controller never adapts: the step
            // stays exactly h and the error is the integrator's own.
            lte_rel: 1e9,
            lte_abs: 1e9,
            ..TranOptions::to(t_stop).with_ic().with_method(method)
        };
        let res = transient(&build(), opts).expect("converges");
        let w = res.voltage("out").expect("probe");
        // Max error over grid-aligned checkpoints.
        (1..=8)
            .map(|i| {
                let t = t_stop * i as f64 / 8.0;
                (w.sample(t) - analytic(t)).abs()
            })
            .fold(0.0, f64::max)
    };

    let h0 = 2e-9; // 100 steps per t_stop, ~10 per ring quarter-period
    for (method, min_order, max_order) in [
        (IntegrationMethod::BackwardEuler, 0.8, 1.3),
        (IntegrationMethod::Trapezoidal, 1.7, 2.4),
    ] {
        let errors: Vec<f64> = [h0, h0 / 2.0, h0 / 4.0]
            .iter()
            .map(|&h| run(method, h))
            .collect();
        for pair in errors.windows(2) {
            let order = (pair[0] / pair[1]).log2();
            assert!(
                order > min_order && order < max_order,
                "{method:?}: observed order {order:.2} (errors {errors:?})"
            );
        }
        // The error is also small in absolute terms at the finest step.
        assert!(
            errors[2] < 0.05 * v,
            "{method:?}: error at h0/4 too large: {errors:?}"
        );
    }
}
