//! Property-based tests on the suite's core invariants, driven by the
//! in-repo deterministic harness (`ssn_numeric::check`): every case derives
//! from a fixed seed and a failure prints its replay seed.

use ssn_lab::core::parallel::ExecPolicy;
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{lcmodel, lmodel, optimize};
use ssn_lab::devices::fit::{fit_asdm, IvSample};
use ssn_lab::devices::{Asdm, MosModel};
use ssn_lab::numeric::check::{forall, Gen};
use ssn_lab::numeric::lu::{solve, LuFactor};
use ssn_lab::numeric::matrix::DenseMatrix;
use ssn_lab::units::{Farads, Henrys, Seconds, Siemens, Volts};

/// A physically sensible ASDM.
fn gen_asdm(g: &mut Gen) -> Asdm {
    let k = g.f64_in(1e-3, 20e-3);
    let sigma = g.f64_in(1.0, 1.6);
    let v0 = g.f64_in(0.3, 0.9);
    Asdm::new(Siemens::new(k), sigma, Volts::new(v0))
}

/// A full scenario across all damping regimes (`C` may be 0 = L-only).
fn gen_scenario(g: &mut Gen) -> SsnScenario {
    let asdm = gen_asdm(g);
    let n = g.usize_in(1, 23);
    let l = g.f64_in(1e-9, 10e-9);
    let c = g.f64_in(0.0, 4e-12);
    let tr = g.f64_in(0.2e-9, 2e-9);
    SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .drivers(n)
        .inductance(Henrys::new(l))
        .capacitance(Farads::new(c))
        .rise_time(Seconds::new(tr))
        .build()
        .expect("generator yields valid scenarios")
}

/// Paper Table 1: the closed-form maximum always equals the maximum of
/// its own densely sampled waveform.
#[test]
fn vn_max_equals_waveform_maximum() {
    forall("vn_max equals waveform maximum", 128, |g| {
        let s = gen_scenario(g);
        let (vmax, _) = lcmodel::vn_max(&s);
        let wave = lcmodel::vn_waveform(&s, 4096).expect("waveform");
        let peak = wave.peak().value;
        let scale = vmax.value().max(1e-6);
        if (vmax.value() - peak).abs() / scale < 2e-3 {
            Ok(())
        } else {
            Err(format!("formula {} vs waveform {peak}", vmax.value()))
        }
    });
}

/// The SSN voltage never exceeds twice the asymptote `V_inf` (the
/// zero-damping ring bound) and is never negative during the ramp.
#[test]
fn vn_bounded_by_ring_limit() {
    forall("vn bounded by ring limit", 256, |g| {
        let s = gen_scenario(g);
        let (vmax, _) = lcmodel::vn_max(&s);
        if vmax.value() < 0.0 {
            return Err(format!("negative vmax {}", vmax.value()));
        }
        if vmax.value() <= 2.0 * s.v_inf().value() + 1e-12 {
            Ok(())
        } else {
            Err(format!(
                "vmax {} vs 2 V_inf {}",
                vmax.value(),
                2.0 * s.v_inf().value()
            ))
        }
    });
}

/// Robustness contract: for every scenario the validated construction path
/// accepts, `vn_max` is finite and physically sensible — non-negative and
/// below the supply (a ground bounce cannot exceed the rail driving it).
/// Both models, all damping regimes.
#[test]
fn vn_max_finite_and_within_supply() {
    forall("vn_max finite and within [0, Vdd]", 256, |g| {
        let s = gen_scenario(g);
        let vdd = s.vdd().value();
        let (lc, case) = lcmodel::vn_max(&s);
        let l_only = lmodel::vn_max(&s);
        for (name, v) in [("LC", lc.value()), ("L-only", l_only.value())] {
            if !v.is_finite() {
                return Err(format!("{name} vn_max non-finite ({case:?})"));
            }
            if v < 0.0 {
                return Err(format!("{name} vn_max negative: {v} ({case:?})"));
            }
            if v > vdd {
                return Err(format!("{name} vn_max {v} exceeds Vdd {vdd} ({case:?})"));
            }
        }
        Ok(())
    });
}

/// The maximum SSN is continuous across the damping-case boundary: shrinking
/// or growing `C` through the critical capacitance must not jump the
/// prediction (Table 1's cases meet at the boundary).
#[test]
fn vn_max_continuous_across_damping_boundary() {
    use ssn_lab::core::lcmodel::critical_capacitance;

    forall("vn_max continuous across damping boundary", 128, |g| {
        let s = gen_scenario(g);
        let c_crit = critical_capacitance(&s).value();
        if !(c_crit > 1e-18) || !c_crit.is_finite() {
            return Ok(()); // degenerate boundary for this draw
        }
        let eps = 1e-6;
        let below = s
            .with_package(s.inductance(), Farads::new(c_crit * (1.0 - eps)))
            .expect("valid");
        let above = s
            .with_package(s.inductance(), Farads::new(c_crit * (1.0 + eps)))
            .expect("valid");
        let (v_under, _) = lcmodel::vn_max(&below);
        let (v_over, _) = lcmodel::vn_max(&above);
        let scale = v_under.value().abs().max(1e-9);
        let jump = (v_under.value() - v_over.value()).abs() / scale;
        if jump < 1e-3 {
            Ok(())
        } else {
            Err(format!(
                "vn jumps {:.3e} -> {:.3e} ({jump:.2e} rel) across C_crit = {c_crit:.3e}",
                v_under.value(),
                v_over.value()
            ))
        }
    });
}

/// Monotonicity in the driver count (LC model): more simultaneous drivers
/// never reduce the maximum noise.
#[test]
fn vn_max_monotone_in_n() {
    forall("LC vn_max monotone in N", 256, |g| {
        let s = gen_scenario(g);
        let extra = g.usize_in(1, 7);
        let (v1, _) = lcmodel::vn_max(&s);
        let bigger = s.with_drivers(s.n_drivers() + extra).expect("valid");
        let (v2, _) = lcmodel::vn_max(&bigger);
        if v2.value() >= v1.value() - 1e-12 {
            Ok(())
        } else {
            Err(format!(
                "N {} -> {}: vn {} -> {}",
                s.n_drivers(),
                s.n_drivers() + extra,
                v1.value(),
                v2.value()
            ))
        }
    });
}

/// Monotonicity in the driver count holds for the L-only model too.
#[test]
fn l_only_vn_max_monotone_in_n() {
    forall("L-only vn_max monotone in N", 256, |g| {
        let s = gen_scenario(g);
        let extra = g.usize_in(1, 7);
        let v1 = lmodel::vn_max(&s);
        let bigger = s.with_drivers(s.n_drivers() + extra).expect("valid");
        let v2 = lmodel::vn_max(&bigger);
        if v2.value() >= v1.value() - 1e-12 {
            Ok(())
        } else {
            Err(format!("vn {} -> {}", v1.value(), v2.value()))
        }
    });
}

/// Monotonicity in the ground-path inductance, for both models: a worse
/// package never reduces the maximum noise.
#[test]
fn vn_max_monotone_in_l() {
    forall("vn_max monotone in L (both models)", 256, |g| {
        let s = gen_scenario(g);
        let factor = g.f64_in(1.0, 4.0);
        let worse = s
            .with_package(s.inductance() * factor, s.capacitance())
            .expect("valid");
        let (lc1, lc2) = (lcmodel::vn_max(&s).0, lcmodel::vn_max(&worse).0);
        if lc2.value() < lc1.value() - 1e-12 {
            return Err(format!(
                "LC: L x{factor:.3} dropped vn {} -> {}",
                lc1.value(),
                lc2.value()
            ));
        }
        let (l1, l2) = (lmodel::vn_max(&s), lmodel::vn_max(&worse));
        if l2.value() < l1.value() - 1e-12 {
            return Err(format!(
                "L-only: L x{factor:.3} dropped vn {} -> {}",
                l1.value(),
                l2.value()
            ));
        }
        Ok(())
    });
}

/// The L-only model is the `C -> 0` limit of the LC model.
#[test]
fn lc_model_limits_to_l_only() {
    forall("LC limits to L-only as C -> 0", 256, |g| {
        let s = gen_scenario(g);
        let tiny = s
            .with_package(s.inductance(), Farads::new(1e-18))
            .expect("valid");
        let l_only = lmodel::vn_max(&s).value();
        let lc = lcmodel::vn_max(&tiny).0.value();
        if (l_only - lc).abs() / l_only.max(1e-9) < 1e-3 {
            Ok(())
        } else {
            Err(format!("L-only {l_only} vs LC(C=1e-18) {lc}"))
        }
    });
}

/// Metamorphic (oracle harness): both closed forms see `N` and `K` only
/// through the aggregate transconductance `N K`, so trading driver count
/// against per-driver strength at fixed `N K` leaves `Vn_max` invariant.
#[test]
fn n_k_tradeoff_leaves_vn_max_invariant() {
    forall("N·K tradeoff leaves vn_max invariant", 256, |g| {
        let asdm = gen_asdm(g);
        let n = g.usize_in(1, 16);
        let m = g.usize_in(2, 4);
        let split = Asdm::new(
            Siemens::new(asdm.k().value() / m as f64),
            asdm.sigma(),
            asdm.v0(),
        );
        let l = g.f64_in(1e-9, 10e-9);
        let c = g.f64_in(0.0, 4e-12);
        let tr = g.f64_in(0.2e-9, 2e-9);
        let build = |a: Asdm, drivers: usize| {
            SsnScenario::from_asdm(a, Volts::new(1.8))
                .drivers(drivers)
                .inductance(Henrys::new(l))
                .capacitance(Farads::new(c))
                .rise_time(Seconds::new(tr))
                .build()
                .expect("valid scenario")
        };
        let few_strong = build(asdm, n);
        let many_weak = build(split, n * m);
        let (lc1, lc2) = (
            lcmodel::vn_max(&few_strong).0.value(),
            lcmodel::vn_max(&many_weak).0.value(),
        );
        if (lc1 - lc2).abs() / lc1.max(1e-12) > 1e-9 {
            return Err(format!("LC: {n}x{} vs {}x split: {lc1} vs {lc2}", m, n * m));
        }
        let (l1, l2) = (
            lmodel::vn_max(&few_strong).value(),
            lmodel::vn_max(&many_weak).value(),
        );
        if (l1 - l2).abs() / l1.max(1e-12) > 1e-9 {
            return Err(format!("L-only: {l1} vs {l2}"));
        }
        Ok(())
    });
}

/// Metamorphic (oracle harness): the L-only `Vn_max` is monotone
/// nondecreasing in the slew rate `s = V_dd / t_r` — a faster ramp never
/// reduces `V_inf (1 - e^{-t'/tau})` at the window end.
#[test]
fn l_only_vn_max_monotone_in_slew() {
    forall("L-only vn_max monotone in slew", 256, |g| {
        let s = gen_scenario(g);
        let factor = g.f64_in(1.2, 5.0);
        let faster = SsnScenario::from_asdm(*s.asdm(), s.vdd())
            .drivers(s.n_drivers())
            .inductance(s.inductance())
            .capacitance(s.capacitance())
            .rise_time(Seconds::new(s.rise_time().value() / factor))
            .build()
            .expect("valid scenario");
        let (v1, v2) = (lmodel::vn_max(&s).value(), lmodel::vn_max(&faster).value());
        if v2 >= v1 - 1e-12 {
            Ok(())
        } else {
            Err(format!("slew x{factor:.3} dropped L-only vn {v1} -> {v2}"))
        }
    });
}

/// The LC `Vn_max` is deliberately *not* asserted monotone in slew: this
/// pins an explicit counterexample. When the conduction window shrinks far
/// below the tank period, the LC network integrates the injected current
/// (`Vn_max -> N K (V_dd - V_0)^2 t_r / (2 V_dd C)`, growing with `t_r`),
/// so an ultrafast ramp produces a *smaller* peak — the LC filter
/// attenuates what the inductor alone would amplify. The L-only model has
/// no such regime, which is why only it carries the monotone-in-slew
/// property above.
#[test]
fn lc_vn_max_non_monotone_in_slew_counterexample() {
    let asdm = Asdm::new(Siemens::new(1e-3), 1.0, Volts::new(0.9));
    let build = |tr: f64| {
        SsnScenario::from_asdm(asdm, Volts::new(1.8))
            .drivers(1)
            .inductance(Henrys::new(10e-9))
            .capacitance(Farads::new(4e-12))
            .rise_time(Seconds::new(tr))
            .build()
            .expect("valid scenario")
    };
    let slow = build(0.2e-9);
    let fast = build(0.05e-9);
    let (v_slow, v_fast) = (
        lcmodel::vn_max(&slow).0.value(),
        lcmodel::vn_max(&fast).0.value(),
    );
    assert!(
        v_fast < v_slow,
        "expected the 4x faster ramp to LOWER the LC peak: {v_fast} vs {v_slow}"
    );
    // The same pair is monotone under the L-only model.
    let (l_slow, l_fast) = (lmodel::vn_max(&slow).value(), lmodel::vn_max(&fast).value());
    assert!(l_fast >= l_slow, "L-only: {l_fast} vs {l_slow}");
}

/// Metamorphic (oracle harness): as `C -> 0` the LC model converges to
/// the L-only model as a *waveform*, not just at the peak — the RMS gap
/// over the whole conduction window vanishes.
#[test]
fn lc_waveform_converges_to_l_only_as_c_vanishes() {
    forall("LC waveform -> L-only waveform as C -> 0", 64, |g| {
        let s = gen_scenario(g);
        let c_tiny = lcmodel::critical_capacitance(&s).value() * 1e-8;
        let nearly_l = s
            .with_package(s.inductance(), Farads::new(c_tiny))
            .expect("valid");
        let scale = lmodel::vn_max(&nearly_l).value().max(1e-12);
        let tr = nearly_l.rise_time().value();
        let n = 512;
        let mut sum_sq = 0.0;
        for i in 0..=n {
            let t = Seconds::new(tr * i as f64 / n as f64);
            let d = lcmodel::vn_at(&nearly_l, t).value() - lmodel::vn_at(&nearly_l, t).value();
            sum_sq += d * d;
        }
        let rms = (sum_sq / (n + 1) as f64).sqrt() / scale;
        if rms < 1e-3 {
            Ok(())
        } else {
            Err(format!("waveform RMS gap {rms} at C = {c_tiny}"))
        }
    });
}

/// Z-figure invariance (paper Eqn. 10): trading N for L leaves the
/// L-only maximum unchanged.
#[test]
fn z_figure_invariance() {
    forall("Z-figure invariance", 256, |g| {
        let s = gen_scenario(g);
        let factor = g.usize_in(2, 4);
        let a = lmodel::vn_max(&s.with_drivers(s.n_drivers() * factor).expect("valid"));
        let b = lmodel::vn_max(
            &s.with_package(s.inductance() * factor as f64, s.capacitance())
                .expect("valid"),
        );
        if (a.value() - b.value()).abs() < 1e-9 {
            Ok(())
        } else {
            Err(format!("N-scaled {} vs L-scaled {}", a.value(), b.value()))
        }
    });
}

/// ASDM fitting round-trips exact synthetic data for arbitrary parameters.
#[test]
fn asdm_fit_roundtrip() {
    forall("ASDM fit round-trip", 256, |g| {
        let truth = gen_asdm(g);
        let mut samples = Vec::new();
        for vs_step in 0..4 {
            let vs = 0.15 * f64::from(vs_step);
            for vg_step in 0..12 {
                let vg = 0.9 + 0.9 * f64::from(vg_step) / 11.0;
                let id = truth.drain_current(Volts::new(vg), Volts::new(vs)).value();
                samples.push(IvSample { vg, vs, id });
            }
        }
        // (A fit may legitimately fail when v0/sigma push all samples into
        // cutoff; that is not a round-trip violation.)
        if let Ok(fit) = fit_asdm(&samples) {
            let k_err = (fit.k().value() - truth.k().value()).abs() / truth.k().value();
            if k_err >= 1e-6 {
                return Err(format!("K error {k_err}"));
            }
            if (fit.sigma() - truth.sigma()).abs() >= 1e-4 {
                return Err(format!("sigma {} vs {}", fit.sigma(), truth.sigma()));
            }
            if (fit.v0().value() - truth.v0().value()).abs() >= 1e-4 {
                return Err(format!("V0 {} vs {}", fit.v0().value(), truth.v0().value()));
            }
        }
        Ok(())
    });
}

/// The ASDM's two evaluation forms (node voltages vs source-referenced
/// MosModel) agree everywhere in the SSN region.
#[test]
fn asdm_forms_agree() {
    forall("ASDM evaluation forms agree", 256, |g| {
        let asdm = gen_asdm(g);
        let vg = g.f64_in(0.0, 1.8);
        let vs = g.f64_in(0.0, 0.8);
        let node = asdm.drain_current(Volts::new(vg), Volts::new(vs)).value();
        let referenced = asdm.ids(vg - vs, 1.8 - vs, -vs).id;
        if (node - referenced).abs() < 1e-12 {
            Ok(())
        } else {
            Err(format!("node form {node} vs referenced form {referenced}"))
        }
    });
}

/// LU with partial pivoting solves random diagonally dominant systems
/// to tight residual.
#[test]
fn lu_solves_diagonally_dominant() {
    forall("LU solves diagonally dominant", 256, |g| {
        let mut a = DenseMatrix::zeros(6, 6);
        for i in 0..6 {
            let mut sum = 0.0;
            for j in 0..6 {
                if i != j {
                    a[(i, j)] = g.f64_in(-1.0, 1.0);
                    sum += a[(i, j)].abs();
                }
            }
            a[(i, i)] = sum + 1.0;
        }
        let rhs = g.vec_f64(6, -10.0, 10.0);
        let x = solve(&a, &rhs).expect("diagonally dominant is nonsingular");
        let r = a.matvec(&x).expect("shape ok");
        for (ri, bi) in r.iter().zip(&rhs) {
            if (ri - bi).abs() >= 1e-9 {
                return Err(format!("residual {}", (ri - bi).abs()));
            }
        }
        // Determinant of a strictly diagonally dominant matrix is nonzero.
        let lu = LuFactor::new(&a).expect("nonsingular");
        if lu.determinant().abs() > 0.0 {
            Ok(())
        } else {
            Err("zero determinant".to_owned())
        }
    });
}

/// Random RLC ladder circuits survive the deck write/parse round trip
/// with identical DC solutions.
#[test]
fn deck_roundtrip_preserves_dc_solution() {
    use ssn_lab::spice::parser::parse_deck;
    use ssn_lab::spice::writer::write_deck;
    use ssn_lab::spice::{dc_operating_point, Circuit, DcOptions, SourceWave};

    forall("deck round-trip preserves DC", 64, |g| {
        let n_rungs = g.usize_in(1, 5);
        let vin = g.f64_in(0.1, 10.0);
        let mut c = Circuit::new();
        c.vsource("V1", "n0", "0", SourceWave::Dc(vin))
            .expect("valid");
        let mut rungs = Vec::new();
        for i in 0..n_rungs {
            let (r, cap, l) = (
                g.f64_in(1.0, 100e3),
                g.f64_in(1e-15, 1e-9),
                g.f64_in(1e-12, 1e-6),
            );
            rungs.push((r, cap, l));
            let a = format!("n{i}");
            let b = format!("n{}", i + 1);
            c.resistor(&format!("R{i}"), &a, &b, r).expect("valid");
            c.capacitor(&format!("C{i}"), &b, "0", cap).expect("valid");
            c.inductor(&format!("L{i}"), &b, &format!("t{i}"), l)
                .expect("valid");
            c.resistor(&format!("RT{i}"), &format!("t{i}"), "0", r * 2.0)
                .expect("valid");
        }
        let text = write_deck(&c, "ladder", None).expect("writes");
        let deck = parse_deck(&text).expect("parses its own output");
        if deck.circuit.element_count() != c.element_count() {
            return Err(format!(
                "element count {} vs {}",
                deck.circuit.element_count(),
                c.element_count()
            ));
        }
        let a = dc_operating_point(&c, DcOptions::default()).expect("solves");
        let b = dc_operating_point(&deck.circuit, DcOptions::default()).expect("solves");
        for i in 0..=n_rungs {
            let node = format!("n{i}");
            let va = a.voltage(&node).expect("probe");
            let vb = b.voltage(&node).expect("probe");
            if (va - vb).abs() >= 1e-9 * va.abs().max(1.0) {
                return Err(format!("{node}: {va} vs {vb}"));
            }
        }
        Ok(())
    });
}

/// Passivity: a step-driven random RC ladder never leaves the source
/// range `[0, V]` (no energy creation in the simulator).
#[test]
fn rc_ladder_transient_is_passive() {
    use ssn_lab::spice::{transient, Circuit, SourceWave, TranOptions};

    forall("RC ladder transient is passive", 64, |g| {
        let n_rungs = g.usize_in(1, 4);
        let vstep = g.f64_in(0.5, 5.0);
        let mut c = Circuit::new();
        c.vsource("V1", "n0", "0", SourceWave::Dc(vstep))
            .expect("valid");
        let mut rungs = Vec::new();
        for i in 0..n_rungs {
            let (r, cap) = (g.f64_in(100.0, 10e3), g.f64_in(1e-13, 1e-11));
            rungs.push((r, cap));
            c.resistor(
                &format!("R{i}"),
                &format!("n{i}"),
                &format!("n{}", i + 1),
                r,
            )
            .expect("valid");
            c.capacitor_with_ic(&format!("C{i}"), &format!("n{}", i + 1), "0", cap, 0.0)
                .expect("valid");
        }
        // Simulate well past the ladder's Elmore delay (each cap charges
        // through the cumulative upstream resistance).
        let mut r_cum = 0.0;
        let mut tau = 0.0;
        for &(r, cap) in &rungs {
            r_cum += r;
            tau += r_cum * cap;
        }
        let res = transient(&c, TranOptions::to(12.0 * tau).with_ic()).expect("simulates");
        for i in 1..=n_rungs {
            let w = res.voltage(&format!("n{i}")).expect("probe");
            // Tolerance relative to scale: the trapezoidal corrector may
            // wobble by a few LTE units around the rails.
            let tol = vstep * 1e-4 + 1e-9;
            for &v in w.values() {
                if v < -tol {
                    return Err(format!("undershoot {v} at node n{i}"));
                }
                if v > vstep + tol {
                    return Err(format!("overshoot {v} at node n{i}"));
                }
            }
            // The last sample approaches the source (all caps charged).
            let final_v = w.values().last().copied().expect("non-empty");
            if final_v <= 0.5 * vstep {
                return Err(format!("n{i} stuck at {final_v}"));
            }
        }
        Ok(())
    });
}

/// The determinism contract of the chunked engine — and of checkpoint
/// resume, which replays chunk indices against a stored seed — rests on
/// `Rng::from_seed_and_stream`: stream `k` of seed `s` must be a pure
/// function of `(s, k)`, and distinct streams must be distinct sequences.
#[test]
fn rng_stream_splitting_is_reproducible_and_non_overlapping() {
    use ssn_lab::numeric::rng::Rng;

    forall("RNG stream splitting", 256, |g| {
        let rand_u64 = |g: &mut Gen| {
            (g.usize_in(0, u32::MAX as usize) as u64) << 32
                | g.usize_in(0, u32::MAX as usize) as u64
        };
        let seed = rand_u64(g);
        let a = rand_u64(g);
        let mut b = rand_u64(g);
        if b == a {
            b = b.wrapping_add(1);
        }

        // Re-deriving the same (seed, stream) reproduces the sequence
        // exactly — a resumed chunk sees the bits an uninterrupted run saw.
        let mut first = Rng::from_seed_and_stream(seed, a);
        let mut again = Rng::from_seed_and_stream(seed, a);
        for i in 0..64 {
            let (x, y) = (first.next_u64(), again.next_u64());
            if x != y {
                return Err(format!("stream {a} diverged from itself at draw {i}"));
            }
        }

        // Distinct streams of one seed, and the same stream of distinct
        // seeds, give different sequences (64 identical draws from
        // independent 256-bit states is a ~2^-4096 event, i.e. a bug).
        let draws = |mut r: Rng| -> Vec<u64> { (0..64).map(|_| r.next_u64()).collect() };
        let base = draws(Rng::from_seed_and_stream(seed, a));
        if base == draws(Rng::from_seed_and_stream(seed, b)) {
            return Err(format!("streams {a} and {b} of seed {seed} coincide"));
        }
        if base == draws(Rng::from_seed_and_stream(seed ^ 1, a)) {
            return Err(format!("stream {a} ignores the seed"));
        }

        // No lag overlap either: stream b must not be a shifted window of
        // stream a (chunks would then sample correlated variations).
        let long: Vec<u64> = {
            let mut r = Rng::from_seed_and_stream(seed, a);
            (0..192).map(|_| r.next_u64()).collect()
        };
        let needle = &draws(Rng::from_seed_and_stream(seed, b))[..8];
        if long.windows(needle.len()).any(|w| w == needle) {
            return Err(format!("stream {b} is a lagged copy of stream {a}"));
        }
        Ok(())
    });
}

/// Unit quantities survive a display/parse round trip within the
/// printed precision.
#[test]
fn units_display_parse_roundtrip() {
    forall("units display/parse round-trip", 256, |g| {
        let v = g.f64_in(-1e12, 1e12);
        let q = Volts::new(v);
        let text = q.to_string();
        let back: Volts = text.parse().expect("printed form parses");
        let tol = v.abs().max(1e-12) * 1e-3;
        if (back.value() - v).abs() <= tol {
            Ok(())
        } else {
            Err(format!("{v} -> {text} -> {}", back.value()))
        }
    });
}

/// Batched perturbation kernel, part 1: every perturbed parameter respects
/// its `VariationSpec` clamp — `K >= 1e-6`, `sigma >= 1`,
/// `V_0 in [1e-3, 0.95 Vdd]`, `L >= 1e-12`, `C >= 0` — even under sigmas
/// large enough that raw draws land far outside the model domain.
#[test]
fn perturbed_batch_respects_variation_clamps() {
    use ssn_lab::core::montecarlo::{perturb_batch, VariationSpec};
    use ssn_lab::numeric::rng::Rng;

    forall("perturbed batch respects clamps", 128, |g| {
        let s = gen_scenario(g);
        // Deliberately huge sigmas so the clamps actually bind.
        let spec = VariationSpec {
            k_frac: g.f64_in(0.0, 3.0),
            sigma_abs: g.f64_in(0.0, 2.0),
            v0_abs: g.f64_in(0.0, 2.0),
            l_frac: g.f64_in(0.0, 3.0),
            c_frac: g.f64_in(0.0, 3.0),
        };
        let seed = g.usize_in(0, 1 << 30) as u64;
        let mut rng = Rng::from_seed_and_stream(seed, 0);
        let n = g.usize_in(1, 96);
        let batch = perturb_batch(&s, &spec, &mut rng, n);
        let vdd = s.vdd().value();
        for i in 0..batch.len() {
            if batch.k()[i] < 1e-6 {
                return Err(format!("k[{i}] = {} below clamp", batch.k()[i]));
            }
            if batch.sigma()[i] < 1.0 {
                return Err(format!("sigma[{i}] = {} below clamp", batch.sigma()[i]));
            }
            let v0 = batch.v0()[i];
            if !(1e-3..=vdd * 0.95).contains(&v0) {
                return Err(format!("v0[{i}] = {v0} outside [1e-3, {}]", vdd * 0.95));
            }
            if batch.l()[i] < 1e-12 {
                return Err(format!("l[{i}] = {} below clamp", batch.l()[i]));
            }
            if batch.c()[i] < 0.0 {
                return Err(format!("c[{i}] = {} negative", batch.c()[i]));
            }
        }
        Ok(())
    });
}

/// Batched perturbation kernel, part 2: `perturb_batch` is draw-for-draw
/// the scalar `perturb_one` sequence — same stream, same order, same bits.
/// This is the property that makes the SoA path's RNG consumption
/// compatible with existing seeds and checkpoints by construction.
#[test]
fn perturb_batch_is_bitwise_the_perturb_one_sequence() {
    use ssn_lab::core::montecarlo::{perturb_batch, perturb_one, VariationSpec};
    use ssn_lab::numeric::rng::Rng;

    forall("perturb_batch == perturb_one sequence", 128, |g| {
        let s = gen_scenario(g);
        let spec = VariationSpec {
            k_frac: g.f64_in(0.0, 0.5),
            sigma_abs: g.f64_in(0.0, 0.2),
            v0_abs: g.f64_in(0.0, 0.1),
            l_frac: g.f64_in(0.0, 0.5),
            c_frac: g.f64_in(0.0, 0.5),
        };
        let seed = g.usize_in(0, 1 << 30) as u64;
        let stream = g.usize_in(0, 1 << 10) as u64;
        let n = g.usize_in(1, 96);
        let mut batch_rng = Rng::from_seed_and_stream(seed, stream);
        let batch = perturb_batch(&s, &spec, &mut batch_rng, n);
        let mut one_rng = Rng::from_seed_and_stream(seed, stream);
        for i in 0..n {
            let p = perturb_one(&s, &spec, &mut one_rng);
            let cols = [
                ("k", batch.k()[i], p.k),
                ("sigma", batch.sigma()[i], p.sigma),
                ("v0", batch.v0()[i], p.v0),
                ("l", batch.l()[i], p.l),
                ("c", batch.c()[i], p.c),
            ];
            for (name, b, s) in cols {
                if b.to_bits() != s.to_bits() {
                    return Err(format!("{name}[{i}]: batch {b:?} vs scalar {s:?}"));
                }
            }
        }
        // Both consumers must leave the stream at the same position.
        if batch_rng.next_u64() != one_rng.next_u64() {
            return Err("stream positions diverged after the batch".into());
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Optimizer properties: front structure, determinism, metamorphic cap laws
// ---------------------------------------------------------------------------

/// A small random design space for the optimizer properties (sorted,
/// deduplicated axes — the type-level invariant).
fn gen_opt_space(g: &mut Gen) -> optimize::DesignSpace {
    let mut axis_f64 = |max_len: usize, lo: f64, hi: f64| -> Vec<f64> {
        let len = g.usize_in(1, max_len);
        let mut vals: Vec<f64> = (0..len).map(|_| g.f64_in(lo, hi)).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        vals
    };
    let inductances = axis_f64(3, 1e-9, 10e-9)
        .into_iter()
        .map(Henrys::new)
        .collect();
    let capacitances = axis_f64(2, 0.05e-12, 4e-12)
        .into_iter()
        .map(Farads::new)
        .collect();
    let rise_times = axis_f64(2, 0.2e-9, 2e-9)
        .into_iter()
        .map(Seconds::new)
        .collect();
    let n_len = g.usize_in(1, 4);
    let mut drivers: Vec<usize> = (0..n_len).map(|_| g.usize_in(1, 24)).collect();
    drivers.sort_unstable();
    drivers.dedup();
    let space = optimize::DesignSpace {
        drivers,
        inductances,
        capacitances,
        rise_times,
    };
    space.validate().expect("generator yields valid spaces");
    space
}

/// A template for the optimizer (its own package values are overridden by
/// every grid point; only the ASDM and Vdd matter).
fn gen_opt_template(g: &mut Gen) -> SsnScenario {
    SsnScenario::from_asdm(gen_asdm(g), Volts::new(1.8))
        .build()
        .expect("valid template")
}

fn gen_opt_options(g: &mut Gen) -> optimize::OptimizeOptions {
    let objectives = match g.usize_in(0, 2) {
        0 => optimize::ObjectiveSet::NoiseCostSpeed,
        1 => optimize::ObjectiveSet::NoiseCost,
        _ => optimize::ObjectiveSet::NoiseSpeed,
    };
    let max_noise_frac = if g.usize_in(0, 1) == 1 {
        Some(g.f64_in(0.02, 0.3))
    } else {
        None
    };
    optimize::OptimizeOptions {
        objectives,
        max_noise_frac,
    }
}

/// Full structural equality of two search outcomes: bit-identical fronts
/// plus identical bookkeeping (evaluated / pruned / level counts).
fn same_outcome(a: &optimize::OptimizeOutcome, b: &optimize::OptimizeOutcome) -> bool {
    a.front.same_front(&b.front)
        && a.total_points == b.total_points
        && a.evaluated == b.evaluated
        && a.pruned_infeasible == b.pruned_infeasible
        && a.pruned_dominated == b.pruned_dominated
        && a.over_cap == b.over_cap
        && a.levels == b.levels
}

/// Front structure law: no member dominates another, and `seal` leaves the
/// members in the pinned canonical order (strictly — the tuple includes
/// the provenance indices, so there are no ties).
#[test]
fn optimizer_front_is_mutually_non_dominated_and_canonically_ordered() {
    use std::cmp::Ordering;
    forall("optimizer front structure", 64, |g| {
        let template = gen_opt_template(g);
        let space = gen_opt_space(g);
        let opts = gen_opt_options(g);
        let (out, _) = optimize::search(&template, &space, &opts, &ExecPolicy::serial())
            .map_err(|e| format!("search failed: {e}"))?;
        let members = out.front.members();
        for (i, a) in members.iter().enumerate() {
            for (j, b) in members.iter().enumerate() {
                if i != j && optimize::dominates(a, b, opts.objectives) {
                    return Err(format!(
                        "front member {i} dominates member {j} under {}",
                        opts.objectives.name()
                    ));
                }
            }
        }
        for (i, w) in members.windows(2).enumerate() {
            if optimize::canonical_order(&w[0], &w[1]) != Ordering::Less {
                return Err(format!("members {i} and {} out of canonical order", i + 1));
            }
        }
        Ok(())
    });
}

/// Determinism law: the whole outcome — front bits *and* the evaluated /
/// pruned bookkeeping — is invariant under the thread count.
#[test]
fn optimizer_outcome_is_thread_count_invariant() {
    forall("optimizer outcome vs thread count", 16, |g| {
        let template = gen_opt_template(g);
        let space = gen_opt_space(g);
        let opts = gen_opt_options(g);
        let (base, _) = optimize::search(&template, &space, &opts, &ExecPolicy::with_threads(1))
            .map_err(|e| format!("search failed: {e}"))?;
        for threads in [2usize, 4, 8] {
            let (out, _) =
                optimize::search(&template, &space, &opts, &ExecPolicy::with_threads(threads))
                    .map_err(|e| format!("search failed at {threads} threads: {e}"))?;
            if !same_outcome(&base, &out) {
                return Err(format!(
                    "outcome differs between 1 and {threads} threads \
                     (front {} vs {}, evaluated {} vs {})",
                    base.front.len(),
                    out.front.len(),
                    base.evaluated,
                    out.evaluated
                ));
            }
        }
        Ok(())
    });
}

/// Durability law: a search killed at a deterministic commit boundary and
/// resumed from its per-level journals reproduces the uninterrupted
/// outcome bit-for-bit.
#[test]
fn optimizer_kill_resume_is_bit_identical() {
    use ssn_lab::core::durable::{DurableOptions, RunBudget};
    use ssn_lab::core::faults::{with_faults, FaultPlan};

    let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
    let template = SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .build()
        .expect("valid template");
    // Big enough that some refinement level spans several 64-point chunks,
    // so the injected crash lands mid-level.
    let space = optimize::DesignSpace {
        drivers: (1..=24).collect(),
        inductances: (0..16)
            .map(|i| Henrys::new(1e-9 * (1.0 + 0.5 * i as f64)))
            .collect(),
        capacitances: vec![Farads::new(0.5e-12), Farads::new(2e-12)],
        rise_times: vec![Seconds::new(0.4e-9), Seconds::new(1.2e-9)],
    };
    let opts = optimize::OptimizeOptions {
        objectives: optimize::ObjectiveSet::NoiseCostSpeed,
        max_noise_frac: Some(0.2),
    };
    let policy = ExecPolicy::with_threads(4);
    let (golden, _) = optimize::search(&template, &space, &opts, &policy).expect("golden");

    let journal = std::env::temp_dir().join(format!(
        "ssn-properties-opt-resume-{}.ckpt",
        std::process::id()
    ));
    let durable = |resume: bool| DurableOptions {
        checkpoint: Some(journal.clone()),
        resume,
        budget: RunBudget::unlimited(),
    };
    let err = with_faults(
        FaultPlan {
            crash_after_commits: Some(2),
            ..FaultPlan::default()
        },
        || optimize::search_durable(&template, &space, &opts, &policy, &durable(false)),
    )
    .expect_err("injected crash must interrupt the search");
    assert!(
        matches!(err, ssn_lab::core::SsnError::Interrupted { .. }),
        "expected Interrupted, got {err:?}"
    );

    let (resumed, _, durability) =
        optimize::search_durable(&template, &space, &opts, &policy, &durable(true))
            .expect("resumed search");
    assert!(
        durability.resumed_chunks > 0,
        "the resumed run must restore committed chunks from the journals"
    );
    assert!(
        same_outcome(&golden, &resumed),
        "kill -> resume must be bit-identical: front {} vs {}, evaluated {} vs {}",
        golden.front.len(),
        resumed.front.len(),
        golden.evaluated,
        resumed.evaluated
    );
    for level in 0..=16u32 {
        let _ = std::fs::remove_file(optimize::level_journal_path(&journal, level));
    }
    let _ = std::fs::remove_file(&journal);
}

/// Metamorphic cap law: tightening `max_noise_frac` only ever *removes*
/// front members, and never changes the noise-optimal point while one
/// remains feasible.
#[test]
fn tightening_the_noise_cap_is_monotone() {
    forall("noise cap tightening is monotone", 48, |g| {
        let template = gen_opt_template(g);
        let space = gen_opt_space(g);
        let objectives = match g.usize_in(0, 2) {
            0 => optimize::ObjectiveSet::NoiseCostSpeed,
            1 => optimize::ObjectiveSet::NoiseCost,
            _ => optimize::ObjectiveSet::NoiseSpeed,
        };
        let loose_frac = g.f64_in(0.1, 0.4);
        let tight_frac = loose_frac * g.f64_in(0.3, 0.9);
        let run = |frac: f64| {
            let opts = optimize::OptimizeOptions {
                objectives,
                max_noise_frac: Some(frac),
            };
            optimize::search(&template, &space, &opts, &ExecPolicy::serial()).map(|(out, _)| out)
        };
        let loose = run(loose_frac).map_err(|e| format!("loose search failed: {e}"))?;
        let tight = run(tight_frac).map_err(|e| format!("tight search failed: {e}"))?;
        for p in tight.front.members() {
            if !loose.front.members().iter().any(|q| q.same_point(p)) {
                return Err(format!(
                    "tightening the cap admitted a new front member at N = {}",
                    p.n_drivers
                ));
            }
        }
        match (tight.front.min_noise(), loose.front.min_noise()) {
            (Some(t), Some(l)) if t.value().to_bits() != l.value().to_bits() => Err(format!(
                "noise-optimal point moved under a tighter cap: {t} vs {l}"
            )),
            (Some(_), None) => Err("tight run feasible but loose run empty".into()),
            _ => Ok(()),
        }
    });
}

/// Batched perturbation kernel, part 3: the full batched Monte Carlo run
/// reproduces the scalar path's sample moments *exactly* — same stream,
/// same order, same pinned reduction, hence the same bits.
#[test]
fn batched_monte_carlo_moments_match_scalar_bitwise() {
    use ssn_lab::core::montecarlo::{run_monte_carlo_with_path, McPath, VariationSpec};
    use ssn_lab::core::parallel::ExecPolicy;

    forall("batched MC moments == scalar MC moments", 16, |g| {
        let s = gen_scenario(g);
        let spec = VariationSpec::typical();
        let seed = g.usize_in(0, 1 << 20) as u64;
        let n = g.usize_in(1, 700);
        let run = |path| {
            run_monte_carlo_with_path(&s, &spec, n, seed, &ExecPolicy::serial(), path)
                .map(|(mc, _)| mc)
        };
        let (scalar, batched) = match (run(McPath::Scalar), run(McPath::Batched)) {
            (Ok(a), Ok(b)) => (a, b),
            (a, b) => return Err(format!("run failed: {a:?} / {b:?}")),
        };
        if scalar.mean().value().to_bits() != batched.mean().value().to_bits() {
            return Err(format!("mean {} vs {}", scalar.mean(), batched.mean()));
        }
        if scalar.std_dev().value().to_bits() != batched.std_dev().value().to_bits() {
            return Err(format!("sd {} vs {}", scalar.std_dev(), batched.std_dev()));
        }
        Ok(())
    });
}
