//! Property-based tests on the suite's core invariants (proptest).

use proptest::prelude::*;
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{lcmodel, lmodel};
use ssn_lab::devices::fit::{fit_asdm, IvSample};
use ssn_lab::devices::{Asdm, MosModel};
use ssn_lab::numeric::lu::{solve, LuFactor};
use ssn_lab::numeric::matrix::DenseMatrix;
use ssn_lab::units::{Farads, Henrys, Seconds, Siemens, Volts};

/// Strategy for a physically sensible ASDM.
fn asdm_strategy() -> impl Strategy<Value = Asdm> {
    (1e-3..20e-3f64, 1.0..1.6f64, 0.3..0.9f64)
        .prop_map(|(k, sigma, v0)| Asdm::new(Siemens::new(k), sigma, Volts::new(v0)))
}

/// Strategy for a full scenario across all damping regimes.
fn scenario_strategy() -> impl Strategy<Value = SsnScenario> {
    (
        asdm_strategy(),
        1usize..24,
        1e-9..10e-9f64,        // L
        0.0..4e-12f64,         // C (0 = L-only)
        0.2e-9..2e-9f64,       // tr
    )
        .prop_map(|(asdm, n, l, c, tr)| {
            SsnScenario::from_asdm(asdm, Volts::new(1.8))
                .drivers(n)
                .inductance(Henrys::new(l))
                .capacitance(Farads::new(c))
                .rise_time(Seconds::new(tr))
                .build()
                .expect("strategy yields valid scenarios")
        })
}

proptest! {
    /// Paper Table 1: the closed-form maximum always equals the maximum of
    /// its own densely sampled waveform.
    #[test]
    fn vn_max_equals_waveform_maximum(s in scenario_strategy()) {
        let (vmax, _) = lcmodel::vn_max(&s);
        let wave = lcmodel::vn_waveform(&s, 4096).expect("waveform");
        let peak = wave.peak().value;
        let scale = vmax.value().max(1e-6);
        prop_assert!(
            (vmax.value() - peak).abs() / scale < 2e-3,
            "formula {} vs waveform {}", vmax.value(), peak
        );
    }

    /// The SSN voltage never exceeds twice the asymptote `V_inf` (the
    /// zero-damping ring bound) and is never negative during the ramp.
    #[test]
    fn vn_bounded_by_ring_limit(s in scenario_strategy()) {
        let (vmax, _) = lcmodel::vn_max(&s);
        prop_assert!(vmax.value() >= 0.0);
        prop_assert!(
            vmax.value() <= 2.0 * s.v_inf().value() + 1e-12,
            "vmax {} vs 2 V_inf {}", vmax.value(), 2.0 * s.v_inf().value()
        );
    }

    /// Monotonicity in the driver count: more simultaneous drivers never
    /// reduce the maximum noise.
    #[test]
    fn vn_max_monotone_in_n(s in scenario_strategy(), extra in 1usize..8) {
        let (v1, _) = lcmodel::vn_max(&s);
        let bigger = s.with_drivers(s.n_drivers() + extra).expect("valid");
        let (v2, _) = lcmodel::vn_max(&bigger);
        prop_assert!(v2.value() >= v1.value() - 1e-12);
    }

    /// The L-only model is the `C -> 0` limit of the LC model.
    #[test]
    fn lc_model_limits_to_l_only(s in scenario_strategy()) {
        let tiny = s.with_package(s.inductance(), Farads::new(1e-18)).expect("valid");
        let l_only = lmodel::vn_max(&s).value();
        let lc = lcmodel::vn_max(&tiny).0.value();
        prop_assert!(
            (l_only - lc).abs() / l_only.max(1e-9) < 1e-3,
            "L-only {l_only} vs LC(C=1e-18) {lc}"
        );
    }

    /// Z-figure invariance (paper Eqn. 10): trading N for L leaves the
    /// L-only maximum unchanged.
    #[test]
    fn z_figure_invariance(s in scenario_strategy(), factor in 2usize..5) {
        let a = lmodel::vn_max(&s.with_drivers(s.n_drivers() * factor).expect("valid"));
        let b = lmodel::vn_max(
            &s.with_package(s.inductance() * factor as f64, s.capacitance()).expect("valid"),
        );
        prop_assert!((a.value() - b.value()).abs() < 1e-9);
    }

    /// ASDM fitting round-trips exact synthetic data for arbitrary
    /// parameters.
    #[test]
    fn asdm_fit_roundtrip(truth in asdm_strategy()) {
        let mut samples = Vec::new();
        for vs_step in 0..4 {
            let vs = 0.15 * f64::from(vs_step);
            for vg_step in 0..12 {
                let vg = 0.9 + 0.9 * f64::from(vg_step) / 11.0;
                let id = truth.drain_current(Volts::new(vg), Volts::new(vs)).value();
                samples.push(IvSample { vg, vs, id });
            }
        }
        if let Ok(fit) = fit_asdm(&samples) {
            prop_assert!((fit.k().value() - truth.k().value()).abs() / truth.k().value() < 1e-6);
            prop_assert!((fit.sigma() - truth.sigma()).abs() < 1e-4);
            prop_assert!((fit.v0().value() - truth.v0().value()).abs() < 1e-4);
        }
        // (A fit may legitimately fail when v0/sigma push all samples into
        // cutoff; that is not a round-trip violation.)
    }

    /// The ASDM's two evaluation forms (node voltages vs source-referenced
    /// MosModel) agree everywhere in the SSN region.
    #[test]
    fn asdm_forms_agree(
        asdm in asdm_strategy(),
        vg in 0.0..1.8f64,
        vs in 0.0..0.8f64,
    ) {
        let node = asdm.drain_current(Volts::new(vg), Volts::new(vs)).value();
        let referenced = asdm.ids(vg - vs, 1.8 - vs, -vs).id;
        prop_assert!((node - referenced).abs() < 1e-12);
    }

    /// LU with partial pivoting solves random diagonally dominant systems
    /// to tight residual.
    #[test]
    fn lu_solves_diagonally_dominant(
        seed_rows in prop::collection::vec(
            prop::collection::vec(-1.0..1.0f64, 6), 6),
        rhs in prop::collection::vec(-10.0..10.0f64, 6),
    ) {
        let mut a = DenseMatrix::zeros(6, 6);
        for i in 0..6 {
            let mut sum = 0.0;
            for j in 0..6 {
                if i != j {
                    a[(i, j)] = seed_rows[i][j];
                    sum += seed_rows[i][j].abs();
                }
            }
            a[(i, i)] = sum + 1.0;
        }
        let x = solve(&a, &rhs).expect("diagonally dominant is nonsingular");
        let r = a.matvec(&x).expect("shape ok");
        for (ri, bi) in r.iter().zip(&rhs) {
            prop_assert!((ri - bi).abs() < 1e-9);
        }
        // Determinant of a strictly diagonally dominant matrix is nonzero.
        let lu = LuFactor::new(&a).expect("nonsingular");
        prop_assert!(lu.determinant().abs() > 0.0);
    }

    /// Random RLC ladder circuits survive the deck write/parse round trip
    /// with identical DC solutions.
    #[test]
    fn deck_roundtrip_preserves_dc_solution(
        rungs in prop::collection::vec((1.0..100e3f64, 1e-15..1e-9f64, 1e-12..1e-6f64), 1..6),
        vin in 0.1..10.0f64,
    ) {
        use ssn_lab::spice::parser::parse_deck;
        use ssn_lab::spice::writer::write_deck;
        use ssn_lab::spice::{dc_operating_point, Circuit, DcOptions, SourceWave};

        let mut c = Circuit::new();
        c.vsource("V1", "n0", "0", SourceWave::Dc(vin)).expect("valid");
        for (i, &(r, cap, l)) in rungs.iter().enumerate() {
            let a = format!("n{i}");
            let b = format!("n{}", i + 1);
            c.resistor(&format!("R{i}"), &a, &b, r).expect("valid");
            c.capacitor(&format!("C{i}"), &b, "0", cap).expect("valid");
            c.inductor(&format!("L{i}"), &b, &format!("t{i}"), l).expect("valid");
            c.resistor(&format!("RT{i}"), &format!("t{i}"), "0", r * 2.0).expect("valid");
        }
        let text = write_deck(&c, "ladder", None).expect("writes");
        let deck = parse_deck(&text).expect("parses its own output");
        prop_assert_eq!(deck.circuit.element_count(), c.element_count());
        let a = dc_operating_point(&c, DcOptions::default()).expect("solves");
        let b = dc_operating_point(&deck.circuit, DcOptions::default()).expect("solves");
        for i in 0..=rungs.len() {
            let node = format!("n{i}");
            let va = a.voltage(&node).expect("probe");
            let vb = b.voltage(&node).expect("probe");
            prop_assert!((va - vb).abs() < 1e-9 * va.abs().max(1.0));
        }
    }

    /// Passivity: a step-driven random RC ladder never leaves the source
    /// range `[0, V]` (no energy creation in the simulator).
    #[test]
    fn rc_ladder_transient_is_passive(
        rungs in prop::collection::vec((100.0..10e3f64, 1e-13..1e-11f64), 1..5),
        vstep in 0.5..5.0f64,
    ) {
        use ssn_lab::spice::{transient, Circuit, SourceWave, TranOptions};

        let mut c = Circuit::new();
        c.vsource("V1", "n0", "0", SourceWave::Dc(vstep)).expect("valid");
        for (i, &(r, cap)) in rungs.iter().enumerate() {
            c.resistor(&format!("R{i}"), &format!("n{i}"), &format!("n{}", i + 1), r)
                .expect("valid");
            c.capacitor_with_ic(&format!("C{i}"), &format!("n{}", i + 1), "0", cap, 0.0)
                .expect("valid");
        }
        // Simulate well past the ladder's Elmore delay (each cap charges
        // through the cumulative upstream resistance).
        let mut r_cum = 0.0;
        let mut tau = 0.0;
        for &(r, cap) in &rungs {
            r_cum += r;
            tau += r_cum * cap;
        }
        let res = transient(&c, TranOptions::to(12.0 * tau).with_ic()).expect("simulates");
        for i in 1..=rungs.len() {
            let w = res.voltage(&format!("n{i}")).expect("probe");
            // Tolerance relative to scale: the trapezoidal corrector may
            // wobble by a few LTE units around the rails.
            let tol = vstep * 1e-4 + 1e-9;
            for &v in w.values() {
                prop_assert!(v >= -tol, "undershoot {v} at node n{i}");
                prop_assert!(v <= vstep + tol, "overshoot {v} at node n{i}");
            }
            // The last sample approaches the source (all caps charged).
            let final_v = w.values().last().copied().expect("non-empty");
            prop_assert!(final_v > 0.5 * vstep, "n{i} stuck at {final_v}");
        }
    }

    /// Unit quantities survive a display/parse round trip within the
    /// printed precision.
    #[test]
    fn units_display_parse_roundtrip(v in -1e12..1e12f64) {
        let q = Volts::new(v);
        let text = q.to_string();
        let back: Volts = text.parse().expect("printed form parses");
        let tol = v.abs().max(1e-12) * 1e-3;
        prop_assert!((back.value() - v).abs() <= tol, "{v} -> {text} -> {}", back.value());
    }
}
