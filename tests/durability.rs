//! Durability matrix: crash-safe checkpoint/resume, deadline budgets, and
//! the degradation ladder, across all three durable workloads (Monte
//! Carlo, design-grid sweep, differential oracle) at 1/2/4/8 threads.
//!
//! The headline invariant under test: a run killed at any chunk boundary
//! and resumed is **bit-identical** to an uninterrupted run, at any thread
//! count. Crashes are injected through `ssn_core::faults`
//! (`crash_after_commits`, torn final writes) so every kill happens at a
//! deterministic commit count; journal damage is injected byte-exactly
//! with `corrupt_checkpoint`. A checkpoint that fails any structural check
//! must come back as a typed [`SsnError::Checkpoint`] offering a fresh
//! start — never a wrong-but-plausible result.

use ssn_lab::core::design::{sweep_design_grid, sweep_design_grid_durable};
use ssn_lab::core::durable::{DegradeStep, DurableOptions, RunBudget};
use ssn_lab::core::error::CheckpointErrorKind;
use ssn_lab::core::faults::{corrupt_checkpoint, with_faults, FaultPlan, JournalCorruption};
use ssn_lab::core::montecarlo::{
    run_monte_carlo_durable, run_monte_carlo_durable_with_path, run_monte_carlo_with, McPath,
    VariationSpec, MC_CHUNK,
};
use ssn_lab::core::oracle::{run_differential, run_differential_durable, OracleOptions};
use ssn_lab::core::parallel::ExecPolicy;
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::SsnError;
use ssn_lab::devices::Asdm;
use ssn_lab::units::{Farads, Henrys, Seconds, Siemens, Volts};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn scenario(n: usize) -> SsnScenario {
    let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
    SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .drivers(n)
        .inductance(Henrys::from_nanos(5.0))
        .capacitance(Farads::from_picos(1.0))
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid scenario")
}

/// A unique journal path per call, removed on drop (kill-tests leave the
/// file behind deliberately mid-test, so cleanup must be end-of-scope).
struct TempJournal(PathBuf);

impl TempJournal {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!(
            "ssn-durability-{}-{tag}-{n}.ckpt",
            std::process::id()
        )))
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempJournal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("ckpt-tmp"));
    }
}

fn policy(threads: usize) -> ExecPolicy {
    ExecPolicy::with_threads(threads)
}

fn checkpoint_at(path: &Path, resume: bool) -> DurableOptions {
    DurableOptions {
        checkpoint: Some(path.to_path_buf()),
        resume,
        budget: RunBudget::unlimited(),
    }
}

fn crash_after(commits: usize) -> FaultPlan {
    FaultPlan {
        crash_after_commits: Some(commits),
        ..FaultPlan::default()
    }
}

fn assert_bit_identical(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "sample counts differ");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "sample {i} differs: {g:?} vs {w:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Kill → resume → bit-identical, across workloads and thread counts
// ---------------------------------------------------------------------------

#[test]
fn montecarlo_kill_resume_is_bit_identical_at_every_thread_count() {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let samples = 6 * MC_CHUNK;
    let (golden, _) =
        run_monte_carlo_with(&s, &spec, samples, 42, &ExecPolicy::serial()).expect("golden");

    for threads in THREAD_MATRIX {
        let journal = TempJournal::new("mc-kill");
        let err = with_faults(crash_after(2), || {
            run_monte_carlo_durable(
                &s,
                &spec,
                samples,
                42,
                &policy(threads),
                &checkpoint_at(journal.path(), false),
            )
        })
        .expect_err("injected crash must interrupt the run");
        match err {
            SsnError::Interrupted {
                committed_chunks,
                total_chunks,
            } => {
                assert_eq!(committed_chunks, 2, "threads={threads}");
                assert_eq!(total_chunks, 6, "threads={threads}");
            }
            other => panic!("want Interrupted, got {other}"),
        }
        assert!(journal.path().exists(), "the journal must survive the kill");

        let (mc, stats, durability) = run_monte_carlo_durable(
            &s,
            &spec,
            samples,
            42,
            &policy(threads),
            &checkpoint_at(journal.path(), true),
        )
        .expect("resume");
        assert_eq!(durability.resumed_chunks, 2, "threads={threads}");
        assert_eq!(stats.checkpointed_chunks, 2, "threads={threads}");
        assert!(!durability.is_degraded(), "resume is full fidelity");
        assert_bit_identical(mc.samples(), golden.samples());
    }
}

/// Cross-path resume: a checkpoint journal written mid-run by one Monte
/// Carlo evaluation path resumes on the *other* path bit-identically to an
/// uninterrupted run. The run spec deliberately does not digest the path —
/// both produce identical chunk payloads — so journals written before the
/// batched path existed (i.e. by the scalar implementation) must resume on
/// the batched default unchanged, and vice versa.
#[test]
fn montecarlo_checkpoint_resumes_across_evaluation_paths() {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let samples = 6 * MC_CHUNK;
    let (golden, _) =
        run_monte_carlo_with(&s, &spec, samples, 42, &ExecPolicy::serial()).expect("golden");

    for (write_path, resume_path) in [
        (McPath::Scalar, McPath::Batched),
        (McPath::Batched, McPath::Scalar),
    ] {
        for threads in THREAD_MATRIX {
            let journal = TempJournal::new("mc-xpath");
            let err = with_faults(crash_after(2), || {
                run_monte_carlo_durable_with_path(
                    &s,
                    &spec,
                    samples,
                    42,
                    &policy(threads),
                    &checkpoint_at(journal.path(), false),
                    write_path,
                )
            })
            .expect_err("injected crash must interrupt the run");
            assert!(
                matches!(err, SsnError::Interrupted { .. }),
                "{write_path}->{resume_path} threads={threads}: want Interrupted, got {err}"
            );
            assert!(journal.path().exists(), "journal must survive the kill");

            let (mc, stats, durability) = run_monte_carlo_durable_with_path(
                &s,
                &spec,
                samples,
                42,
                &policy(threads),
                &checkpoint_at(journal.path(), true),
                resume_path,
            )
            .expect("cross-path resume");
            let tag = format!("{write_path}->{resume_path} threads={threads}");
            assert_eq!(durability.resumed_chunks, 2, "{tag}");
            assert_eq!(stats.checkpointed_chunks, 2, "{tag}");
            assert!(!durability.is_degraded(), "{tag}: resume is full fidelity");
            assert_bit_identical(mc.samples(), golden.samples());
        }
    }
}

#[test]
fn sweep_kill_resume_is_bit_identical_at_every_thread_count() {
    let template = scenario(8);
    let drivers: Vec<usize> = (1..=16).collect();
    let inductances: Vec<Henrys> = (1..=16)
        .map(|i| Henrys::from_nanos(0.5 * i as f64))
        .collect();
    let (golden, _) = sweep_design_grid(&template, &drivers, &inductances, &ExecPolicy::serial())
        .expect("golden");

    for threads in THREAD_MATRIX {
        let journal = TempJournal::new("grid-kill");
        let err = with_faults(crash_after(2), || {
            sweep_design_grid_durable(
                &template,
                &drivers,
                &inductances,
                &policy(threads),
                &checkpoint_at(journal.path(), false),
            )
        })
        .expect_err("injected crash must interrupt the run");
        assert!(matches!(err, SsnError::Interrupted { .. }), "{err}");

        let (points, _, durability) = sweep_design_grid_durable(
            &template,
            &drivers,
            &inductances,
            &policy(threads),
            &checkpoint_at(journal.path(), true),
        )
        .expect("resume");
        assert_eq!(durability.resumed_chunks, 2, "threads={threads}");
        assert_eq!(points.len(), golden.len());
        for (g, w) in points.iter().zip(&golden) {
            assert_eq!(g.n_drivers, w.n_drivers);
            assert_eq!(
                g.inductance.value().to_bits(),
                w.inductance.value().to_bits()
            );
            assert_eq!(g.vn_l_only.value().to_bits(), w.vn_l_only.value().to_bits());
            assert_eq!(g.vn_lc.value().to_bits(), w.vn_lc.value().to_bits());
            assert_eq!(g.case, w.case);
        }
    }
}

#[test]
fn validate_kill_resume_reproduces_the_summary_at_every_thread_count() {
    let opts = |threads: usize| OracleOptions {
        corpus: 96,
        seed: 1,
        exec: policy(threads),
        ..OracleOptions::default()
    };
    let golden = run_differential(&opts(1)).expect("golden").summary_csv();

    for threads in THREAD_MATRIX {
        let journal = TempJournal::new("validate-kill");
        let err = with_faults(crash_after(1), || {
            run_differential_durable(&opts(threads), &checkpoint_at(journal.path(), false))
        })
        .expect_err("injected crash must interrupt the run");
        assert!(matches!(err, SsnError::Interrupted { .. }), "{err}");

        let (report, durability) =
            run_differential_durable(&opts(threads), &checkpoint_at(journal.path(), true))
                .expect("resume");
        assert_eq!(durability.resumed_chunks, 1, "threads={threads}");
        assert_eq!(report.scenarios, 96);
        assert!(report.fallbacks.is_empty());
        assert_eq!(report.summary_csv(), golden, "threads={threads}");
    }
}

// ---------------------------------------------------------------------------
// Journal damage: typed rejection, never wrong-but-plausible
// ---------------------------------------------------------------------------

/// Runs a crashed MC run into `journal`, leaving 2 committed chunks.
fn seed_journal(journal: &TempJournal) {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let err = with_faults(crash_after(2), || {
        run_monte_carlo_durable(
            &s,
            &spec,
            4 * MC_CHUNK,
            42,
            &ExecPolicy::serial(),
            &checkpoint_at(journal.path(), false),
        )
    })
    .expect_err("crash");
    assert!(matches!(err, SsnError::Interrupted { .. }));
}

fn resume_seeded(journal: &TempJournal, seed: u64) -> Result<(), SsnError> {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    run_monte_carlo_durable(
        &s,
        &spec,
        4 * MC_CHUNK,
        seed,
        &ExecPolicy::serial(),
        &checkpoint_at(journal.path(), true),
    )
    .map(|_| ())
}

#[test]
fn corrupted_journals_are_rejected_with_typed_errors() {
    let cases: [(JournalCorruption, CheckpointErrorKind); 3] = [
        // Chop bytes off the tail: record bounds / checksum must fail.
        (
            JournalCorruption::Truncate { keep: 40 },
            CheckpointErrorKind::Corrupt,
        ),
        // Flip one payload bit: the record checksum must catch it.
        (
            JournalCorruption::BitFlip {
                offset: 200,
                mask: 0x10,
            },
            CheckpointErrorKind::Corrupt,
        ),
        // A journal from a future format version is refused outright.
        (
            JournalCorruption::StaleVersion,
            CheckpointErrorKind::VersionMismatch,
        ),
    ];
    for (how, want_kind) in cases {
        let journal = TempJournal::new("corrupt");
        seed_journal(&journal);
        corrupt_checkpoint(journal.path(), how).expect("inject damage");
        let err = resume_seeded(&journal, 42).expect_err("damaged journal must be rejected");
        match &err {
            SsnError::Checkpoint { kind, .. } => {
                assert_eq!(*kind, want_kind, "{how:?}: {err}");
            }
            other => panic!("{how:?}: want Checkpoint error, got {other}"),
        }
        // The message tells the operator how to recover.
        assert!(err.to_string().contains("start fresh"), "{err}");
    }
}

#[test]
fn spec_mismatch_refuses_to_resume_under_different_parameters() {
    let journal = TempJournal::new("spec");
    seed_journal(&journal);
    // Same journal, different RNG seed: the header must refuse.
    let err = resume_seeded(&journal, 43).expect_err("seed mismatch");
    match &err {
        SsnError::Checkpoint { kind, detail, .. } => {
            assert_eq!(*kind, CheckpointErrorKind::SpecMismatch, "{err}");
            assert!(detail.contains("seed"), "names the field: {detail}");
        }
        other => panic!("want Checkpoint spec mismatch, got {other}"),
    }
    // The unmodified journal still resumes fine under the right spec.
    resume_seeded(&journal, 42).expect("original spec resumes");
}

#[test]
fn torn_final_write_is_detected_and_a_fresh_start_recovers() {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let samples = 4 * MC_CHUNK;
    let journal = TempJournal::new("torn");
    let plan = FaultPlan {
        crash_after_commits: Some(2),
        torn_crash: true,
        ..FaultPlan::default()
    };
    let err = with_faults(plan, || {
        run_monte_carlo_durable(
            &s,
            &spec,
            samples,
            42,
            &ExecPolicy::serial(),
            &checkpoint_at(journal.path(), false),
        )
    })
    .expect_err("torn crash");
    assert!(matches!(err, SsnError::Interrupted { .. }), "{err}");

    // The torn half-write must be detected, not half-trusted.
    let err = resume_seeded(&journal, 42).expect_err("torn journal rejected");
    assert!(
        matches!(
            &err,
            SsnError::Checkpoint {
                kind: CheckpointErrorKind::Corrupt,
                ..
            }
        ),
        "{err}"
    );

    // Starting fresh (no --resume) overwrites the damage and completes.
    let (mc, _, durability) = run_monte_carlo_durable(
        &s,
        &spec,
        samples,
        42,
        &ExecPolicy::serial(),
        &checkpoint_at(journal.path(), false),
    )
    .expect("fresh start");
    assert_eq!(durability.resumed_chunks, 0);
    let (golden, _) =
        run_monte_carlo_with(&s, &spec, samples, 42, &ExecPolicy::serial()).expect("golden");
    assert_bit_identical(mc.samples(), golden.samples());
}

// ---------------------------------------------------------------------------
// Deadlines and the degradation ladder
// ---------------------------------------------------------------------------

#[test]
fn montecarlo_deadline_shrinks_samples_and_records_it() {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let samples = 6 * MC_CHUNK;
    let durable = DurableOptions {
        checkpoint: None,
        resume: false,
        budget: RunBudget::expire_after_checks(2),
    };
    let (mc, _, durability) =
        run_monte_carlo_durable(&s, &spec, samples, 42, &ExecPolicy::serial(), &durable)
            .expect("partial result");
    assert!(durability.deadline_hit);
    assert_eq!(mc.len(), 2 * MC_CHUNK, "exactly two chunks completed");
    let [event] = durability.degradation.as_slice() else {
        panic!("want one degrade event, got {:?}", durability.degradation);
    };
    assert_eq!(event.step, DegradeStep::ShrinkSamples);
    assert_eq!(event.planned, samples);
    assert_eq!(event.delivered, 2 * MC_CHUNK);
    assert!(event.to_string().contains("shrink-samples"));
}

#[test]
fn sweep_deadline_coarsens_the_grid() {
    let template = scenario(8);
    let drivers: Vec<usize> = (1..=16).collect();
    let inductances: Vec<Henrys> = (1..=16)
        .map(|i| Henrys::from_nanos(0.5 * i as f64))
        .collect();
    let durable = DurableOptions {
        checkpoint: None,
        resume: false,
        budget: RunBudget::expire_after_checks(1),
    };
    let (points, _, durability) = sweep_design_grid_durable(
        &template,
        &drivers,
        &inductances,
        &ExecPolicy::serial(),
        &durable,
    )
    .expect("partial grid");
    assert!(durability.deadline_hit);
    assert_eq!(points.len(), 64, "one 64-point chunk survived");
    assert_eq!(durability.degradation.len(), 1);
    assert_eq!(durability.degradation[0].step, DegradeStep::CoarsenGrid);
}

#[test]
fn validate_deadline_degrades_to_closed_form_fallbacks() {
    let opts = OracleOptions {
        corpus: 96,
        seed: 1,
        exec: ExecPolicy::serial(),
        ..OracleOptions::default()
    };
    let durable = DurableOptions {
        checkpoint: None,
        resume: false,
        budget: RunBudget::expire_after_checks(1),
    };
    let (report, durability) = run_differential_durable(&opts, &durable).expect("partial");
    assert!(durability.deadline_hit);
    assert_eq!(report.scenarios, 32, "one oracle chunk survived");
    assert_eq!(report.fallbacks.len(), 64, "the skipped scenarios degrade");
    assert!(report
        .fallbacks
        .iter()
        .all(|f| f.vn_max.is_finite() && f.l_only_vn_max.is_finite()));
    assert_eq!(durability.degradation.len(), 1);
    assert_eq!(durability.degradation[0].step, DegradeStep::ClosedFormOnly);
    // The per-case summary still covers exactly the evaluated scenarios.
    let counted: usize = report.cases.iter().map(|c| c.count).sum();
    assert_eq!(counted, 32);
}

#[test]
fn exhausted_budget_is_a_typed_error_not_a_hang() {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    // Deterministic zero budget...
    let durable = DurableOptions {
        checkpoint: None,
        resume: false,
        budget: RunBudget::expire_after_checks(0),
    };
    let err = run_monte_carlo_durable(&s, &spec, 2 * MC_CHUNK, 42, &ExecPolicy::serial(), &durable)
        .expect_err("no work completed");
    assert!(matches!(err, SsnError::DeadlineExhausted { .. }), "{err}");
    // ...and a real wall-clock deadline that has already passed.
    let durable = DurableOptions {
        checkpoint: None,
        resume: false,
        budget: RunBudget::with_deadline(std::time::Duration::ZERO),
    };
    let err = run_monte_carlo_durable(&s, &spec, 2 * MC_CHUNK, 42, &ExecPolicy::serial(), &durable)
        .expect_err("no work completed");
    assert!(matches!(err, SsnError::DeadlineExhausted { .. }), "{err}");
}

#[test]
fn deadline_partial_checkpoint_then_resume_completes_bit_identically() {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let samples = 6 * MC_CHUNK;
    let journal = TempJournal::new("deadline-resume");
    // Session 1: budget dies after two chunks, both land in the journal.
    let durable = DurableOptions {
        checkpoint: Some(journal.path().to_path_buf()),
        resume: false,
        budget: RunBudget::expire_after_checks(2),
    };
    let (partial, stats, durability) =
        run_monte_carlo_durable(&s, &spec, samples, 42, &ExecPolicy::serial(), &durable)
            .expect("partial");
    assert!(durability.deadline_hit);
    assert_eq!(partial.len(), 2 * MC_CHUNK);
    assert_eq!(stats.checkpointed_chunks, 0, "no chunks were *restored*");

    // Session 2: resume with an unlimited budget and finish the job.
    let (full, stats, durability) = run_monte_carlo_durable(
        &s,
        &spec,
        samples,
        42,
        &ExecPolicy::with_threads(4),
        &checkpoint_at(journal.path(), true),
    )
    .expect("resume to completion");
    assert_eq!(durability.resumed_chunks, 2);
    assert!(!durability.deadline_hit);
    assert!(
        stats.elapsed_wall >= stats.wall,
        "prior session time counts"
    );
    let (golden, _) =
        run_monte_carlo_with(&s, &spec, samples, 42, &ExecPolicy::serial()).expect("golden");
    assert_bit_identical(full.samples(), golden.samples());
}

#[test]
fn resume_of_a_complete_journal_restores_everything() {
    let s = scenario(8);
    let spec = VariationSpec::typical();
    let samples = 4 * MC_CHUNK;
    let journal = TempJournal::new("noop-resume");
    let (first, _, _) = run_monte_carlo_durable(
        &s,
        &spec,
        samples,
        42,
        &ExecPolicy::serial(),
        &checkpoint_at(journal.path(), false),
    )
    .expect("initial run");

    // Inject an immediate crash: if resume evaluated *any* chunk it would
    // commit and die; restoring all four chunks never reaches the hook.
    let (second, stats, durability) = with_faults(crash_after(1), || {
        run_monte_carlo_durable(
            &s,
            &spec,
            samples,
            42,
            &ExecPolicy::serial(),
            &checkpoint_at(journal.path(), true),
        )
    })
    .expect("pure restore");
    assert_eq!(durability.resumed_chunks, 4);
    assert_eq!(stats.checkpointed_chunks, 4);
    assert_bit_identical(second.samples(), first.samples());
}
