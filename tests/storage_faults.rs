//! Storage fault injection: the durable paths survive ENOSPC, EIO, failed
//! fsync, torn writes, and power cuts at every I/O operation index.
//!
//! The headline invariant (the crash-consistency sweep): for **every**
//! operation index k of a checkpointed run, a hard fault at k followed by
//! restart yields either a bit-identical resume or a typed clean-slate
//! rerun — never a panic, never silently-corrupt accepted output. On top
//! of it: persistent faults (ENOSPC) ride the degradation ladder — the
//! run finishes un-checkpointed with a declared [`DegradeStep::
//! Uncheckpointed`] event — while transient faults (flaky EIO) are
//! absorbed by the retry policy; and with faults disarmed every durable
//! path is byte-identical to a faultless build.
//!
//! Everything runs under `ExecPolicy::serial()` so the storage operation
//! order (and therefore each seeded fault schedule) is deterministic; the
//! fault layer's own gate serializes armed sections across test threads.

use ssn_lab::core::durable::{DegradeStep, DurableOptions, JournalLock, RunBudget};
use ssn_lab::core::error::CheckpointErrorKind;
use ssn_lab::core::montecarlo::{
    run_monte_carlo_durable, run_monte_carlo_with, VariationSpec, MC_CHUNK,
};
use ssn_lab::core::parallel::ExecPolicy;
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::storage::{self, ops_performed, with_disk_faults, DiskFaultPlan};
use ssn_lab::core::SsnError;
use ssn_lab::devices::Asdm;
use ssn_lab::units::{Farads, Henrys, Seconds, Siemens, Volts};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn scenario(n: usize) -> SsnScenario {
    let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
    SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .drivers(n)
        .inductance(Henrys::from_nanos(5.0))
        .capacitance(Farads::from_picos(1.0))
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid scenario")
}

/// A unique journal path per call; drop sweeps the whole on-disk family
/// (journal, temp, lock) because fault tests deliberately strand them.
struct TempJournal(PathBuf);

impl TempJournal {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!(
            "ssn-storage-faults-{}-{tag}-{n}.ckpt",
            std::process::id()
        )))
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn lock_path(&self) -> PathBuf {
        let mut os = self.0.as_os_str().to_os_string();
        os.push(".lock");
        PathBuf::from(os)
    }
}

impl Drop for TempJournal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("ckpt-tmp"));
        let _ = std::fs::remove_file(self.lock_path());
    }
}

fn checkpoint_at(path: &Path, resume: bool) -> DurableOptions {
    DurableOptions {
        checkpoint: Some(path.to_path_buf()),
        resume,
        budget: RunBudget::unlimited(),
    }
}

fn assert_bit_identical(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "sample counts differ");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "sample {i} differs: {g:?} vs {w:?}"
        );
    }
}

const SAMPLES: usize = 4 * MC_CHUNK;
const SEED: u64 = 42;

fn golden() -> Vec<f64> {
    let s = scenario(8);
    let (mc, _) = run_monte_carlo_with(
        &s,
        &VariationSpec::typical(),
        SAMPLES,
        SEED,
        &ExecPolicy::serial(),
    )
    .expect("golden");
    mc.samples().to_vec()
}

fn run_checkpointed(
    journal: &Path,
    resume: bool,
) -> Result<(Vec<f64>, ssn_lab::core::durable::Durability), SsnError> {
    let s = scenario(8);
    run_monte_carlo_durable(
        &s,
        &VariationSpec::typical(),
        SAMPLES,
        SEED,
        &ExecPolicy::serial(),
        &checkpoint_at(journal, resume),
    )
    .map(|(mc, _, durability)| (mc.samples().to_vec(), durability))
}

// ---------------------------------------------------------------------------
// The crash-consistency sweep
// ---------------------------------------------------------------------------

/// A hard power cut at every storage operation index k, then restart:
/// each session-1 outcome must be typed (never a panic), and session 2 —
/// resuming when a journal survived, starting clean otherwise — must be
/// bit-identical to the golden run. Also pins that with the injector
/// armed but inert (all probabilities zero) the run is byte-identical to
/// the disarmed one: the fault layer itself changes nothing.
#[test]
fn power_cut_at_every_operation_index_resumes_or_reruns_bit_identically() {
    let golden = golden();

    // Count the run's storage operations with an inert armed plan, and
    // prove the inert layer is invisible in the result.
    let counting = TempJournal::new("count");
    let total_ops = with_disk_faults(DiskFaultPlan::default(), || {
        let (samples, durability) =
            run_checkpointed(counting.path(), false).expect("inert plan must not fail");
        assert!(!durability.is_degraded());
        assert_bit_identical(&samples, &golden);
        ops_performed()
    });
    // Lock create + per-commit (temp write + rename + dir fsync).
    assert!(total_ops >= 4, "suspiciously few storage ops: {total_ops}");

    for k in 0..total_ops {
        let journal = TempJournal::new("sweep");
        let session1 = with_disk_faults(
            DiskFaultPlan {
                kill_at: Some(k),
                ..DiskFaultPlan::default()
            },
            || run_checkpointed(journal.path(), false),
        );
        // The kill always lands (k < total_ops), so session 1 must fail —
        // with a *typed* error. Reaching this line at all proves no panic
        // escaped.
        let err = session1.expect_err("kill fired mid-run");
        assert!(
            matches!(
                err,
                SsnError::Interrupted { .. }
                    | SsnError::Checkpoint {
                        kind: CheckpointErrorKind::Io,
                        ..
                    }
            ),
            "kill at op {k}: want Interrupted or Checkpoint/Io, got {err}"
        );

        // Restart with faults off: resume whatever journal survived, or
        // start clean when the cut landed before the first commit.
        let resume = journal.path().exists();
        let (samples, durability) = run_checkpointed(journal.path(), resume)
            .unwrap_or_else(|e| panic!("kill at op {k}: restart (resume={resume}) failed: {e}"));
        assert!(
            !durability.is_degraded(),
            "kill at op {k}: restart on a healthy disk is full fidelity"
        );
        assert_bit_identical(&samples, &golden);
    }
}

// ---------------------------------------------------------------------------
// The degradation ladder: persistent faults never cost the run its result
// ---------------------------------------------------------------------------

#[test]
fn full_disk_degrades_to_uncheckpointed_and_still_delivers_the_result() {
    let golden = golden();
    let journal = TempJournal::new("enospc");
    let (samples, durability) = with_disk_faults(
        DiskFaultPlan {
            enospc: 1.0,
            ..DiskFaultPlan::default()
        },
        || run_checkpointed(journal.path(), false),
    )
    .expect("a full disk must degrade, not fail the run");

    assert_bit_identical(&samples, &golden);
    assert!(durability.is_degraded());
    assert!(
        !durability.is_fidelity_degraded(),
        "losing the journal does not degrade result fidelity"
    );
    let [event] = durability.degradation.as_slice() else {
        panic!(
            "want exactly one degrade event, got {:?}",
            durability.degradation
        );
    };
    assert_eq!(event.step, DegradeStep::Uncheckpointed);
    assert!(
        event.to_string().contains("checkpoint-disabled"),
        "report line names the step: {event}"
    );
    assert!(
        !journal.path().exists(),
        "no journal can exist on a disk that rejected every write"
    );
}

#[test]
fn disk_filling_up_mid_run_degrades_after_the_last_good_commit() {
    let golden = golden();
    let journal = TempJournal::new("enospc-mid");
    // Let the lock and the first commit (ops 0..=3) through, then the
    // disk is full for everything after.
    let (samples, durability) = with_disk_faults(
        DiskFaultPlan {
            kill_at: None,
            enospc: 1.0,
            ..DiskFaultPlan::default()
        },
        || {
            // An inert prefix is impossible to express with a flat
            // probability, so arm the full-disk plan only after a healthy
            // first commit by re-arming inside the gate.
            storage::arm(DiskFaultPlan::default());
            let s = scenario(8);
            let first = run_monte_carlo_durable(
                &s,
                &VariationSpec::typical(),
                SAMPLES,
                SEED,
                &ExecPolicy::serial(),
                &DurableOptions {
                    checkpoint: Some(journal.path().to_path_buf()),
                    resume: false,
                    budget: RunBudget::expire_after_checks(1),
                },
            );
            let (partial, _, d) = first.expect("healthy first session");
            assert!(d.deadline_hit);
            assert_eq!(partial.len(), MC_CHUNK);
            // Session 2 resumes onto a disk that has just filled up.
            storage::arm(DiskFaultPlan {
                enospc: 1.0,
                ..DiskFaultPlan::default()
            });
            run_checkpointed(journal.path(), true)
        },
    )
    .expect("resume onto a full disk must degrade, not fail");

    assert_bit_identical(&samples, &golden);
    let [event] = durability.degradation.as_slice() else {
        panic!("want one degrade event, got {:?}", durability.degradation);
    };
    assert_eq!(event.step, DegradeStep::Uncheckpointed);
    assert!(
        journal.path().exists(),
        "the last good journal stays on disk untouched"
    );
}

// ---------------------------------------------------------------------------
// Transient faults: absorbed by the retry policy, invisible in the result
// ---------------------------------------------------------------------------

#[test]
fn flaky_eio_is_retried_and_the_run_stays_fully_checkpointed() {
    let golden = golden();
    // Deterministic schedule: seed 3 at p=0.15 never produces three
    // consecutive failures on any operation, so every retry round clears.
    let journal = TempJournal::new("eio");
    let (samples, durability) = with_disk_faults(
        DiskFaultPlan {
            seed: 3,
            eio: 0.15,
            fsync: 0.1,
            ..DiskFaultPlan::default()
        },
        || run_checkpointed(journal.path(), false),
    )
    .expect("transient faults must be absorbed");
    assert_bit_identical(&samples, &golden);
    assert!(
        !durability.is_degraded(),
        "retried faults are not a degradation"
    );
    assert!(
        journal.path().exists(),
        "the journal landed despite the flaky disk"
    );
    // The survived journal is structurally perfect: a pure restore run
    // (healthy disk) resumes all chunks bit-identically.
    let (restored, durability) = run_checkpointed(journal.path(), true).expect("pure restore");
    assert_eq!(durability.resumed_chunks, SAMPLES / MC_CHUNK);
    assert_bit_identical(&restored, &golden);
}

// ---------------------------------------------------------------------------
// JournalLock under storage faults
// ---------------------------------------------------------------------------

#[test]
fn enospc_during_lock_write_leaves_no_partial_lock_file() {
    let journal = TempJournal::new("lock-enospc");
    with_disk_faults(
        DiskFaultPlan {
            enospc: 1.0,
            ..DiskFaultPlan::default()
        },
        || {
            let err = JournalLock::acquire(journal.path()).expect_err("no space for a lock");
            assert!(
                matches!(
                    err,
                    SsnError::Checkpoint {
                        kind: CheckpointErrorKind::Io,
                        ..
                    }
                ),
                "{err}"
            );
        },
    );
    assert!(
        !journal.lock_path().exists(),
        "a failed acquisition must not strand a partial lock file"
    );
    // The path is immediately lockable on a healthy disk.
    let lock = JournalLock::acquire(journal.path()).expect("healthy acquire");
    drop(lock);
}

/// A stale lock (dead-PID husk) contended by two live threads: exactly
/// zero or one holder at any instant, every loser gets the typed
/// `Locked` refusal, and nobody panics. Repeated to give the race a
/// chance to interleave differently.
#[test]
fn stale_lock_takeover_race_never_yields_two_live_holders() {
    for round in 0..25 {
        let journal = TempJournal::new("lock-race");
        // A PID that cannot be alive: PID 0 is the kernel's, never a
        // userspace holder, and `/proc/0` does not exist.
        std::fs::write(journal.lock_path(), b"0\n").expect("plant stale lock");

        let holders = std::sync::atomic::AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(2);
        let outcomes = std::thread::scope(|scope| {
            let contend = || {
                barrier.wait();
                match JournalLock::acquire(journal.path()) {
                    Ok(lock) => {
                        let now = holders.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(now, 0, "round {round}: two simultaneous lock holders");
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        holders.fetch_sub(1, Ordering::SeqCst);
                        drop(lock);
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            };
            let a = scope.spawn(contend);
            let b = scope.spawn(contend);
            [a.join().expect("no panic"), b.join().expect("no panic")]
        });

        let wins = outcomes.iter().filter(|o| o.is_ok()).count();
        assert!(wins >= 1, "round {round}: someone must take the stale lock");
        for outcome in &outcomes {
            if let Err(e) = outcome {
                assert!(
                    matches!(
                        e,
                        SsnError::Checkpoint {
                            kind: CheckpointErrorKind::Locked,
                            ..
                        }
                    ),
                    "round {round}: loser must get the typed refusal, got {e}"
                );
            }
        }
        assert!(
            !journal.lock_path().exists(),
            "round {round}: all holders released"
        );
    }
}

// ---------------------------------------------------------------------------
// Server result cache under storage faults (integration-level)
// ---------------------------------------------------------------------------

#[test]
fn cache_serves_from_memory_when_the_spool_disk_is_full() {
    use ssn_lab::server::cache::ResultCache;
    let dir = std::env::temp_dir().join(format!("ssn-sf-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let cache = ResultCache::new(Some(dir.clone())).expect("cache");
    with_disk_faults(
        DiskFaultPlan {
            enospc: 1.0,
            ..DiskFaultPlan::default()
        },
        || {
            cache.put(0xab, b"full-fidelity-result".to_vec());
        },
    );
    assert!(cache.disk_degraded(), "spool failure is declared");
    assert_eq!(
        cache.get(0xab).expect("memory tier").as_slice(),
        b"full-fidelity-result",
        "the computed result is still served, uncached on disk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
