//! Differential suite: the batched SoA Monte Carlo path is bit-identical
//! to the retained scalar reference path — the core contract of the SoA
//! refactor.
//!
//! Matrix: {L-only, LC} models x {1, 2, 4, 8} threads x sample counts
//! chosen to exercise ragged tails (not divisible by the slab lane width,
//! not divisible by the chunk size, single-sample runs). "Bit-identical"
//! is asserted on the raw bits of every sample, and on the derived
//! statistics (mean / sd / quantiles), which are themselves pinned to a
//! fixed reduction order.

use ssn_lab::core::montecarlo::{run_monte_carlo_with_path, McPath, VariationSpec, MC_CHUNK};
use ssn_lab::core::parallel::ExecPolicy;
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::devices::Asdm;
use ssn_lab::numeric::slab::LANE;
use ssn_lab::units::{Farads, Henrys, Seconds, Siemens, Volts};

const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn scenario(c: Farads) -> SsnScenario {
    let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
    SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .drivers(8)
        .inductance(Henrys::from_nanos(5.0))
        .capacitance(c)
        .rise_time(Seconds::from_nanos(0.5))
        .build()
        .expect("valid scenario")
}

fn assert_bit_identical(tag: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{tag}: sample counts differ");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{tag}: sample {i} differs: {g:?} vs {w:?}"
        );
    }
}

/// Sample counts with deliberately awkward shapes: a lone sample, a
/// partial lane, a full lane, a chunk plus a sub-lane tail, a chunk plus a
/// non-lane-aligned tail, and a multi-chunk run that is divisible by
/// neither the chunk size nor the lane width.
fn ragged_counts() -> [usize; 7] {
    [
        1,
        LANE - 1,
        LANE,
        MC_CHUNK + 3,
        MC_CHUNK + LANE + 5,
        2 * MC_CHUNK - 1,
        3 * MC_CHUNK + 13,
    ]
}

fn check_model(model: &str, c: Farads) {
    let s = scenario(c);
    let spec = VariationSpec::typical();
    for n in ragged_counts() {
        let (scalar, _) =
            run_monte_carlo_with_path(&s, &spec, n, 42, &ExecPolicy::serial(), McPath::Scalar)
                .expect("scalar reference");
        assert_eq!(scalar.len(), n);
        for threads in THREAD_MATRIX {
            let (batched, stats) = run_monte_carlo_with_path(
                &s,
                &spec,
                n,
                42,
                &ExecPolicy::with_threads(threads),
                McPath::Batched,
            )
            .expect("batched run");
            let tag = format!("{model} n={n} threads={threads}");
            assert_eq!(stats.failed_chunks, 0, "{tag}: no chunk may fail");
            assert_bit_identical(&tag, batched.samples(), scalar.samples());
            // Pinned-order reductions must agree to the last bit too.
            assert_eq!(
                batched.mean().value().to_bits(),
                scalar.mean().value().to_bits(),
                "{tag}: mean"
            );
            assert_eq!(
                batched.std_dev().value().to_bits(),
                scalar.std_dev().value().to_bits(),
                "{tag}: sd"
            );
            for q in [0.05, 0.5, 0.95, 0.99] {
                assert_eq!(
                    batched.quantile(q).value().to_bits(),
                    scalar.quantile(q).value().to_bits(),
                    "{tag}: q{q}"
                );
            }
        }
    }
}

#[test]
fn lc_batched_is_bit_identical_to_scalar_at_every_thread_count() {
    check_model("LC", Farads::from_picos(1.0));
}

#[test]
fn l_only_batched_is_bit_identical_to_scalar_at_every_thread_count() {
    check_model("L-only", Farads::ZERO);
}

/// The scalar path itself is thread-count invariant (the pre-existing
/// determinism contract): scalar at 8 threads equals scalar serial, so
/// the batched-vs-scalar comparison above covers the full 2x4 path/thread
/// matrix by transitivity.
#[test]
fn scalar_path_is_itself_thread_invariant() {
    let s = scenario(Farads::from_picos(1.0));
    let spec = VariationSpec::typical();
    let n = 2 * MC_CHUNK + 7;
    let (serial, _) =
        run_monte_carlo_with_path(&s, &spec, n, 9, &ExecPolicy::serial(), McPath::Scalar)
            .expect("serial");
    for threads in [2, 8] {
        let (par, _) = run_monte_carlo_with_path(
            &s,
            &spec,
            n,
            9,
            &ExecPolicy::with_threads(threads),
            McPath::Scalar,
        )
        .expect("parallel scalar");
        assert_bit_identical(
            &format!("scalar threads={threads}"),
            par.samples(),
            serial.samples(),
        );
    }
}

/// Different seeds still differ on the batched path (the suite must not
/// pass vacuously because everything collapsed to one value).
#[test]
fn batched_path_remains_seed_sensitive() {
    let s = scenario(Farads::from_picos(1.0));
    let spec = VariationSpec::typical();
    let run = |seed| {
        run_monte_carlo_with_path(&s, &spec, 200, seed, &ExecPolicy::serial(), McPath::Batched)
            .expect("run")
            .0
    };
    assert_ne!(run(1).samples(), run(2).samples());
    assert!(
        run(1).std_dev().value() > 0.0,
        "variation must spread samples"
    );
}
