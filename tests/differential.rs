//! The differential oracle harness at corpus scale: corpus
//! stratification, clean runs at paper budgets, thread-count bit-identity,
//! and the forced-violation → minimized-repro → replay loop.
//!
//! Everything here is seeded and deterministic; corpus sizes are chosen so
//! the whole file runs in seconds in debug builds while still exercising
//! every slot of the stratification.

use ssn_lab::core::lcmodel::{self, MaxSsnCase};
use ssn_lab::core::oracle::{
    self, case_slug, corpus_scenario, generate_corpus, OracleOptions, TolerancePolicy, CASE_ORDER,
};
use ssn_lab::core::parallel::ExecPolicy;
use ssn_lab::spice::parser::parse_deck;
use ssn_lab::spice::transient;

/// The corpus stratification holds: every Table-1 damping case is heavily
/// represented, the degenerate `C = 0` slot appears, and the `N` range is
/// covered. (The acceptance criterion — each of the four cases at least
/// 500 times in a 10k corpus — scales linearly from the counts pinned
/// here: 150+/1800 per case is the same density.)
#[test]
fn corpus_covers_every_case_and_the_n_range() {
    let corpus = generate_corpus(1, 1800);
    let mut counts = std::collections::BTreeMap::new();
    let mut n_seen = std::collections::BTreeSet::new();
    for cfg in &corpus {
        let s = cfg.validate().expect("corpus scenarios are valid");
        let (_, case) = lcmodel::vn_max(&s);
        *counts.entry(case_slug(case)).or_insert(0usize) += 1;
        n_seen.insert(cfg.n_drivers);
    }
    for case in [
        MaxSsnCase::Overdamped,
        MaxSsnCase::CriticallyDamped,
        MaxSsnCase::UnderdampedFastInput,
        MaxSsnCase::UnderdampedSlowInput,
    ] {
        let n = counts.get(case_slug(case)).copied().unwrap_or(0);
        assert!(n >= 150, "{}: only {n}/1800 scenarios ({counts:?})", case);
    }
    let l_only = counts.get("l_only").copied().unwrap_or(0);
    assert!(l_only >= 30, "C = 0 slot underrepresented: {l_only}");
    assert!(n_seen.contains(&1) && n_seen.contains(&64), "{n_seen:?}");
    assert!(n_seen.len() > 50, "N coverage too thin: {}", n_seen.len());
}

/// The paper tolerance policy holds over a stratified corpus slice — the
/// accuracy contract the CI gate enforces at larger scale.
#[test]
fn corpus_slice_is_clean_at_paper_budgets() {
    let report = oracle::run_differential(&OracleOptions {
        corpus: 180,
        seed: 1,
        exec: ExecPolicy::serial(),
        ..OracleOptions::default()
    })
    .expect("differential run succeeds");
    assert_eq!(report.scenarios, 180);
    assert_eq!(report.failed_chunks, 0);
    assert_eq!(
        report.violations,
        0,
        "paper budgets violated:\n{}",
        report.summary_csv()
    );
    assert!(report.repros.is_empty());
    // Every case is present even in this slice.
    for c in &report.cases {
        assert!(c.count > 0, "{} empty in 180-slice", case_slug(c.case));
    }
}

/// The determinism contract: the summary is bit-identical across thread
/// counts (scenario i always draws RNG stream (seed, i); aggregation is
/// order-independent).
#[test]
fn summary_is_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        oracle::run_differential(&OracleOptions {
            corpus: 96,
            seed: 7,
            exec: ExecPolicy::with_threads(threads),
            ..OracleOptions::default()
        })
        .expect("run succeeds")
    };
    let reference = run(1).summary_csv();
    for threads in [2, 4] {
        assert_eq!(
            run(threads).summary_csv(),
            reference,
            "summary drifted at {threads} threads"
        );
    }
}

/// Forced violations (budgets scaled down one-million-fold) produce
/// minimized repros that (a) parse, (b) replay to the same failing metric
/// under the same policy, and (c) sit between the original failing point
/// and the paper-nominal reference.
#[test]
fn forced_violations_shrink_to_replayable_repros() {
    let policy = TolerancePolicy::paper().scaled(1e-6);
    let report = oracle::run_differential(&OracleOptions {
        corpus: 6,
        seed: 1,
        policy,
        exec: ExecPolicy::serial(),
        max_repros: 2,
    })
    .expect("run succeeds");
    assert!(report.violations > 0, "1e-6 budgets must be violated");
    assert_eq!(report.repros.len(), 2, "max_repros cap respected");

    let reference = oracle::reference_config();
    for r in &report.repros {
        // (a) The repro file parses back to the exact minimized scenario.
        let file = oracle::parse_repro(&r.file_text).expect("repro parses");
        assert_eq!(file.scenario, r.minimized);
        let rec = file.recorded.expect("violation recorded");
        assert_eq!(rec.metric, r.violation.metric);

        // (b) Replaying reproduces the same failing metric and numbers
        // (everything is deterministic, so the match is exact).
        let (_, metrics, violation) =
            oracle::replay_repro(&r.file_text, &policy).expect("replay runs");
        let v = violation.expect("replay must still violate");
        assert_eq!(v.metric, r.violation.metric, "metric changed on replay");
        assert_eq!(v.observed, r.violation.observed, "observed drifted");
        assert_eq!(metrics.mna_vn_max, r.metrics.mna_vn_max);

        // (c) Each minimized coordinate lies in the closed interval
        // between the original draw and the reference anchor.
        let between = |lo: f64, hi: f64, x: f64| {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            x >= lo && x <= hi
        };
        for (name, orig, mini, anchor) in [
            ("k", r.original.k, r.minimized.k, reference.k),
            (
                "sigma",
                r.original.sigma,
                r.minimized.sigma,
                reference.sigma,
            ),
            ("v0", r.original.v0, r.minimized.v0, reference.v0),
            (
                "inductance",
                r.original.inductance,
                r.minimized.inductance,
                reference.inductance,
            ),
            (
                "capacitance",
                r.original.capacitance,
                r.minimized.capacitance,
                reference.capacitance,
            ),
            (
                "rise_time",
                r.original.rise_time,
                r.minimized.rise_time,
                reference.rise_time,
            ),
        ] {
            assert!(
                between(orig, anchor, mini),
                "{name}: minimized {mini} outside [{orig}, {anchor}]"
            );
        }
    }
}

/// The `[netlist]` deck embedded in a repro file is a standalone,
/// parseable SPICE deck whose transient reproduces the recorded simulated
/// peak — so a repro can be replayed in any SPICE-shaped tool, not just
/// through the oracle API.
#[test]
fn repro_deck_replays_through_the_spice_parser() {
    let report = oracle::run_differential(&OracleOptions {
        corpus: 2,
        seed: 1,
        policy: TolerancePolicy::paper().scaled(1e-6),
        exec: ExecPolicy::serial(),
        max_repros: 1,
    })
    .expect("run succeeds");
    let repro = report.repros.first().expect("one repro");
    let deck_text = repro
        .file_text
        .split("[netlist]\n")
        .nth(1)
        .expect("netlist section");
    let deck = parse_deck(deck_text).expect("deck parses");
    let tran = deck.tran.expect("deck carries a .tran directive");
    let result = transient(&deck.circuit, tran.to_options()).expect("deck simulates");
    let peak = result.voltage("ng").expect("bounce node probed").peak();
    let rel = (peak.value - repro.metrics.mna_vn_max).abs() / repro.metrics.mna_vn_max.abs();
    // The directive-driven replay uses the parser's default LTE options,
    // not the oracle's tightened ones — allow integration-level slack.
    assert!(
        rel < 0.02,
        "deck peak {} vs recorded {}",
        peak.value,
        repro.metrics.mna_vn_max
    );
}

/// The fast-ring peak lands at the closed form's `t0 + pi/omega` — the
/// end-to-end pin of the `t' = t - V0/s` time-origin alignment between
/// the synthesized PWL source and the closed forms.
#[test]
fn fast_ring_peak_time_pins_the_conduction_start_offset() {
    // Find an under-damped fast-input scenario in the corpus (slot 4).
    let cfg = corpus_scenario(1, 4);
    let s = cfg.validate().expect("valid");
    let (_, case) = lcmodel::vn_max(&s);
    assert_eq!(case, MaxSsnCase::UnderdampedFastInput);
    let t_model = lcmodel::first_peak_time(&s)
        .expect("fast case has a ring peak")
        .value();
    let (metrics, violation) =
        oracle::evaluate_scenario(&cfg, &TolerancePolicy::paper()).expect("evaluates");
    assert!(violation.is_none());
    // peak_time_frac measures |t_sim - t_model| / tr (no plateau escape
    // here: the ring peak is sharp). It passing the 2% budget means the
    // simulated peak sits at t0 + pi/omega; dropping the t0 = V0/s offset
    // in the synthesized source would shift it by t0, which is a large
    // fraction of tr for every corpus scenario.
    let t0 = s.conduction_start().value();
    assert!(
        t0 / s.rise_time().value() > 0.15,
        "t0 must be material for this pin: {t0}"
    );
    assert!(
        metrics.peak_time_frac < 0.02,
        "peak time off by {} tr (model peak {t_model})",
        metrics.peak_time_frac
    );
}

/// Corpus order-independence at the API level: evaluating a scenario
/// standalone gives exactly the outcome the batched runner records.
#[test]
fn standalone_evaluation_matches_the_batched_run() {
    let policy = TolerancePolicy::paper();
    let outcomes = oracle::evaluate_range(3, 10..19, &policy).expect("range evaluates");
    for o in &outcomes {
        let cfg = corpus_scenario(3, o.index);
        assert_eq!(cfg, o.config);
        let (metrics, violation) = oracle::evaluate_scenario(&cfg, &policy).expect("evaluates");
        assert_eq!(metrics, o.metrics);
        assert_eq!(violation, o.violation);
    }
    // And the fixed case order is what the CSV promises.
    assert_eq!(CASE_ORDER.len(), 5);
}
