//! Enumeration-differential suite for `ssn_core::optimize`.
//!
//! The optimizer's contract is *exactness*: on any valid grid its Pareto
//! front must be **bit-identical** to the front computed by exhaustively
//! evaluating every point. This suite pins that contract three ways:
//!
//! 1. a seeded corpus (`ssn_numeric::check`) of random templates, axes,
//!    objective sets, and noise caps, differenced against
//!    `optimize::enumerate` — a failing case is greedily minimized (axis
//!    values dropped one at a time while the disagreement persists) and
//!    printed as a replayable repro with exact bit patterns;
//! 2. an independent reference front assembled from `(C, tr)`-slab sweeps
//!    of the PR-3 `design::sweep_design_grid` engine, so the optimizer is
//!    also differenced against code it does not share an evaluation loop
//!    with (the two paths must agree bit-for-bit because both reduce to
//!    pure field-set scenario derivation);
//! 3. the PR-3 inverse-design helpers `max_simultaneous_drivers` and
//!    `required_rise_time` as 1-D special cases of the optimizer.

use std::cell::Cell;

use ssn_lab::core::design::{self, sweep_design_grid};
use ssn_lab::core::optimize::{
    enumerate, package_cost, search, speed_figure, DesignPoint, DesignSpace, ObjectiveSet,
    OptimizeOptions, ParetoFront,
};
use ssn_lab::core::parallel::ExecPolicy;
use ssn_lab::core::scenario::SsnScenario;
use ssn_lab::core::{lcmodel, SsnError};
use ssn_lab::devices::Asdm;
use ssn_lab::numeric::check::{forall, Gen};
use ssn_lab::units::{Farads, Henrys, Seconds, Siemens, Volts};

/// A physically sensible random ASDM (mirrors `tests/properties.rs`).
fn gen_asdm(g: &mut Gen) -> Asdm {
    let k = g.f64_in(1e-3, 20e-3);
    let sigma = g.f64_in(1.0, 1.6);
    let v0 = g.f64_in(0.3, 0.9);
    Asdm::new(Siemens::new(k), sigma, Volts::new(v0))
}

/// A template scenario; its own `L`/`C`/`tr` are irrelevant to the search
/// (every grid point overrides them) but must be valid.
fn gen_template(g: &mut Gen) -> SsnScenario {
    SsnScenario::from_asdm(gen_asdm(g), Volts::new(1.8))
        .build()
        .expect("generator yields valid templates")
}

/// A strictly increasing f64 axis of 1..=`max_len` random values.
fn gen_axis_f64(g: &mut Gen, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let len = g.usize_in(1, max_len);
    let mut vals: Vec<f64> = (0..len).map(|_| g.f64_in(lo, hi)).collect();
    vals.sort_by(f64::total_cmp);
    vals.dedup();
    vals
}

/// A random valid design space with small, brute-forceable axes.
fn gen_space(g: &mut Gen, max_axis: usize) -> DesignSpace {
    let n_len = g.usize_in(1, max_axis);
    let mut drivers: Vec<usize> = (0..n_len).map(|_| g.usize_in(1, 24)).collect();
    drivers.sort_unstable();
    drivers.dedup();
    let space = DesignSpace {
        drivers,
        inductances: gen_axis_f64(g, max_axis, 1e-9, 10e-9)
            .into_iter()
            .map(Henrys::new)
            .collect(),
        capacitances: gen_axis_f64(g, 3, 0.05e-12, 4e-12)
            .into_iter()
            .map(Farads::new)
            .collect(),
        rise_times: gen_axis_f64(g, 3, 0.2e-9, 2e-9)
            .into_iter()
            .map(Seconds::new)
            .collect(),
    };
    space.validate().expect("generator yields valid spaces");
    space
}

/// Random search options: any objective set, caps tight enough to make
/// whole corpora infeasible (pruning must still never change the front).
fn gen_options(g: &mut Gen) -> OptimizeOptions {
    let objectives = match g.usize_in(0, 2) {
        0 => ObjectiveSet::NoiseCostSpeed,
        1 => ObjectiveSet::NoiseCost,
        _ => ObjectiveSet::NoiseSpeed,
    };
    let max_noise_frac = if g.usize_in(0, 1) == 1 {
        Some(g.f64_in(0.02, 0.3))
    } else {
        None
    };
    OptimizeOptions {
        objectives,
        max_noise_frac,
    }
}

/// `true` when search and enumeration disagree on this input (either on
/// the front itself, or by erroring on one side only).
fn disagrees(template: &SsnScenario, space: &DesignSpace, opts: &OptimizeOptions) -> bool {
    let policy = ExecPolicy::serial();
    match (
        search(template, space, opts, &policy),
        enumerate(template, space, opts, &policy),
    ) {
        (Ok((s, _)), Ok((e, _))) => !s.front.same_front(&e.front),
        (Err(_), Err(_)) => false,
        _ => true,
    }
}

/// Greedy 1-value-at-a-time shrink: repeatedly drop any single axis value
/// that keeps the disagreement alive, until no single drop does.
fn shrink(template: &SsnScenario, mut space: DesignSpace, opts: &OptimizeOptions) -> DesignSpace {
    loop {
        let mut reduced = false;
        'axes: for axis in 0..4usize {
            let len = match axis {
                0 => space.drivers.len(),
                1 => space.inductances.len(),
                2 => space.capacitances.len(),
                _ => space.rise_times.len(),
            };
            if len <= 1 {
                continue;
            }
            for i in 0..len {
                let mut cand = space.clone();
                match axis {
                    0 => {
                        cand.drivers.remove(i);
                    }
                    1 => {
                        cand.inductances.remove(i);
                    }
                    2 => {
                        cand.capacitances.remove(i);
                    }
                    _ => {
                        cand.rise_times.remove(i);
                    }
                }
                if disagrees(template, &cand, opts) {
                    space = cand;
                    reduced = true;
                    break 'axes;
                }
            }
        }
        if !reduced {
            return space;
        }
    }
}

/// Formats an f64 axis with exact bit patterns so a repro can be replayed
/// without any parsing loss.
fn axis_bits(vals: impl IntoIterator<Item = f64>) -> String {
    vals.into_iter()
        .map(|v| format!("{v:e} ({:#018x})", v.to_bits()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// A fully replayable description of a failing (minimized) case.
fn repro(template: &SsnScenario, space: &DesignSpace, opts: &OptimizeOptions) -> String {
    let asdm = template.asdm();
    format!(
        "minimized repro:\n  asdm: k = {}, sigma = {}, v0 = {}\n  vdd = {}\n  \
         objectives = {}, max_noise_frac = {:?}\n  drivers = {:?}\n  \
         inductances = [{}]\n  capacitances = [{}]\n  rise_times = [{}]",
        axis_bits([asdm.k().value()]),
        axis_bits([asdm.sigma()]),
        axis_bits([asdm.v0().value()]),
        axis_bits([template.vdd().value()]),
        opts.objectives.name(),
        opts.max_noise_frac.map(|f| axis_bits([f])),
        space.drivers,
        axis_bits(space.inductances.iter().map(|v| v.value())),
        axis_bits(space.capacitances.iter().map(|v| v.value())),
        axis_bits(space.rise_times.iter().map(|v| v.value())),
    )
}

/// Satellite 1, part 1: on a 220-case seeded corpus the optimizer front
/// equals the exhaustive front **exactly** — any mismatch is minimized
/// and printed as a replayable repro. Also pins `evaluated <= total` per
/// case and that the corpus as a whole exercises real pruning.
#[test]
fn search_front_equals_enumeration_front_on_seeded_corpus() {
    let pruned_total = Cell::new(0usize);
    let capped_cases = Cell::new(0usize);
    forall("optimize front equals enumeration front", 220, |g| {
        let template = gen_template(g);
        let space = gen_space(g, 4);
        let opts = gen_options(g);
        let total = space.total_points();
        let policy = ExecPolicy::serial();

        let (s, _) = search(&template, &space, &opts, &policy)
            .map_err(|e| format!("search failed on a valid space: {e}"))?;
        let (e, _) = enumerate(&template, &space, &opts, &policy)
            .map_err(|e| format!("enumeration failed on a valid space: {e}"))?;

        if e.evaluated != total {
            return Err(format!(
                "enumeration must visit everything: {} of {total}",
                e.evaluated
            ));
        }
        if s.evaluated > total {
            return Err(format!(
                "search evaluated {} points of a {total}-point grid",
                s.evaluated
            ));
        }
        pruned_total.set(pruned_total.get() + s.pruned_infeasible + s.pruned_dominated);
        if opts.max_noise_frac.is_some() {
            capped_cases.set(capped_cases.get() + 1);
        }
        if s.front.same_front(&e.front) {
            return Ok(());
        }
        let min = shrink(&template, space, &opts);
        Err(format!(
            "search front ({} members) != enumeration front ({} members)\n{}",
            s.front.len(),
            e.front.len(),
            repro(&template, &min, &opts),
        ))
    });
    assert!(
        capped_cases.get() >= 50,
        "corpus must include a healthy capped share, got {}",
        capped_cases.get()
    );
    assert!(
        pruned_total.get() > 0,
        "a 220-case corpus with tight caps must exercise the pruning paths"
    );
}

/// Builds the reference front the long way round: one PR-3
/// `sweep_design_grid` call per `(C, tr)` slab, objectives computed here
/// in the test, every point inserted into a fresh [`ParetoFront`].
fn reference_front_via_sweep(
    template: &SsnScenario,
    space: &DesignSpace,
    opts: &OptimizeOptions,
) -> Result<ParetoFront, SsnError> {
    let policy = ExecPolicy::serial();
    let cap = opts.max_noise_frac.map(|f| f * template.vdd().value());
    let mut front = ParetoFront::new(opts.objectives);
    for (c_idx, &c) in space.capacitances.iter().enumerate() {
        for (tr_idx, &tr) in space.rise_times.iter().enumerate() {
            let slab = template
                .with_package(template.inductance(), c)?
                .with_rise_time(tr)?;
            let (points, stats) =
                sweep_design_grid(&slab, &space.drivers, &space.inductances, &policy)?;
            assert_eq!(stats.failed_chunks, 0, "reference sweep must be clean");
            assert_eq!(points.len(), space.drivers.len() * space.inductances.len());
            for (i, gp) in points.iter().enumerate() {
                if cap.is_some_and(|cap| gp.vn_lc.value() > cap) {
                    continue;
                }
                front.insert(DesignPoint {
                    n_idx: i / space.inductances.len(),
                    l_idx: i % space.inductances.len(),
                    c_idx,
                    tr_idx,
                    n_drivers: gp.n_drivers,
                    inductance: gp.inductance,
                    capacitance: c,
                    rise_time: tr,
                    vn_l_only: gp.vn_l_only,
                    vn_lc: gp.vn_lc,
                    case: gp.case,
                    cost: package_cost(gp.inductance, c),
                    speed: speed_figure(gp.n_drivers, tr),
                    level: 0,
                });
            }
        }
    }
    front.seal();
    Ok(front)
}

/// Satellite 1, part 2: the optimizer front also equals a front assembled
/// from independent `sweep_design_grid` slab sweeps — a code path the
/// optimizer shares no evaluation loop with. Both must agree bit-for-bit
/// because each reduces to the same pure scenario field-set derivation.
#[test]
fn search_front_equals_slab_wise_design_sweep_front() {
    forall("optimize front equals slab-wise sweep front", 64, |g| {
        let template = gen_template(g);
        let space = gen_space(g, 3);
        let opts = gen_options(g);
        let reference = reference_front_via_sweep(&template, &space, &opts)
            .map_err(|e| format!("reference sweep failed: {e}"))?;
        let (s, _) = search(&template, &space, &opts, &ExecPolicy::serial())
            .map_err(|e| format!("search failed: {e}"))?;
        if s.front.same_front(&reference) {
            Ok(())
        } else {
            let min = shrink(&template, space, &opts);
            Err(format!(
                "search front ({} members) != slab-sweep front ({} members)\n{}",
                s.front.len(),
                reference.len(),
                repro(&template, &min, &opts),
            ))
        }
    });
}

/// A fixed, deterministic template used by the targeted regressions.
fn fixed_template() -> SsnScenario {
    let asdm = Asdm::new(Siemens::from_millis(7.5), 1.25, Volts::new(0.6));
    SsnScenario::from_asdm(asdm, Volts::new(1.8))
        .inductance(Henrys::new(5e-9))
        .capacitance(Farads::new(1e-12))
        .rise_time(Seconds::new(0.5e-9))
        .build()
        .expect("fixed template is valid")
}

/// A tight cap on a dense single-slab grid must prune aggressively — and
/// exactly: front identical, strictly fewer evaluations than brute force.
#[test]
fn tight_cap_prunes_a_dense_slab_without_changing_the_front() {
    let template = fixed_template();
    let space = DesignSpace {
        drivers: (1..=16).collect(),
        inductances: (0..16)
            .map(|i| Henrys::new(1e-9 * (1.0 + 0.6 * i as f64)))
            .collect(),
        capacitances: vec![template.capacitance()],
        rise_times: vec![template.rise_time()],
    };
    let opts = OptimizeOptions {
        objectives: ObjectiveSet::NoiseCostSpeed,
        max_noise_frac: Some(0.12),
    };
    let total = space.total_points();
    let policy = ExecPolicy::serial();
    let (s, _) = search(&template, &space, &opts, &policy).expect("search");
    let (e, _) = enumerate(&template, &space, &opts, &policy).expect("enumerate");
    assert!(
        s.front.same_front(&e.front),
        "capped fronts differ: {} vs {} members",
        s.front.len(),
        e.front.len()
    );
    assert!(
        s.pruned_infeasible > 0,
        "a 12% cap on a 16x16 slab must prove some points infeasible unevaluated"
    );
    assert!(
        s.evaluated < total,
        "pruning must save evaluations: {} of {total}",
        s.evaluated
    );
}

/// Satellite 3a: with every axis but `N` pinned to the template and the
/// cap set to the budget, the optimizer front is exactly the feasible
/// prefix `1..=max_simultaneous_drivers` — the PR-3 helper is a 1-D
/// special case of the search.
#[test]
fn one_axis_search_reproduces_max_simultaneous_drivers() {
    let template = fixed_template();
    let frac = 0.25;
    // Bitwise the same product the optimizer computes from the fraction.
    let budget = Volts::new(frac * template.vdd().value());
    let nmax = design::max_simultaneous_drivers(&template, budget).expect("max drivers");
    assert!(
        (1..64).contains(&nmax),
        "regression setup needs an interior answer, got {nmax}"
    );

    let space = DesignSpace {
        drivers: (1..=64).collect(),
        inductances: vec![template.inductance()],
        capacitances: vec![template.capacitance()],
        rise_times: vec![template.rise_time()],
    };
    let opts = OptimizeOptions {
        objectives: ObjectiveSet::NoiseCostSpeed,
        max_noise_frac: Some(frac),
    };
    let (out, _) = search(&template, &space, &opts, &ExecPolicy::serial()).expect("search");
    let front_nmax = out
        .front
        .members()
        .iter()
        .map(|p| p.n_drivers)
        .max()
        .expect("non-empty front");
    assert_eq!(
        front_nmax, nmax,
        "the noisiest feasible front member must sit exactly at max_simultaneous_drivers"
    );
    // Noise rises and the speed figure improves with N, so every feasible
    // driver count is mutually non-dominated: the front is the full prefix.
    assert_eq!(
        out.front.len(),
        nmax,
        "every feasible driver count 1..=nmax must survive to the front"
    );
}

/// Satellite 3b: with every axis but `tr` pinned, the minimum feasible
/// rise time on a grid bracketing `required_rise_time`'s answer is the
/// first grid value at or above it — the slow-branch guarantee seen
/// through the optimizer's cap.
#[test]
fn one_axis_search_reproduces_required_rise_time() {
    let template = fixed_template().with_drivers(8).expect("8 drivers");
    let frac = 1.0 / 6.0;
    let budget = Volts::new(frac * template.vdd().value());
    let tr_star = design::required_rise_time(&template, budget).expect("required rise time");
    assert!(
        tr_star.value() > 1e-12,
        "regression setup needs a true root, not the search floor"
    );

    // Bracket the answer: one grid value below, two at/above.
    let grid_tr: Vec<Seconds> = [0.9, 1.1, 1.3]
        .iter()
        .map(|m| Seconds::new(m * tr_star.value()))
        .collect();
    // Setup validity: the below-root value must actually violate the
    // budget (required_rise_time's guarantee only covers tr >= tr_star).
    let vn_below = lcmodel::vn_max(&template.with_rise_time(grid_tr[0]).expect("scenario")).0;
    assert!(
        vn_below > budget,
        "test setup: 0.9 * tr_star must violate the budget ({vn_below} <= {budget})"
    );

    let space = DesignSpace {
        drivers: vec![template.n_drivers()],
        inductances: vec![template.inductance()],
        capacitances: vec![template.capacitance()],
        rise_times: grid_tr.clone(),
    };
    let opts = OptimizeOptions {
        objectives: ObjectiveSet::NoiseCostSpeed,
        max_noise_frac: Some(frac),
    };
    let (out, _) = search(&template, &space, &opts, &ExecPolicy::serial()).expect("search");
    assert!(!out.front.is_empty(), "tr >= tr_star must stay feasible");
    assert!(
        out.front.members().iter().all(|p| p.tr_idx >= 1),
        "no front member may undercut required_rise_time"
    );
    let min_tr = out
        .front
        .members()
        .iter()
        .map(|p| p.rise_time.value())
        .fold(f64::INFINITY, f64::min);
    assert_eq!(
        min_tr.to_bits(),
        grid_tr[1].value().to_bits(),
        "the fastest feasible edge must be the first grid value at or above tr_star"
    );
}
