eight-slice pad ring with ESD clamps (SSN demo)
.include cells.inc

* input: 0 -> 1.8 V in 0.5 ns after 50 ps
Vin in 0 PWL(0 0 50p 0 550p 1.8)

* PGA ground path
Lg ng 0 5n IC=0
Cg ng 0 1p IC=0

* ESD clamp pair between internal and true ground
Dup ng 0 esd
Ddn 0 ng esd

* the bank
X0 in ng out0 slice
X1 in ng out1 slice
X2 in ng out2 slice
X3 in ng out3 slice
X4 in ng out4 slice
X5 in ng out5 slice
X6 in ng out6 slice
X7 in ng out7 slice

.ic V(ng)=0 V(in)=0
.tran 1p 1.3n UIC
.end
